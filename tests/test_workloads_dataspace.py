"""Tests for dataspace projections and the input-halo tile arithmetic."""

import pytest

from repro.workloads.dataspace import (
    ALL_DATASPACES,
    DataSpace,
    dataspace_tile_size,
    is_relevant,
    reduction_dims,
    relevant_dims,
)
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


class TestRelevance:
    def test_weight_dims(self):
        assert relevant_dims(W) == {Dim.M, Dim.C, Dim.R, Dim.S}

    def test_output_dims(self):
        assert relevant_dims(O) == {Dim.N, Dim.M, Dim.P, Dim.Q}

    def test_input_dims_include_window_pairs(self):
        dims = relevant_dims(I)
        assert {Dim.P, Dim.R, Dim.Q, Dim.S, Dim.C, Dim.N} <= dims
        assert Dim.M not in dims

    def test_reduction_dims_only_for_outputs(self):
        assert reduction_dims(O) == {Dim.C, Dim.R, Dim.S}
        assert reduction_dims(W) == frozenset()
        assert reduction_dims(I) == frozenset()

    def test_is_relevant(self):
        assert is_relevant(W, Dim.M)
        assert not is_relevant(W, Dim.N)

    def test_every_dim_relevant_to_some_dataspace(self):
        for dim in Dim:
            assert any(is_relevant(ds, dim) for ds in ALL_DATASPACES)


class TestTileSizes:
    def test_weights_product(self):
        bounds = {Dim.M: 2, Dim.C: 3, Dim.R: 3, Dim.S: 3, Dim.P: 10}
        assert dataspace_tile_size(W, bounds) == 2 * 3 * 3 * 3

    def test_outputs_product(self):
        bounds = {Dim.N: 2, Dim.M: 4, Dim.P: 5, Dim.Q: 6, Dim.C: 100}
        assert dataspace_tile_size(O, bounds) == 2 * 4 * 5 * 6

    def test_outputs_ignore_reduction_dims(self):
        small = dataspace_tile_size(O, {Dim.M: 4})
        big = dataspace_tile_size(O, {Dim.M: 4, Dim.C: 64, Dim.R: 3})
        assert small == big == 4

    def test_input_halo_unit_stride(self):
        # 4 output rows with a 3-tall filter cover 6 input rows.
        assert dataspace_tile_size(I, {Dim.P: 4, Dim.R: 3}) == 6

    def test_input_halo_both_axes(self):
        size = dataspace_tile_size(
            I, {Dim.P: 4, Dim.R: 3, Dim.Q: 5, Dim.S: 3})
        assert size == 6 * 7

    def test_input_halo_strided(self):
        # stride 2: (4-1)*2 + 3 = 9 rows.
        assert dataspace_tile_size(I, {Dim.P: 4, Dim.R: 3},
                                   stride=(2, 1)) == 9

    def test_input_channels_and_batch_multiply(self):
        size = dataspace_tile_size(I, {Dim.N: 2, Dim.C: 3, Dim.P: 2,
                                       Dim.R: 3})
        assert size == 2 * 3 * 4

    def test_input_no_window_dims(self):
        # FC-style: one pixel.
        assert dataspace_tile_size(I, {Dim.C: 128}) == 128

    def test_halo_overlap_saves_vs_naive(self):
        # Naive (no overlap) would be P*R = 12; halo gives 6.
        naive = 4 * 3
        halo = dataspace_tile_size(I, {Dim.P: 4, Dim.R: 3})
        assert halo < naive

    def test_empty_bounds_is_one_element(self):
        for ds in ALL_DATASPACES:
            assert dataspace_tile_size(ds, {}) == 1
