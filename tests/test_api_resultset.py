"""ResultSet edge cases: empty sets, pareto ties, missing keys, and
serialization round-trips."""

import json

import pytest

from repro.api import Record, ResultSet
from repro.exceptions import SpecError


def make_record(**row):
    """A metrics-only record from a flat row (tags = non-metric keys)."""
    return ResultSet.from_records([row])[0]


def make_set(rows):
    return ResultSet.from_records(rows)


class TestRecord:
    def test_get_tags_shadow_metrics(self):
        record = Record(tags={"system": "a", "energy_per_mac_pj": "tagged"},
                        metrics={"energy_per_mac_pj": 1.0})
        assert record.get("system") == "a"
        assert record.get("energy_per_mac_pj") == "tagged"
        assert record.get("missing", 42) == 42

    def test_value_unknown_key_lists_options(self):
        record = make_record(system="a", energy_per_mac_pj=1.0)
        with pytest.raises(SpecError, match="system"):
            record.value("nope")

    def test_contains_and_getitem(self):
        record = make_record(system="a", energy_per_mac_pj=1.0)
        assert "system" in record and "energy_per_mac_pj" in record
        assert "nope" not in record
        assert record["system"] == "a"


class TestEmptySet:
    def test_everything_works_on_empty(self):
        empty = ResultSet()
        assert len(empty) == 0 and not empty
        assert list(empty) == []
        assert len(empty.filter(system="a")) == 0
        assert empty.group_by("system") == {}
        assert len(empty.pareto()) == 0
        assert len(empty.top_k(3)) == 0
        assert empty.to_records() == []
        assert empty.to_csv() == ""
        assert json.loads(empty.to_json()) == []
        assert empty.report() == "(no records)"
        assert empty.report(title="t") == "t\n(no records)"

    def test_best_on_empty_raises(self):
        with pytest.raises(SpecError, match="empty"):
            ResultSet().best()


class TestParetoAndRanking:
    def test_pareto_ties_all_survive(self):
        """Duplicate cost tuples on the frontier all survive (neither
        dominates the other)."""
        rows = [
            {"name": "tie1", "energy_per_mac_pj": 1.0, "latency_ns": 5.0},
            {"name": "tie2", "energy_per_mac_pj": 1.0, "latency_ns": 5.0},
            {"name": "dominated", "energy_per_mac_pj": 2.0,
             "latency_ns": 6.0},
            {"name": "fast", "energy_per_mac_pj": 3.0, "latency_ns": 1.0},
        ]
        frontier = make_set(rows).pareto()
        assert [r["name"] for r in frontier] == ["tie1", "tie2", "fast"]

    def test_pareto_custom_metrics(self):
        rows = [
            {"name": "a", "x": 1.0, "y": 2.0},
            {"name": "b", "x": 2.0, "y": 1.0},
            {"name": "c", "x": 2.0, "y": 2.0},
        ]
        frontier = make_set(rows).pareto("x", "y")
        assert [r["name"] for r in frontier] == ["a", "b"]

    def test_pareto_preserves_input_order(self):
        rows = [
            {"name": "late", "energy_per_mac_pj": 3.0, "latency_ns": 1.0},
            {"name": "early", "energy_per_mac_pj": 1.0, "latency_ns": 5.0},
        ]
        assert [r["name"] for r in make_set(rows).pareto()] \
            == ["late", "early"]

    def test_top_k_and_best(self):
        rows = [{"name": n, "energy_per_mac_pj": e}
                for n, e in (("a", 3.0), ("b", 1.0), ("c", 2.0))]
        result_set = make_set(rows)
        assert [r["name"] for r in result_set.top_k(2)] == ["b", "c"]
        assert [r["name"] for r in result_set.top_k(1, largest=True)] \
            == ["a"]
        assert result_set.best()["name"] == "b"
        assert len(result_set.top_k(100)) == 3


class TestFilterAndGroup:
    ROWS = [
        {"system": "a", "fused": True, "energy_per_mac_pj": 1.0},
        {"system": "a", "fused": False, "energy_per_mac_pj": 2.0},
        {"system": "b", "fused": True, "energy_per_mac_pj": 3.0},
        {"fused": True, "energy_per_mac_pj": 4.0},  # no system tag
    ]

    def test_filter_by_tags(self):
        result_set = make_set(self.ROWS)
        assert len(result_set.filter(system="a")) == 2
        assert len(result_set.filter(system="a", fused=True)) == 1

    def test_filter_predicate_composes_with_tags(self):
        result_set = make_set(self.ROWS)
        matched = result_set.filter(
            lambda r: r["energy_per_mac_pj"] < 3.0, system="a")
        assert len(matched) == 2

    def test_filter_on_absent_key_matches_nothing(self):
        assert len(make_set(self.ROWS).filter(nonexistent="x")) == 0

    def test_group_by_missing_key_buckets_under_none(self):
        """Records lacking the key land in the ``None`` bucket instead of
        raising or being dropped."""
        groups = make_set(self.ROWS).group_by("system")
        assert set(groups) == {"a", "b", None}
        assert len(groups[None]) == 1
        assert groups[None][0]["energy_per_mac_pj"] == 4.0
        assert sum(len(g) for g in groups.values()) == len(self.ROWS)

    def test_only(self):
        result_set = make_set(self.ROWS)
        assert result_set.only(system="b")["energy_per_mac_pj"] == 3.0
        with pytest.raises(SpecError, match="exactly one"):
            result_set.only(system="a")


class TestSerialization:
    ROWS = [
        {"system": "a", "index": 0, "energy_per_mac_pj": 1.5,
         "latency_ns": 10.0, "utilization": 0.5},
        {"system": "b", "index": 1, "energy_per_mac_pj": 2.5,
         "latency_ns": 20.0, "utilization": 0.25},
    ]

    def test_to_json_from_records_round_trip(self):
        original = make_set(self.ROWS)
        rebuilt = ResultSet.from_records(json.loads(original.to_json()))
        assert rebuilt == original
        assert rebuilt.to_records() == original.to_records()

    def test_from_json_round_trip_with_path(self, tmp_path):
        original = make_set(self.ROWS)
        path = tmp_path / "results.json"
        original.to_json(str(path))
        assert ResultSet.from_json(path.read_text()) == original

    def test_from_json_rejects_non_array(self):
        with pytest.raises(SpecError, match="array"):
            ResultSet.from_json('{"not": "an array"}')

    def test_from_records_splits_tags_and_metrics(self):
        record = make_record(system="a", energy_per_mac_pj=1.0)
        assert record.tags == {"system": "a"}
        assert record.metrics == {"energy_per_mac_pj": 1.0}

    def test_to_csv(self, tmp_path):
        path = tmp_path / "results.csv"
        text = make_set(self.ROWS).to_csv(str(path))
        lines = text.strip().splitlines()
        assert lines[0].startswith("system,index,")
        assert len(lines) == 3
        assert path.read_text() == text

    def test_csv_ragged_tags_fill_blank(self):
        text = make_set([
            {"system": "a", "energy_per_mac_pj": 1.0},
            {"system": "b", "extra": 7, "energy_per_mac_pj": 2.0},
        ]).to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "system,extra,energy_per_mac_pj"
        assert lines[1] == "a,,1.0"

    def test_report_renders_table(self):
        report = make_set(self.ROWS).report(mark_pareto=True)
        assert "pJ/MAC" in report and "Pareto" in report
        assert "system" in report

    def test_report_custom_columns(self):
        report = make_set(self.ROWS).report(
            columns=["index"], metrics=["utilization"], title="T")
        assert report.startswith("T\n")
        assert "index" in report and "util" in report
        assert "system" not in report

    def test_slice_returns_result_set(self):
        result_set = make_set(self.ROWS)
        assert isinstance(result_set[:1], ResultSet)
        assert len(result_set[:1]) == 1
