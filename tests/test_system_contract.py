"""System conformance suite: the contract every registered system obeys.

Runs against every entry in :mod:`repro.systems.registry` — including
systems added later — so a new accelerator is contract-tested by
registering, with no new test code:

* the registry bundle is well-formed (types, builders, buckets, sweep);
* reference mappings validate for convolution, FC, strided, and awkward
  shapes;
* evaluations produce finite positive energy/latency and exact MAC
  accounting;
* the engine cache round-trips (warm second run is a pure hit with a
  bit-identical result);
* parallel execution matches serial bit-for-bit — through both the
  whole-job path and the planner's two-phase path;
* the duck-typed ``store`` seam memoizes mapper searches and layer
  evaluations;
* the sub-task seams agree with the evaluation path: enumerated tasks
  warm exactly the entries ``evaluate_network`` looks up, and layer
  names never change the numbers (the planner's rename-dedup contract).
"""

import dataclasses
import math

import pytest

from repro.engine import EvaluationCache, make_job, run_job, run_jobs
from repro.engine.cache import SystemStore
from repro.engine.codec import (
    layer_evaluation_to_dict,
    network_evaluation_to_dict,
)
from repro.mapping.mapping import Mapping
from repro.model.results import NetworkEvaluation
from repro.systems.base import PhotonicSystem, SubTask
from repro.systems.registry import system_entries
from repro.workloads import ConvLayer, dense_layer, tiny_cnn

ENTRIES = system_entries()

LAYERS = (
    ConvLayer(name="conv3x3", m=64, c=32, p=14, q=14, r=3, s=3),
    dense_layer("fc", 256, 512),
    ConvLayer(name="strided", m=32, c=16, p=16, q=16, r=5, s=5,
              stride_h=2, stride_w=2),
    ConvLayer(name="awkward", m=13, c=7, p=5, q=3, r=2, s=2),
)


@pytest.fixture(params=sorted(ENTRIES), ids=sorted(ENTRIES))
def entry(request):
    return ENTRIES[request.param]


class TestRegistryBundle:
    def test_entry_well_formed(self, entry):
        assert issubclass(entry.system_type, PhotonicSystem)
        assert entry.system_type.name == entry.name
        assert entry.system_type.config_type is entry.config_type
        assert entry.description
        config = entry.config_type()  # default-constructible
        assert entry.name.split("_")[0] in config.describe().lower()
        assert config.peak_macs_per_cycle >= 1

    def test_builders_are_the_system_hooks(self, entry):
        # The registry's builders must be the very functions the system
        # class uses — job-identity hashing and system construction must
        # agree (and share the build cache).
        assert entry.system_type.build_architecture \
            is entry.build_architecture
        assert entry.system_type.build_energy_table \
            is entry.build_energy_table

    def test_energy_table_prices_every_component(self, entry):
        config = entry.config_type()
        architecture = entry.build_architecture(config)
        table = entry.build_energy_table(config)
        for component in architecture.component_names():
            assert component in table, (
                f"{entry.name}: component {component!r} unpriced")

    def test_buckets_align_for_cross_system_figures(self, entry):
        assert "DRAM" in entry.buckets.order
        assert "Weight DE/AE, AE/AO" in entry.buckets.order

    def test_default_sweep_builds_own_configs(self, entry):
        configs = list(entry.default_sweep())
        assert configs
        assert all(isinstance(config, entry.config_type)
                   for config in configs)
        for header, getter in entry.sweep_columns:
            assert header
            getter(configs[0])  # resolvable on every grid point

    def test_store_flag_matches_constructor(self, entry):
        if entry.supports_store:
            system = entry.system_type(entry.config_type(), store=None)
            assert system.store is None


class TestReferenceMappings:
    @pytest.mark.parametrize("layer", LAYERS, ids=[l.name for l in LAYERS])
    def test_valid_for_shape(self, entry, layer):
        system = entry.system_type()
        mapping = system.reference_mapping(layer)
        assert isinstance(mapping, Mapping)
        target = system.analysis_layer(layer)
        mapping.validate(system.architecture, target)

    def test_candidates_priced_deterministically(self, entry):
        layer = LAYERS[0]
        first = entry.system_type().reference_mapping(layer)
        second = entry.system_type().reference_mapping(layer)
        assert repr(first) == repr(second)


class TestEvaluation:
    @pytest.mark.parametrize("layer", LAYERS, ids=[l.name for l in LAYERS])
    def test_layer_energy_and_latency_finite(self, entry, layer):
        evaluation = entry.system_type().evaluate_layer(layer)
        assert math.isfinite(evaluation.energy_pj)
        assert evaluation.energy_pj > 0
        assert evaluation.cycles >= 1
        assert 0 < evaluation.utilization <= 1.0

    def test_network_mac_accounting_exact(self, entry):
        network = tiny_cnn()
        evaluation = entry.system_type().evaluate_network(network)
        assert evaluation.total_macs == network.total_macs
        assert math.isfinite(evaluation.energy_pj)

    def test_mapper_search_not_worse_than_reference(self, entry):
        system = entry.system_type()
        layer = LAYERS[0]
        reference = system.evaluate_layer(layer).energy_pj
        result = system.search_mapping(layer, max_evaluations=80, seed=1)
        assert result.cost <= reference * (1 + 1e-9)


class TestEngineIntegration:
    def test_cache_round_trip_bit_identical(self, entry, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        job = make_job(tiny_cnn(), entry.config_type())
        assert job.system == entry.name
        cold = run_job(job, cache=cache)
        cache.save()
        warm_cache = EvaluationCache(str(tmp_path))
        warm = run_job(job, cache=warm_cache)
        assert warm_cache.stats["results"].hits == 1
        assert warm_cache.stats["results"].misses == 0
        assert network_evaluation_to_dict(warm) \
            == network_evaluation_to_dict(cold)

    def test_serial_equals_parallel(self, entry):
        configs = list(entry.default_sweep())[:2]
        jobs = [make_job(tiny_cnn(), config) for config in configs]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        assert [network_evaluation_to_dict(e) for e in serial] \
            == [network_evaluation_to_dict(e) for e in parallel]

    def test_serial_equals_planned_parallel(self, entry):
        """The two-phase scheduler path is bit-identical to serial, both
        with and without a cache, and actually plans (no fallback)."""
        configs = list(entry.default_sweep())[:3]
        jobs = [make_job(tiny_cnn(), config) for config in configs]
        serial = run_jobs(jobs, workers=1)
        cache = EvaluationCache()
        planned = run_jobs(jobs, workers=2, cache=cache, plan=True)
        assert cache.planner.planned > 0
        assert cache.planner.phase1_tasks > 0
        assert [network_evaluation_to_dict(e) for e in serial] \
            == [network_evaluation_to_dict(e) for e in planned]
        cacheless = run_jobs(jobs, workers=2, plan=True)
        assert [network_evaluation_to_dict(e) for e in serial] \
            == [network_evaluation_to_dict(e) for e in cacheless]

    def test_planner_warm_cache_replays_without_tasks(self, entry, tmp_path):
        """A warmed cache replays the planned sweep as pure hits: the
        planner schedules zero phase-1 work the second time."""
        cache_dir = str(tmp_path / "sweep")
        configs = list(entry.default_sweep())[:3]
        jobs = [make_job(tiny_cnn(), config) for config in configs]
        run_jobs(jobs, workers=2, cache=cache_dir)
        warm = EvaluationCache(cache_dir)
        run_jobs(jobs, workers=2, cache=warm)
        assert warm.stats["results"].hits == len(jobs)
        assert warm.stats["results"].misses == 0
        assert warm.planner.phase1_tasks == 0

    def test_store_seam_memoizes(self, entry):
        if not entry.supports_store:
            pytest.skip(f"{entry.name} registers supports_store=False")
        cache = EvaluationCache()
        store = SystemStore(cache, "contract-" + entry.name)
        system = entry.system_type(entry.config_type(), store=store)
        layer = LAYERS[0]

        first = system.search_mapping(layer, max_evaluations=60, seed=3)
        hits_before = cache.stats["mappings"].hits
        second = system.search_mapping(layer, max_evaluations=60, seed=3)
        assert cache.stats["mappings"].hits == hits_before + 1
        assert repr(second.mapping) == repr(first.mapping)
        assert second.cost == first.cost

        eval_first = system.evaluate_layer(layer)
        layer_hits = cache.stats["layers"].hits
        eval_second = system.evaluate_layer(layer)
        assert cache.stats["layers"].hits == layer_hits + 1
        assert eval_second.energy_pj == eval_first.energy_pj

    def test_every_system_reaches_full_cache_reuse(self, entry, tmp_path):
        """The satellite claim: warmed-cache sweeps for *every* system."""
        cache_dir = str(tmp_path / "sweep")
        configs = list(entry.default_sweep())[:3]
        jobs = [make_job(tiny_cnn(), config) for config in configs]
        run_jobs(jobs, cache=cache_dir)
        warm = EvaluationCache(cache_dir)
        run_jobs(jobs, cache=warm)
        assert warm.stats["results"].hits == len(jobs)
        assert warm.stats["results"].misses == 0


class TestSubTaskSeams:
    """The planner's contract with every registered system."""

    @pytest.mark.parametrize("fused", (False, True), ids=("plain", "fused"))
    def test_enumerated_tasks_warm_exactly_what_evaluation_reads(
            self, entry, fused):
        """Computing the enumerated sub-tasks first makes the subsequent
        network evaluation a pure store hit — proving the enumeration
        and the evaluation path agree on coverage and on keys."""
        network = tiny_cnn()
        cache = EvaluationCache()
        store = SystemStore(cache, "seam-" + entry.name)
        system = entry.system_type(entry.config_type(), store=store)
        tasks = system.enumerate_sub_tasks(network, fused=fused)
        assert tasks
        assert all(task.kind == "layer" for task in tasks)  # no mapper
        keys = [system.sub_task_store_key(task) for task in tasks]
        assert len(set(keys)) == len(keys)  # enumeration pre-deduplicated
        for task in tasks:
            system.compute_sub_task(task)
        misses_before = cache.stats["layers"].misses
        warmed = system.evaluate_network(network, fused=fused)
        assert cache.stats["layers"].misses == misses_before
        plain = entry.system_type(entry.config_type()).evaluate_network(
            network, fused=fused)
        assert network_evaluation_to_dict(warmed) \
            == network_evaluation_to_dict(plain)

    def test_mapper_tasks_precede_their_consumers(self, entry):
        system = entry.system_type(entry.config_type())
        tasks = system.enumerate_sub_tasks(tiny_cnn(), use_mapper=True)
        kinds = [task.kind for task in tasks]
        assert "mapper" in kinds
        assert kinds.index("layer") > kinds.index("mapper")
        last_mapper = max(i for i, kind in enumerate(kinds)
                          if kind == "mapper")
        assert all(kind == "layer" for kind in kinds[last_mapper + 1:])

    def test_layer_name_does_not_affect_numbers(self, entry):
        """The rename-dedup contract: two layers differing only in name
        evaluate to dicts identical in everything but that name."""
        layer_a = LAYERS[0]
        layer_b = dataclasses.replace(layer_a, name="renamed")
        system = entry.system_type(entry.config_type())
        dict_a = layer_evaluation_to_dict(system.evaluate_layer(layer_a))
        dict_b = layer_evaluation_to_dict(system.evaluate_layer(layer_b))
        dict_b["layer"]["name"] = layer_a.name
        assert dict_a == dict_b
        assert system.sub_task_dedup_key(SubTask(kind="layer",
                                                 layer=layer_a)) \
            == system.sub_task_dedup_key(SubTask(kind="layer",
                                                 layer=layer_b))
