"""Tests for :mod:`repro.obs` — span tracing, worker-safe collection,
Chrome export — and its wiring through the engine and Study facade."""

import json

import pytest

from repro import Study, obs
from repro.obs import (
    CHROME_REQUIRED_KEYS,
    NULL_TRACER,
    Trace,
    Tracer,
    validate_chrome_trace,
)
from repro.report import format_trace_summary


def _two_job_study() -> Study:
    # Two jobs so the parallel path actually plans and dispatches.
    return (Study().systems("crossbar").networks("tiny")
            .fusion(False, True))


# ---------------------------------------------------------------------------
# Tracer basics
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_attribute_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", jobs=3) as outer:
            outer.set("extra", "value")
            outer.add("count")
            outer.add("count", 2)
            with tracer.span("inner"):
                pass
        trace = tracer.trace()
        events = {event["name"]: event for event in trace.events}
        assert set(events) == {"outer", "inner"}
        assert events["outer"]["args"] == {"jobs": 3, "extra": "value",
                                           "count": 3}
        assert events["inner"]["parent"] == "outer"
        assert events["outer"]["parent"] is None
        # The child starts inside and ends inside the parent.
        outer_evt, inner_evt = events["outer"], events["inner"]
        assert inner_evt["ts"] >= outer_evt["ts"]
        assert (inner_evt["ts"] + inner_evt["dur"]
                <= outer_evt["ts"] + outer_evt["dur"] + 1.0)
        # Self-time excludes the direct child.
        assert outer_evt["self"] <= outer_evt["dur"] - inner_evt["dur"] + 1.0

    def test_tick_aggregates(self):
        tracer = Tracer()
        tracer.tick("hot", 0.001)
        tracer.tick("hot", 0.002, count=3)
        trace = tracer.trace()
        assert trace.aggregates["hot"][0] == 4
        assert trace.aggregates["hot"][1] == pytest.approx(3000.0)

    def test_disabled_is_noop(self):
        # The module-level helpers against NULL_TRACER record nothing.
        assert not obs.tracing_enabled()
        with obs.span("never", key=1) as sp:
            sp.set("a", 2)
            sp.add("b")
        obs.tick("never", 1.0)
        assert len(NULL_TRACER.trace()) == 0
        assert obs.current_tracer() is NULL_TRACER

    def test_tracing_context_restores_previous(self):
        assert obs.current_tracer() is NULL_TRACER
        with obs.tracing() as tracer:
            assert obs.current_tracer() is tracer
            assert obs.tracing_enabled()
            with obs.tracing() as nested:
                assert obs.current_tracer() is nested
            assert obs.current_tracer() is tracer
        assert obs.current_tracer() is NULL_TRACER

    def test_drain_and_absorb(self):
        parent = Tracer()
        worker = Tracer.for_worker(parent.worker_config())
        assert worker.epoch == parent.epoch
        assert worker.pid == parent.pid
        with worker.span("worker.batch"):
            pass
        worker.tick("hot", 0.001)
        payload = worker.drain()
        # Drained: the worker tracer is empty again.
        assert len(worker.trace()) == 0
        assert worker.trace().aggregates == {}
        parent.absorb(payload)
        parent.absorb(None)  # disabled-worker message: no-op
        trace = parent.trace()
        assert trace.span_names() == {"worker.batch"}
        assert trace.aggregates["hot"][0] == 1


# ---------------------------------------------------------------------------
# Trace analysis and determinism
# ---------------------------------------------------------------------------


def _event(name, ts, dur, tid, pid=1):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "self": dur, "pid": pid, "tid": tid, "parent": None,
            "args": {}}


class TestTrace:
    def test_merge_order_is_deterministic(self):
        events = [
            _event("c", 10.0, 5.0, tid=3),
            _event("a", 0.0, 20.0, tid=1),
            _event("b", 10.0, 5.0, tid=2),
            _event("d", 10.0, 7.0, tid=2),
        ]
        forward = Trace(list(events), main_tid=1)
        reversed_ = Trace(list(reversed(events)), main_tid=1)
        assert forward.events == reversed_.events
        # Sorted by start time, then lane, then longest-first.
        assert [event["name"] for event in forward.events] \
            == ["a", "d", "b", "c"]

    def test_summary_totals(self):
        trace = Trace([_event("a", 0.0, 10.0, tid=1),
                       _event("a", 10.0, 10.0, tid=1)], main_tid=1)
        summary = trace.summary()
        assert summary["wall_s"] == pytest.approx(20e-6)
        assert summary["lanes"] == 1
        assert summary["spans"]["a"]["count"] == 2
        assert summary["spans"]["a"]["total_s"] == pytest.approx(20e-6)

    def test_main_lane_coverage(self):
        full = Trace([_event("a", 0.0, 10.0, tid=1)], main_tid=1)
        assert full.main_lane_coverage() == pytest.approx(1.0)
        half = Trace([
            {**_event("a", 0.0, 10.0, tid=1), "self": 5.0},
            _event("b", 10.0, 0.0, tid=1),
        ], main_tid=1)
        assert half.main_lane_coverage() == pytest.approx(0.5)

    def test_empty_trace(self):
        trace = Trace([])
        assert trace.summary()["wall_s"] == 0.0
        assert trace.main_lane_coverage() == 0.0
        validate_chrome_trace(json.loads(trace.to_chrome_json()))


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_required_keys_on_every_event(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("mark")
        data = json.loads(tracer.trace().to_chrome_json())
        events = validate_chrome_trace(data)
        assert events
        for event in events:
            for key in CHROME_REQUIRED_KEYS:
                assert key in event, (key, event)

    def test_worker_lanes_have_distinct_tids(self):
        parent = Tracer(epoch=0.0, pid=100, tid=100)
        worker = Tracer(epoch=0.0, pid=100, tid=200)
        with parent.span("run_jobs"):
            with worker.span("worker.batch"):
                pass
        parent.absorb(worker.drain())
        data = json.loads(parent.trace().to_chrome_json())
        span_events = [event for event in data["traceEvents"]
                       if event["ph"] == "X"]
        assert {event["tid"] for event in span_events} == {100, 200}
        names = {event["args"]["name"]
                 for event in data["traceEvents"]
                 if event["ph"] == "M" and event["name"] == "thread_name"}
        assert names == {"main", "worker-200"}

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------


class TestEngineTracing:
    def test_serial_and_parallel_cover_same_compute_spans(self):
        with obs.tracing() as tracer:
            serial = _two_job_study().run(workers=1)
        serial_names = tracer.trace().span_names()
        with obs.tracing() as tracer:
            parallel = _two_job_study().run(workers=2)
        parallel_names = tracer.trace().span_names()
        assert serial.to_records() == parallel.to_records()
        # The compute-path spans appear in both timelines; dispatch
        # machinery differs by design (serial has no pool/planner).
        compute = {"layer.evaluate", "system.build", "run_jobs"}
        assert compute <= serial_names
        assert compute <= parallel_names
        assert {"planner.build_plan", "executor.pool_spawn",
                "executor.dispatch", "worker.batch"} <= parallel_names

    def test_parallel_run_records_worker_lane(self):
        with obs.tracing() as tracer:
            _two_job_study().run(workers=2)
        trace = tracer.trace()
        assert len(trace.lanes()) >= 2
        worker_tids = {event["tid"] for event in trace.events
                       if event["name"] == "worker.batch"}
        assert worker_tids and trace.main_tid not in worker_tids

    def test_untraced_run_records_nothing(self):
        assert obs.current_tracer() is NULL_TRACER
        results = _two_job_study().run(workers=2)
        assert results.trace is None
        assert len(NULL_TRACER.trace()) == 0

    def test_mapper_search_span_and_analyzer_tick(self):
        from repro.mapping.mapper import Mapper
        from repro.systems import CrossbarConfig, CrossbarSystem
        from repro.workloads import tiny_cnn

        system = CrossbarSystem(CrossbarConfig())
        layer = tiny_cnn().entries[0].layer
        with obs.tracing() as tracer:
            system.search_mapping(layer, max_evaluations=50)
        trace = tracer.trace()
        assert "mapper.search" in trace.span_names()
        search = next(event for event in trace.events
                      if event["name"] == "mapper.search")
        assert search["args"]["evaluated"] > 0
        # The search analyzes candidates through the batched path when
        # numpy is available and the scalar path otherwise; either way
        # the analyzer work must land in an aggregate tick.
        ticks = (trace.aggregates.get("analyzer.batch", (0, 0.0))[0]
                 + trace.aggregates.get("analyzer.analyze", (0, 0.0))[0])
        assert ticks > 0


# ---------------------------------------------------------------------------
# Study facade
# ---------------------------------------------------------------------------


class TestStudyTrace:
    def test_run_trace_true_attaches_trace(self):
        results = _two_job_study().run(workers=2, trace=True)
        assert results.trace is not None
        assert "run_jobs" in results.trace.span_names()
        assert "study.compile" in results.trace.span_names()

    def test_run_trace_path_writes_chrome_json(self, tmp_path):
        path = tmp_path / "trace.json"
        results = _two_job_study().run(trace=str(path))
        data = json.loads(path.read_text())
        validate_chrome_trace(data)
        assert results.trace is not None

    def test_run_trace_existing_tracer(self):
        tracer = Tracer()
        results = _two_job_study().run(trace=tracer)
        assert results.trace is not None
        assert results.trace.span_names() <= tracer.trace().span_names()

    def test_equal_records_compare_equal_regardless_of_trace(self):
        plain = _two_job_study().run()
        traced = _two_job_study().run(trace=True)
        assert plain == traced


# ---------------------------------------------------------------------------
# Summary rendering
# ---------------------------------------------------------------------------


class TestSummaryReport:
    def test_format_trace_summary(self):
        tracer = Tracer()
        with tracer.span("run_jobs"):
            with tracer.span("planner.build_plan"):
                pass
        tracer.tick("analyzer.analyze", 0.001, count=5)
        text = format_trace_summary(tracer.trace())
        assert "run_jobs" in text
        assert "planner.build_plan" in text
        assert "analyzer.analyze" in text
        assert "wall" in text

    def test_format_empty_trace(self):
        text = format_trace_summary(Trace([]))
        assert "no spans" in text
