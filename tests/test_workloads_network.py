"""Tests for Network construction, merging, and aggregate statistics."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import ConvLayer, Network, dense_layer
from repro.workloads.network import LayerRepetition


def _conv(name, m=4, c=3, p=8, q=8):
    return ConvLayer(name=name, m=m, c=c, p=p, q=q, r=3, s=3)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(WorkloadError):
            Network(name="empty", entries=())

    def test_from_layers_rejects_empty(self):
        with pytest.raises(WorkloadError):
            Network.from_layers("empty", [])

    def test_repetition_rejects_zero_count(self):
        with pytest.raises(WorkloadError):
            LayerRepetition(layer=_conv("a"), count=0)

    def test_repetition_rejects_negative_resident_bits(self):
        with pytest.raises(WorkloadError):
            LayerRepetition(layer=_conv("a"), resident_extra_bits=-1)


class TestMerging:
    def test_identical_consecutive_layers_merge(self):
        layers = [_conv("a"), _conv("b"), _conv("c")]
        network = Network.from_layers("n", layers)
        assert network.unique_layer_count < 3
        assert len(network) == 3

    def test_different_shapes_do_not_merge(self):
        layers = [_conv("a", m=4), _conv("b", m=8)]
        network = Network.from_layers("n", layers)
        assert network.unique_layer_count == 2

    def test_first_layer_never_merges_into_dram_reader(self):
        # First layer reads DRAM; a merged block must not hide that.
        layers = [_conv("a"), _conv("b")]
        network = Network.from_layers("n", layers)
        assert not network.entries[0].consumes_previous_output

    def test_merge_preserves_total_macs(self):
        layers = [_conv("a"), _conv("b"), _conv("c"), _conv("d", m=8)]
        network = Network.from_layers("n", layers)
        assert network.total_macs == sum(l.macs for l in layers)


class TestAggregates:
    def test_totals(self):
        network = Network.from_layers("n", [_conv("a"), _conv("b", m=8)])
        assert network.total_weight_bits == sum(
            e.layer.weight_bits * e.count for e in network)
        assert network.total_input_bits > 0
        assert network.total_output_bits > 0

    def test_max_activation_bits_is_max_not_sum(self):
        small = _conv("small", m=2, p=2, q=2)
        big = _conv("big", m=64, p=32, q=32)
        network = Network.from_layers("n", [small, big])
        footprint = network.max_activation_bits
        assert footprint == big.input_bits + big.output_bits

    def test_with_batch(self):
        network = Network.from_layers("n", [_conv("a")])
        batched = network.with_batch(4)
        assert batched.total_macs == 4 * network.total_macs
        assert len(batched) == len(network)

    def test_map_layers(self):
        network = Network.from_layers("n", [_conv("a")])
        widened = network.map_layers(lambda l: l.with_batch(2))
        assert widened.total_macs == 2 * network.total_macs

    def test_describe_contains_layers(self):
        network = Network.from_layers("n", [_conv("a"), dense_layer("fc",
                                                                    8, 4)])
        text = network.describe()
        assert "n:" in text and "fc" in text

    def test_iteration_order(self):
        layers = [_conv("a", m=2), _conv("b", m=4), _conv("c", m=8)]
        network = Network.from_layers("n", layers)
        ms = [entry.layer.m for entry in network]
        assert ms == [2, 4, 8]
