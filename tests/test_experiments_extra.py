"""Tests for the extension experiments (batching, sensitivity parameters,
calibration helpers) and experiment customization hooks."""

import pytest

from repro.energy import AGGRESSIVE, CONSERVATIVE
from repro.experiments import batching, calibration, fig2_validation, \
    fig3_throughput, sensitivity
from repro.experiments.reported import FIG2_REPORTED
from repro.systems import AlbireoConfig
from repro.workloads import lenet5, tiny_cnn


class TestBatchingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return batching.run(batch_sizes=(1, 4, 16))

    def test_points_cover_batches(self, result):
        assert [p.batch for p in result.points] == [1, 4, 16]

    def test_energy_monotone_decreasing(self, result):
        energies = [p.energy_uj_per_inference for p in result.points]
        assert energies == sorted(energies, reverse=True)

    def test_latency_monotone_increasing(self, result):
        latencies = [p.latency_ms_per_request for p in result.points]
        assert latencies == sorted(latencies)

    def test_weight_dram_amortizes(self, result):
        first, last = result.points[0], result.points[-1]
        assert last.weight_dram_pj_per_mac \
            < 0.2 * first.weight_dram_pj_per_mac

    def test_energy_floor(self, result):
        assert result.energy_floor_uj \
            == result.points[-1].energy_uj_per_inference

    def test_table_renders(self, result):
        text = result.table()
        assert "Batching" in text and "uJ/inf" in text

    def test_conservative_amortizes_less(self):
        aggressive = batching.run(AGGRESSIVE, batch_sizes=(1, 8))
        conservative = batching.run(CONSERVATIVE, batch_sizes=(1, 8))

        def saving(result):
            return 1 - (result.points[-1].energy_uj_per_inference
                        / result.points[0].energy_uj_per_inference)

        assert saving(aggressive) > saving(conservative)


class TestSensitivityParameters:
    def test_custom_field_subset(self):
        result = sensitivity.run(fields=("mzm_pj", "dac_pj_at_8bit"))
        assert len(result.entries) == 2

    def test_small_perturbation_small_swing(self):
        small = sensitivity.run(perturbation=0.05,
                                fields=("dac_pj_at_8bit",))
        large = sensitivity.run(perturbation=0.4,
                                fields=("dac_pj_at_8bit",))
        assert small.entries[0].magnitude < large.entries[0].magnitude

    def test_aggressive_scenario_runs(self):
        result = sensitivity.run(AGGRESSIVE, fields=("adc_fom_fj_per_step",))
        assert result.scenario == "aggressive"


class TestCalibrationHelpers:
    def test_modeled_buckets_keys(self):
        buckets = calibration.modeled_buckets(CONSERVATIVE,
                                              AlbireoConfig())
        assert set(buckets) == {"MRR", "MZM", "Laser", "AO/AE", "DE/AE",
                                "AE/DE", "Cache"}

    def test_error_zero_for_self(self):
        config = AlbireoConfig()
        modeled = calibration.modeled_buckets(CONSERVATIVE, config)
        error = calibration.calibration_error(modeled, CONSERVATIVE,
                                              config)
        assert error == pytest.approx(0.0, abs=1e-9)

    def test_error_detects_mismatch(self):
        config = AlbireoConfig()
        wrong = dict(FIG2_REPORTED["conservative"])
        wrong["MZM"] *= 2
        error = calibration.calibration_error(wrong, CONSERVATIVE, config)
        assert error > 0.3

    def test_derivation_respects_reuse_factors(self):
        """Doubling IR halves the MZM bucket at fixed device energy, so
        deriving from the same targets must double the device energy."""
        targets = FIG2_REPORTED["conservative"]
        base = calibration.derive_scenario(
            "a", targets, AlbireoConfig(star_ports=9),
            wall_plug_efficiency=0.1, fixed_loss_db=6.0)
        wide = calibration.derive_scenario(
            "b", targets, AlbireoConfig(star_ports=18),
            wall_plug_efficiency=0.1, fixed_loss_db=6.0)
        assert wide.mzm_pj == pytest.approx(2 * base.mzm_pj, rel=1e-6)


class TestExperimentCustomization:
    def test_fig2_subset_of_scenarios(self):
        result = fig2_validation.run(scenarios=(CONSERVATIVE,))
        assert len(result.validations) == 1
        assert result.validations[0].scenario == "conservative"

    def test_fig3_custom_networks(self):
        result = fig3_throughput.run(networks=(tiny_cnn(), lenet5()))
        assert {t.network for t in result.throughputs} \
            == {"TinyCNN", "LeNet5"}
        # Unlisted networks fall back to peak for ideal/reported.
        tiny = result.for_network("TinyCNN")
        assert tiny.ideal == AlbireoConfig().peak_macs_per_cycle

    def test_fig3_unknown_network_lookup_raises(self):
        result = fig3_throughput.run(networks=(tiny_cnn(),))
        with pytest.raises(KeyError):
            result.for_network("VGG16")
