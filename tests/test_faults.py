"""Fault-tolerant sweep execution: policy, injection, partial results.

Exercises the resilience layer end to end: the deterministic fault
plans of :mod:`repro.engine.faults`, the retry/quarantine
:class:`~repro.engine.executor.FailurePolicy`, the per-task deadline
watchdog, partial-result :class:`~repro.api.results.FailedRecord`
round-trips, and the CLI's ``--on-error`` / ``--inject`` exit codes.
"""

import json
import time

import pytest

from repro import FailurePolicy, Study
from repro.api.results import FailedRecord, Record, ResultSet
from repro.engine import EvaluationCache, run_jobs
from repro.engine.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    resolve_plan,
    task_deadline,
)
from repro.exceptions import (
    JobQuarantinedError,
    ReproError,
    StoreLockTimeout,
    TaskTimeoutError,
    WorkerCrashError,
)


def _study():
    return (Study()
            .systems("albireo", "crossbar")
            .networks("tiny")
            .scenarios("conservative")
            .grid(global_buffer_kib=[512, 1024]))


#: Sub-task-level fault: fires inside pool workers (parallel paths).
RAISE_ALBIREO_CONV1 = [{"match": "albireo:conv1:layer",
                        "action": "raise", "attempt": -1}]

#: Job-level fault: fires on every execution path (serial included).
RAISE_ALBIREO_JOB = [{"match": "albireo:*:job",
                      "action": "raise", "attempt": -1}]


class TestExceptionHierarchy:
    def test_new_errors_are_repro_errors(self):
        for error_type in (TaskTimeoutError, JobQuarantinedError,
                           WorkerCrashError, StoreLockTimeout,
                           InjectedFault):
            assert issubclass(error_type, ReproError)
            with pytest.raises(ReproError):
                raise error_type("boom")


class TestFaultPlan:
    def test_spec_matching_and_attempt_pinning(self):
        spec = FaultSpec(match="albireo:*:layer", attempt=0)
        assert spec.applies("albireo:conv1:layer", 0)
        assert not spec.applies("albireo:conv1:layer", 1)  # pinned
        assert not spec.applies("crossbar:conv1:layer", 0)
        every = FaultSpec(match="*", attempt=-1)
        assert every.applies("anything:at:all", 7)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(match="*", action="explode")

    def test_from_dict_validates_keys(self):
        with pytest.raises(ValueError, match="unknown fault spec keys"):
            FaultSpec.from_dict({"match": "*", "acton": "raise"})
        with pytest.raises(ValueError, match="'match' pattern"):
            FaultSpec.from_dict({"action": "raise"})

    def test_plan_first_match_fires(self):
        plan = FaultPlan([FaultSpec(match="a:*", action="raise",
                                    message="first"),
                          FaultSpec(match="*", action="raise",
                                    message="second")])
        with pytest.raises(InjectedFault, match="first"):
            plan.check("a:x:layer", 0)
        with pytest.raises(InjectedFault, match="second"):
            plan.check("b:x:layer", 0)
        plan.check("never", 5)  # FaultSpec defaults pin to attempt 0

    def test_wire_round_trip(self):
        plan = FaultPlan.from_data(
            {"faults": [{"match": "*:conv1:*", "action": "sleep",
                         "seconds": 1.5, "attempt": 2}]})
        rebuilt = FaultPlan.from_wire(plan.to_wire())
        assert rebuilt.specs == plan.specs
        assert FaultPlan.from_wire(None) is None

    def test_from_json_and_resolve(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(RAISE_ALBIREO_CONV1))
        for source in (str(path), RAISE_ALBIREO_CONV1,
                       FaultPlan.from_json(str(path))):
            plan = resolve_plan(source)
            assert len(plan) == 1
            assert plan.specs[0].match == "albireo:conv1:layer"

    def test_env_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_INJECT", raising=False)
        assert resolve_plan(None) is None
        monkeypatch.setenv("REPRO_INJECT",
                           json.dumps(RAISE_ALBIREO_CONV1))
        assert len(resolve_plan(None)) == 1
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(RAISE_ALBIREO_CONV1))
        monkeypatch.setenv("REPRO_INJECT", str(path))
        assert len(resolve_plan(None)) == 1


class TestTaskDeadline:
    def test_deadline_interrupts_sleep(self):
        started = time.perf_counter()
        with pytest.raises(TaskTimeoutError, match="deadline"):
            with task_deadline(0.2):
                time.sleep(30)
        assert time.perf_counter() - started < 5.0

    def test_no_deadline_is_a_no_op(self):
        with task_deadline(None):
            pass
        with task_deadline(0):
            pass

    def test_timer_disarmed_after_scope(self):
        with task_deadline(0.2):
            pass
        time.sleep(0.3)  # an armed leftover timer would fire here


class TestFailurePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="on_error"):
            FailurePolicy(on_error="explode")
        with pytest.raises(ValueError, match="max_retries"):
            FailurePolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            FailurePolicy(backoff=-0.1)
        with pytest.raises(ValueError, match="task_timeout"):
            FailurePolicy(task_timeout=0.0)

    def test_default_is_fail_stop(self):
        assert not FailurePolicy().captures
        assert FailurePolicy(on_error="skip").captures


class TestFailStopDefault:
    def test_injected_fault_aborts_serial_run(self):
        with pytest.raises(InjectedFault):
            _study().run(inject=RAISE_ALBIREO_JOB)

    def test_injected_fault_aborts_parallel_run(self):
        with pytest.raises(InjectedFault):
            _study().run(workers=2, cache=EvaluationCache(),
                         inject=RAISE_ALBIREO_CONV1)

    def test_on_error_raise_policy_identical_to_none(self):
        with pytest.raises(InjectedFault):
            _study().run(failure_policy=FailurePolicy(on_error="raise"),
                         inject=RAISE_ALBIREO_JOB)


class TestSkipPolicy:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_failed_points_become_records_rest_completes(self, workers):
        cache = EvaluationCache()
        results = _study().run(
            workers=workers, cache=cache,
            failure_policy=FailurePolicy(on_error="skip"),
            inject=RAISE_ALBIREO_JOB)
        assert len(results) == 4
        assert len(results.ok()) == 2
        failures = results.failures
        assert len(failures) == 2
        for record in failures:
            assert record.failed
            assert record.tags["system"] == "albireo"
            assert record.error == "InjectedFault"
            assert record.attempts == 1
            assert not record.quarantined
        # skip mode never quarantines
        assert cache.resilience.quarantines == 0

    def test_ok_results_match_clean_run(self):
        clean = _study().run()
        injected = _study().run(
            workers=2, cache=EvaluationCache(),
            failure_policy=FailurePolicy(on_error="skip"),
            inject=RAISE_ALBIREO_CONV1)
        clean_crossbar = [r.metrics for r in clean
                          if r.tags["system"] == "crossbar"]
        assert [r.metrics for r in injected.ok()] == clean_crossbar


class TestRetryPolicy:
    def test_transient_fault_retried_to_success(self):
        """An attempt-0-only fault fails once, then the retry passes —
        final results are bit-identical to an uninjected serial run."""
        cache = EvaluationCache()
        transient = [{"match": "*:conv2:layer", "action": "raise",
                      "attempt": 0}]
        results = _study().run(
            workers=2, cache=cache,
            failure_policy=FailurePolicy(on_error="retry", max_retries=2,
                                         backoff=0.0),
            inject=transient)
        assert not results.failures
        reference = _study().run()
        assert [r.metrics for r in results] == \
            [r.metrics for r in reference]
        assert cache.resilience.retries > 0
        assert cache.resilience.quarantines == 0

    def test_deterministic_failure_quarantined_then_skipped(self):
        """A job failing every attempt is quarantined after
        ``max_retries``; a rerun against the same cache skips it
        immediately as ``JobQuarantinedError`` while the rest stays
        served."""
        cache = EvaluationCache()
        policy = FailurePolicy(on_error="retry", max_retries=1,
                               backoff=0.0)
        results = _study().run(workers=2, cache=cache,
                               failure_policy=policy,
                               inject=RAISE_ALBIREO_CONV1)
        failures = results.failures
        assert len(failures) == 2
        for record in failures:
            assert record.quarantined
            assert record.error == "InjectedFault"
            assert record.attempts == 2  # initial + one retry
        assert cache.resilience.quarantines == 2
        assert cache.resilience.retries == 2

        rerun = _study().run(workers=2, cache=cache,
                             failure_policy=policy,
                             inject=RAISE_ALBIREO_CONV1)
        assert len(rerun.ok()) == 2
        assert {record.error for record in rerun.failures} == \
            {"JobQuarantinedError"}
        # Quarantine rows live in the cache's failures namespace and are
        # visible through uncounted peeks.
        quarantined = [key for key in cache._data["failures"]]
        assert len(quarantined) == 2
        assert "quarantine" in cache.describe_stats()

    def test_timeout_respected_and_retried(self):
        """A task sleeping past ``task_timeout`` raises
        ``TaskTimeoutError`` worker-side; pinned to attempt 0, the retry
        finishes and results match the clean run."""
        cache = EvaluationCache()
        sleepy = [{"match": "*:conv1:layer", "action": "sleep",
                   "seconds": 30.0, "attempt": 0}]
        started = time.perf_counter()
        results = _study().run(
            workers=2, cache=cache,
            failure_policy=FailurePolicy(on_error="retry", max_retries=2,
                                         backoff=0.0, task_timeout=0.5),
            inject=sleepy)
        elapsed = time.perf_counter() - started
        assert elapsed < 25.0  # the 30 s sleeps were cut short
        assert not results.failures
        reference = _study().run()
        assert [r.metrics for r in results] == \
            [r.metrics for r in reference]
        assert cache.resilience.timeouts > 0
        assert cache.resilience.retries > 0


class TestPartialResults:
    def _mixed(self):
        cache = EvaluationCache()
        return _study().run(
            workers=2, cache=cache,
            failure_policy=FailurePolicy(on_error="skip"),
            inject=RAISE_ALBIREO_CONV1)

    def test_json_round_trip(self):
        results = self._mixed()
        rebuilt = ResultSet.from_json(results.to_json())
        assert len(rebuilt) == len(results)
        assert len(rebuilt.failures) == 2
        for record in rebuilt.failures:
            assert isinstance(record, FailedRecord)
            assert record.error == "InjectedFault"
            assert record.attempts == 1
        assert [r.tags for r in rebuilt] == [r.tags for r in results]
        assert [r.metrics for r in rebuilt.ok()] == \
            [r.metrics for r in results.ok()]

    def test_csv_gets_failure_columns(self):
        text = self._mixed().to_csv()
        header = text.splitlines()[0].split(",")
        for key in ("error", "error_message", "attempts", "quarantined"):
            assert key in header
        assert "InjectedFault" in text

    def test_ranking_verbs_exclude_failures(self):
        results = self._mixed()
        assert not any(r.failed for r in results.pareto())
        assert not any(r.failed for r in results.top_k(10))
        assert not results.best().failed

    def test_report_marks_failed_rows(self):
        text = self._mixed().report()
        assert "FAILED:InjectedFault" in text

    def test_failed_record_value_is_strict(self):
        record = FailedRecord(tags={"system": "albireo"}, metrics={},
                              error="Boom", error_message="bang")
        assert record["system"] == "albireo"
        assert record["error"] == "Boom"
        assert "energy_pj" not in record
        with pytest.raises(ReproError, match="failed with Boom"):
            record.value("energy_pj")

    def test_all_failed_best_raises_clearly(self):
        from repro.exceptions import SpecError

        only_failed = ResultSet([FailedRecord(tags={}, metrics={})])
        with pytest.raises(SpecError, match="no successful"):
            only_failed.best()
        assert isinstance(Record(tags={}, metrics={}), Record)


class TestCliFaults:
    def _spec(self, tmp_path):
        spec = {
            "name": "faulty",
            "systems": ["albireo", "crossbar"],
            "networks": ["tiny"],
            "scenarios": ["conservative"],
            "options": {"use_mapper": False},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_on_error_skip_exits_3_with_split_json(self, tmp_path,
                                                   capsys):
        from repro.cli import main

        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps(RAISE_ALBIREO_CONV1))
        out_path = tmp_path / "records.json"
        code = main(["run", self._spec(tmp_path),
                     "--workers", "2", "--on-error", "skip",
                     "--inject", str(faults),
                     "--json", str(out_path)])
        assert code == 3
        assert "failures: 1 of 2 points failed" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        rows = payload["records"]
        assert len(rows) == 2
        failed = [row for row in rows if "error" in row]
        assert len(failed) == 1
        assert failed[0]["error"] == "InjectedFault"
        assert failed[0]["system"] == "albireo"

    def test_clean_run_with_policy_exits_0(self, tmp_path):
        from repro.cli import main

        assert main(["run", self._spec(tmp_path),
                     "--on-error", "skip"]) == 0

    def test_library_error_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"systems": ["warpdrive"],
                                   "networks": ["tiny"]}))
        assert main(["run", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")
