"""Tests for figure bucket schemes."""

from repro.model.buckets import (
    BucketRule,
    BucketScheme,
    component_rule,
    dataspace_rule,
)
from repro.workloads import DataSpace

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


def _scheme():
    return BucketScheme(
        name="test",
        rules=(
            dataspace_rule("dac", W, "weight-path"),
            dataspace_rule("dac", I, "input-path"),
            component_rule("adc", "output-path"),
            BucketRule(component="*", dataspace=O, bucket="any-output"),
        ),
        default="misc",
        order=("weight-path", "input-path", "output-path"),
    )


class TestMatching:
    def test_dataspace_specific(self):
        scheme = _scheme()
        assert scheme.bucket_of("dac", W) == "weight-path"
        assert scheme.bucket_of("dac", I) == "input-path"

    def test_component_any_dataspace(self):
        scheme = _scheme()
        assert scheme.bucket_of("adc", O) == "output-path"
        assert scheme.bucket_of("adc", None) == "output-path"

    def test_wildcard_component(self):
        assert _scheme().bucket_of("buffer", O) == "any-output"

    def test_default(self):
        assert _scheme().bucket_of("mystery", None) == "misc"

    def test_first_match_wins(self):
        scheme = BucketScheme(
            name="t",
            rules=(component_rule("x", "first"),
                   component_rule("x", "second")),
        )
        assert scheme.bucket_of("x", None) == "first"


class TestOrdering:
    def test_sort_key_orders_listed_first(self):
        scheme = _scheme()
        assert scheme.sort_key("weight-path") < scheme.sort_key("misc")
        assert scheme.sort_key("input-path") < scheme.sort_key("output-path")

    def test_unlisted_buckets_last(self):
        scheme = _scheme()
        assert scheme.sort_key("zzz")[0] == len(scheme.order)


class TestAlbireoSchemes:
    def test_fig2_buckets_cover_albireo_components(self):
        from repro.systems import FIG2_BUCKETS

        assert FIG2_BUCKETS.bucket_of("WeightModulator", W) == "MRR"
        assert FIG2_BUCKETS.bucket_of("InputMZM", I) == "MZM"
        assert FIG2_BUCKETS.bucket_of("laser", None) == "Laser"
        assert FIG2_BUCKETS.bucket_of("OutputPhotodiode", O) == "AO/AE"
        assert FIG2_BUCKETS.bucket_of("WeightDAC", W) == "DE/AE"
        assert FIG2_BUCKETS.bucket_of("InputDAC", I) == "DE/AE"
        assert FIG2_BUCKETS.bucket_of("OutputADC", O) == "AE/DE"
        assert FIG2_BUCKETS.bucket_of("GlobalBuffer", W) == "Cache"
        assert FIG2_BUCKETS.bucket_of("DRAM", W) == "DRAM"

    def test_system_buckets_pair_conversions_with_dataspaces(self):
        from repro.systems import SYSTEM_BUCKETS

        assert SYSTEM_BUCKETS.bucket_of("WeightDAC", W) \
            == "Weight DE/AE, AE/AO"
        assert SYSTEM_BUCKETS.bucket_of("WeightModulator", W) \
            == "Weight DE/AE, AE/AO"
        assert SYSTEM_BUCKETS.bucket_of("InputMZM", I) \
            == "Input DE/AE, AE/AO"
        assert SYSTEM_BUCKETS.bucket_of("OutputADC", O) \
            == "Output AO/AE, AE/DE"
        assert SYSTEM_BUCKETS.bucket_of("GlobalBuffer", I) \
            == "On-Chip Buffer"
        assert SYSTEM_BUCKETS.bucket_of("laser", None) == "Other AO"
