"""Tests for memory-bandwidth modeling (memory-bound throughput)."""

import pytest

from repro.arch import Architecture, ComputeLevel, Domain, SpatialFanout, \
    StorageLevel
from repro.mapping import FanoutMapping, LevelMapping, Mapping, \
    TemporalLoop, analyze
from repro.systems import AlbireoConfig, AlbireoSystem
from repro.workloads import ConvLayer, DataSpace, dense_layer
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


def _arch(dram_bw=None):
    return Architecture(name="bw", nodes=(
        StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                     dataspaces={W, I, O},
                     bandwidth_bits_per_cycle=dram_bw),
        StorageLevel(name="GB", component="sram", domain=Domain.DE,
                     capacity_bits=1e9, dataspaces={W, I, O}),
        SpatialFanout(name="pe", size=16, allowed_dims={Dim.M},
                      multicast={I}),
        ComputeLevel(name="mac", component="mac", domain=Domain.DE),
    ))


def _mapping():
    return Mapping(
        levels=(LevelMapping("DRAM", ()),
                LevelMapping("GB", (TemporalLoop(Dim.C, 64),))),
        spatials=(FanoutMapping("pe", {Dim.M: 16}),),
    )


LAYER = ConvLayer(name="fc", m=16, c=64)


class TestAnalysisBandwidth:
    def test_no_bandwidth_means_compute_bound(self):
        counts = analyze(_arch(None), LAYER, _mapping())
        assert counts.bandwidth_cycles == {}
        assert counts.effective_cycles == counts.cycles
        assert counts.bandwidth_bound_level is None

    def test_traffic_bits_computed_for_all_levels(self):
        counts = analyze(_arch(None), LAYER, _mapping())
        # DRAM moves the three tensors once: (16*64 W + 64 I + 16 O) * 8b.
        assert counts.traffic_bits["DRAM"] == pytest.approx(
            (16 * 64 + 64 + 16) * 8)

    def test_tight_bandwidth_stalls(self):
        # 8 bits/cycle: DRAM traffic of 8832 bits needs 1104 cycles,
        # far above the 64 compute cycles.
        counts = analyze(_arch(8.0), LAYER, _mapping())
        assert counts.cycles == 64
        assert counts.effective_cycles == pytest.approx(1104.0)
        assert counts.bandwidth_bound_level == "DRAM"

    def test_ample_bandwidth_no_stall(self):
        counts = analyze(_arch(1e6), LAYER, _mapping())
        assert counts.effective_cycles == counts.cycles
        assert counts.bandwidth_bound_level is None


class TestAlbireoBandwidth:
    def test_default_is_unbounded(self):
        config = AlbireoConfig()
        assert config.dram_bandwidth_bits_per_cycle is None

    def test_bits_per_cycle_conversion(self):
        # 25.6 GB/s at 5 GHz: 25.6 * 8 / 5 = 40.96 bits/cycle.
        config = AlbireoConfig(dram_bandwidth_gbps=25.6)
        assert config.dram_bandwidth_bits_per_cycle == pytest.approx(40.96)

    def test_fc_layer_becomes_memory_bound(self):
        """A batch-1 FC layer streams one weight per MAC: with realistic
        DRAM bandwidth, throughput is memory-limited, not compute-limited —
        the effect the paper's Fig. 3 convention ignores by design."""
        fc = dense_layer("fc6", 4096, 4096)
        unbounded = AlbireoSystem(AlbireoConfig()).evaluate_layer(fc)
        bounded = AlbireoSystem(
            AlbireoConfig(dram_bandwidth_gbps=25.6)).evaluate_layer(fc)
        assert bounded.cycles > 5 * unbounded.cycles
        assert bounded.bandwidth_bound_level == "DRAM"
        assert bounded.macs_per_cycle < unbounded.macs_per_cycle

    def test_conv_layer_compute_bound_with_hbm(self):
        """A reuse-heavy convolution needs ~95 GB/s to feed Albireo's
        32 TMAC/s; HBM2-class bandwidth makes it compute-bound while
        DDR4-class does not — a genuinely useful system-level insight
        this model adds beyond the paper's compute-only Fig. 3."""
        conv = ConvLayer(name="c", m=128, c=128, p=28, q=28, r=3, s=3)
        ddr = AlbireoSystem(
            AlbireoConfig(dram_bandwidth_gbps=25.6)).evaluate_layer(conv)
        hbm = AlbireoSystem(
            AlbireoConfig(dram_bandwidth_gbps=256.0)).evaluate_layer(conv)
        assert ddr.bandwidth_bound_level == "DRAM"
        assert hbm.bandwidth_bound_level is None
        assert hbm.cycles == hbm.compute_cycles

    def test_fusion_elision_reduces_bandwidth_pressure(self):
        conv = ConvLayer(name="c", m=64, c=64, p=56, q=56, r=1, s=1)
        system = AlbireoSystem(AlbireoConfig(dram_bandwidth_gbps=4.0))
        base = system.evaluate_layer(conv)
        fused = system.evaluate_layer(conv, input_from_dram=False,
                                      output_to_dram=False)
        assert fused.cycles <= base.cycles
