"""Tests for electrical component estimators (SRAM, DRAM, logic)."""

import pytest

from repro.energy import estimate
from repro.exceptions import CalibrationError


class TestSram:
    def test_energy_grows_with_capacity(self):
        small = estimate("sram", "s", {"capacity_bits": 64 * 1024 * 8})
        large = estimate("sram", "l", {"capacity_bits": 1024 * 1024 * 8})
        assert large.energy("read") > small.energy("read")

    def test_sqrt_capacity_scaling(self):
        base = estimate("sram", "b", {"capacity_bits": 64 * 1024 * 8})
        quad = estimate("sram", "q", {"capacity_bits": 4 * 64 * 1024 * 8})
        assert quad.energy("read") == pytest.approx(
            2 * base.energy("read"), rel=0.05)

    def test_banking_reduces_access_energy(self):
        flat = estimate("sram", "f", {"capacity_bits": 1024 * 1024 * 8})
        banked = estimate("sram", "b", {"capacity_bits": 1024 * 1024 * 8,
                                        "banks": 16})
        assert banked.energy("read") < flat.energy("read")

    def test_htree_term_for_large_buffers(self):
        # Same bank size, 8x the capacity: only the H-tree term differs.
        one = estimate("sram", "o", {"capacity_bits": 1024 * 1024 * 8,
                                     "banks": 16})
        eight = estimate("sram", "e", {"capacity_bits": 8 * 1024 * 1024 * 8,
                                       "banks": 128})
        assert eight.energy("read") > one.energy("read")
        assert eight.energy("read") < 1.5 * one.energy("read")

    def test_write_costs_more_than_read(self):
        entry = estimate("sram", "s", {"capacity_bits": 1024 * 8})
        assert entry.energy("write") > entry.energy("read")

    def test_width_scales_energy(self):
        narrow = estimate("sram", "n", {"capacity_bits": 1024 * 8,
                                        "width_bits": 8})
        wide = estimate("sram", "w", {"capacity_bits": 1024 * 8,
                                      "width_bits": 16})
        assert wide.energy("read") == pytest.approx(
            2 * narrow.energy("read"))

    def test_area_scales_with_bits(self):
        small = estimate("sram", "s", {"capacity_bits": 1024})
        large = estimate("sram", "l", {"capacity_bits": 2048})
        assert large.area_um2 == pytest.approx(2 * small.area_um2)

    def test_rejects_bad_capacity(self):
        with pytest.raises(CalibrationError):
            estimate("sram", "s", {"capacity_bits": 0})

    def test_rejects_bad_banks(self):
        with pytest.raises(CalibrationError):
            estimate("sram", "s", {"capacity_bits": 1024, "banks": 0})

    def test_reasonable_absolute_value(self):
        # A 64 KiB macro reads ~6 fJ/bit -> ~0.05 pJ per 8-bit element.
        entry = estimate("sram", "s", {"capacity_bits": 64 * 1024 * 8,
                                       "width_bits": 8})
        assert 0.01 < entry.energy("read") < 0.2


class TestDram:
    def test_technology_presets_ordered(self):
        ddr4 = estimate("dram", "a", {"technology": "ddr4"})
        lpddr4 = estimate("dram", "b", {"technology": "lpddr4"})
        hbm2 = estimate("dram", "c", {"technology": "hbm2"})
        assert ddr4.energy("read") > lpddr4.energy("read") \
            > hbm2.energy("read")

    def test_default_is_ddr4_16pj_per_bit(self):
        entry = estimate("dram", "d", {"width_bits": 8})
        assert entry.energy("read") == pytest.approx(128.0)

    def test_pj_per_bit_override(self):
        entry = estimate("dram", "d", {"pj_per_bit": 4.0, "width_bits": 8})
        assert entry.energy("read") == pytest.approx(32.0)

    def test_unknown_technology_raises(self):
        with pytest.raises(CalibrationError):
            estimate("dram", "d", {"technology": "ddr9"})

    def test_offchip_has_no_area(self):
        assert estimate("dram", "d", {}).area_um2 == 0.0


class TestLogic:
    def test_register(self):
        entry = estimate("register", "r", {"width_bits": 8})
        assert entry.energy("read") == pytest.approx(0.012, rel=0.01)

    def test_adder_linear_in_width(self):
        a8 = estimate("adder", "a", {"width_bits": 8})
        a16 = estimate("adder", "b", {"width_bits": 16})
        assert a16.energy("compute") == pytest.approx(
            2 * a8.energy("compute"))

    def test_multiplier_quadratic_in_width(self):
        m8 = estimate("multiplier", "a", {"width_bits": 8})
        m16 = estimate("multiplier", "b", {"width_bits": 16})
        assert m16.energy("compute") == pytest.approx(
            4 * m8.energy("compute"))

    def test_integrator_update_is_cheap(self):
        entry = estimate("analog_integrator", "i", {})
        assert entry.energy("update") < 0.05

    def test_wire_scales_with_length(self):
        short = estimate("wire", "s", {"length_mm": 1.0})
        long = estimate("wire", "l", {"length_mm": 3.0})
        assert long.energy("transfer") == pytest.approx(
            3 * short.energy("transfer"))

    def test_wire_rejects_negative_length(self):
        with pytest.raises(CalibrationError):
            estimate("wire", "w", {"length_mm": -1.0})

    def test_constant_component(self):
        entry = estimate("constant", "c", {"energy_pj": 0.5,
                                           "actions": ("ping",)})
        assert entry.energy("ping") == 0.5

    def test_constant_default_zero(self):
        entry = estimate("constant", "c", {})
        assert entry.energy("compute") == 0.0
