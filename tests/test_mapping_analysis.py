"""Tests for the access-count analysis engine.

Every count in the first two test classes is verified by hand against the
Timeloop dataflow model (the derivations are spelled out in comments), so
these tests pin the engine's semantics, not just its stability.
"""

import pytest

from repro.arch import (
    Architecture,
    ComputeLevel,
    Conversion,
    ConverterStage,
    Domain,
    SpatialFanout,
    StorageLevel,
)
from repro.exceptions import CapacityError, MappingError
from repro.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
    analyze,
)
from repro.workloads import ConvLayer, DataSpace
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


class TestHandVerifiedTwoLevel:
    """M=4, C=2, P=2, Q=2 conv; M spatial on a 4-wide multicast array."""

    @pytest.fixture
    def counts(self, two_level_arch, small_conv):
        mapping = Mapping(
            levels=(
                LevelMapping("DRAM", ()),
                LevelMapping("GB", (TemporalLoop(Dim.C, 2),
                                    TemporalLoop(Dim.Q, 2),
                                    TemporalLoop(Dim.P, 2))),
            ),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        return analyze(two_level_arch, small_conv, mapping)

    def test_padded_and_cycles(self, counts):
        assert counts.padded_macs == 32
        assert counts.cycles == 8
        assert counts.padding_utilization == 1.0

    def test_weights(self, counts):
        # Every MAC reads a weight; no multicast for weights (M is
        # relevant), so GB serves 32 reads; the 8-element weight tensor is
        # fetched once from DRAM.
        gb, dram = counts.storage["GB"], counts.storage["DRAM"]
        assert gb.reads[W] == 32
        assert gb.writes[W] == 8
        assert dram.reads[W] == 8

    def test_inputs_multicast(self, counts):
        # The array multicasts inputs across M: 32 MACs / 4 = 8 reads.
        gb, dram = counts.storage["GB"], counts.storage["DRAM"]
        assert gb.reads[I] == 8
        assert gb.writes[I] == 8
        assert dram.reads[I] == 8

    def test_outputs(self, counts):
        # 16 outputs, each accumulated over C=2: 32 updates at GB, one
        # writeback each; no partial-sum RMW at DRAM.
        gb, dram = counts.storage["GB"], counts.storage["DRAM"]
        assert gb.writes[O] == 32
        assert gb.reads[O] == 32  # 16 RMW + 16 outgoing
        assert dram.writes[O] == 16
        assert dram.reads.get(O, 0) == 0

    def test_instances(self, counts):
        assert counts.instances["GB"] == 1
        assert counts.instances["DRAM"] == 1


class TestHandVerifiedPermutations:
    """M=4, C=4 matrix-vector product, no spatial array."""

    def _counts(self, flat_arch, dram_loops, gb_loops):
        layer = ConvLayer(name="t", m=4, c=4)
        mapping = Mapping(levels=(
            LevelMapping("DRAM", dram_loops),
            LevelMapping("GB", gb_loops),
        ))
        return analyze(flat_arch, layer, mapping)

    def test_m_outer_c_inner(self, flat_arch):
        counts = self._counts(
            flat_arch,
            dram_loops=(TemporalLoop(Dim.M, 4),),
            gb_loops=(TemporalLoop(Dim.C, 4),),
        )
        gb, dram = counts.storage["GB"], counts.storage["DRAM"]
        # Weight tiles of 4 fetched once per M step: 16 total = tensor.
        assert dram.reads[W] == 16
        # Inputs: the C-tile persists across the M loop (irrelevant): one
        # fetch of 4 elements.
        assert dram.reads[I] == 4
        # Outputs: each M step accumulates fully in GB, then writes back.
        assert dram.writes[O] == 4
        assert dram.reads.get(O, 0) == 0
        assert gb.reads[O] == 16  # 12 RMW + 4 outgoing

    def test_c_outer_m_inner_forces_spills(self, flat_arch):
        counts = self._counts(
            flat_arch,
            dram_loops=(TemporalLoop(Dim.C, 4), TemporalLoop(Dim.M, 4)),
            gb_loops=(),
        )
        dram = counts.storage["DRAM"]
        # GB tile is one element; every (c, m) revisit spills partials:
        # 16 writebacks, 12 of them partial merges read back at DRAM.
        assert dram.writes[O] == 16
        assert dram.reads[O] == 12
        # Inputs: initial irrelevant run (M innermost) gives reuse: the
        # 4 inputs are each fetched once.
        assert dram.reads[I] == 4
        assert dram.reads[W] == 16

    def test_transparent_unit_loops_do_not_break_reuse(self, flat_arch):
        counts = self._counts(
            flat_arch,
            dram_loops=(TemporalLoop(Dim.C, 4),
                        TemporalLoop(Dim.N, 1),   # bound-1: transparent
                        TemporalLoop(Dim.M, 4)),
            gb_loops=(),
        )
        assert counts.storage["DRAM"].reads[I] == 4


class TestInputHalo:
    def test_gb_input_fills_use_halo(self, flat_arch):
        # P=4 at GB with R=3 temporal at GB too: input tile is 6 rows.
        layer = ConvLayer(name="h", p=4, r=3)
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("GB", (TemporalLoop(Dim.P, 4),
                                TemporalLoop(Dim.R, 3))),
        ))
        counts = analyze(flat_arch, layer, mapping)
        assert counts.storage["DRAM"].reads[I] == 6

    def test_strided_halo(self, flat_arch):
        layer = ConvLayer(name="h", p=4, r=3, stride_h=2)
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("GB", (TemporalLoop(Dim.P, 4),
                                TemporalLoop(Dim.R, 3))),
        ))
        counts = analyze(flat_arch, layer, mapping)
        assert counts.storage["DRAM"].reads[I] == 9  # (4-1)*2 + 3


class TestConverters:
    def test_converter_events_and_multicast(self, converter_arch):
        # M=8 spatial with input multicast: weight DAC converts per MAC,
        # input DAC converts once per broadcast.
        layer = ConvLayer(name="c", m=8, c=4)
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.C, 4),))),
            spatials=(FanoutMapping("array", {Dim.M: 8}),),
        )
        counts = analyze(converter_arch, layer, mapping)
        assert counts.conversions["WDAC"][W] == 32
        assert counts.conversions["IDAC"][I] == 4  # 32 / 8 multicast
        assert counts.conversions["ADC"][O] == 32  # every partial, no red.

    def test_converter_total_helper(self, converter_arch):
        layer = ConvLayer(name="c", m=8, c=4)
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.C, 4),))),
            spatials=(FanoutMapping("array", {Dim.M: 8}),),
        )
        counts = analyze(converter_arch, layer, mapping)
        assert counts.converter_events("WDAC") == 32


class TestSpatialReduction:
    @pytest.fixture
    def reduce_arch(self):
        return Architecture(name="red", nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=1e9, dataspaces={W, I, O}),
            SpatialFanout(name="tree", size=4, allowed_dims={Dim.C},
                          reduction={O}),
            ComputeLevel(name="mac", component="mac", domain=Domain.DE),
        ))

    def test_full_reduction(self, reduce_arch):
        layer = ConvLayer(name="r", m=2, c=4)
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.M, 2),))),
            spatials=(FanoutMapping("tree", {Dim.C: 4}),),
        )
        counts = analyze(reduce_arch, layer, mapping)
        # 8 MACs reduce 4:1 spatially: GB receives 2 updates (one per M).
        assert counts.storage["GB"].writes[O] == 2

    def test_reduction_limit_caps_amortization(self, reduce_arch):
        limited = reduce_arch.replace_node(
            "tree",
            SpatialFanout(name="tree", size=4, allowed_dims={Dim.C},
                          reduction={O}, reduction_limit=2),
        )
        layer = ConvLayer(name="r", m=2, c=4)
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.M, 2),))),
            spatials=(FanoutMapping("tree", {Dim.C: 4}),),
        )
        counts = analyze(limited, layer, mapping)
        # Only pairs merge: 8 MACs -> 4 updates into GB.
        assert counts.storage["GB"].writes[O] == 4


class TestAccumulationDepth:
    @pytest.fixture
    def integrator_arch(self):
        return Architecture(name="acc", nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=1e9, dataspaces={W, I, O}),
            StorageLevel(name="ACC", component="acc", domain=Domain.AE,
                         dataspaces={O}, capacity_bits=8.0,
                         allowed_temporal_dims={Dim.C, Dim.R, Dim.S},
                         max_accumulation_depth=4.0),
            ComputeLevel(name="mac", component="mac", domain=Domain.AE),
        ))

    def test_depth_limits_absorption(self, integrator_arch):
        # C=16 accumulation with depth 4: the integrator must write back
        # 4 partials per output even though its loops could absorb all 16.
        layer = ConvLayer(name="a", m=2, c=16)
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("GB", (TemporalLoop(Dim.M, 2),)),
            LevelMapping("ACC", (TemporalLoop(Dim.C, 16),)),
        ))
        counts = analyze(integrator_arch, layer, mapping)
        # 32 updates in, depth 4 -> at least 8 writebacks into GB.
        assert counts.storage["GB"].writes[O] == 8

    def test_within_depth_no_extra_writebacks(self, integrator_arch):
        layer = ConvLayer(name="a", m=2, c=4)
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("GB", (TemporalLoop(Dim.M, 2),)),
            LevelMapping("ACC", (TemporalLoop(Dim.C, 4),)),
        ))
        counts = analyze(integrator_arch, layer, mapping)
        assert counts.storage["GB"].writes[O] == 2  # one per output


class TestCapacity:
    def test_capacity_violation_raises(self, small_conv):
        tiny = Architecture(name="tiny", nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=64.0, dataspaces={W, I, O}),
            ComputeLevel(name="mac", component="mac", domain=Domain.DE),
        ))
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                TemporalLoop(Dim.C, 2),
                                TemporalLoop(Dim.P, 2),
                                TemporalLoop(Dim.Q, 2))),
        ))
        with pytest.raises(CapacityError):
            analyze(tiny, small_conv, mapping)

    def test_check_capacity_false_permits(self, small_conv):
        tiny = Architecture(name="tiny", nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=64.0, dataspaces={W, I, O}),
            ComputeLevel(name="mac", component="mac", domain=Domain.DE),
        ))
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                TemporalLoop(Dim.C, 2),
                                TemporalLoop(Dim.P, 2),
                                TemporalLoop(Dim.Q, 2))),
        ))
        counts = analyze(tiny, small_conv, mapping, check_capacity=False)
        assert counts.occupancy_bits["GB"] > 64.0


class TestConservation:
    """Cross-level conservation laws that any correct analysis satisfies."""

    def test_dram_weight_reads_at_least_tensor(self, two_level_arch,
                                               medium_conv):
        mapping = Mapping(
            levels=(LevelMapping("DRAM", (TemporalLoop(Dim.C, 8),)),
                    LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                        TemporalLoop(Dim.P, 8),
                                        TemporalLoop(Dim.Q, 8),
                                        TemporalLoop(Dim.R, 3),
                                        TemporalLoop(Dim.S, 3)))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        counts = analyze(two_level_arch, medium_conv, mapping)
        assert counts.storage["DRAM"].reads[W] \
            >= medium_conv.weight_elements

    def test_output_writebacks_equal_tensor_when_no_spills(
            self, two_level_arch, medium_conv):
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                        TemporalLoop(Dim.P, 8),
                                        TemporalLoop(Dim.Q, 8),
                                        TemporalLoop(Dim.C, 8),
                                        TemporalLoop(Dim.R, 3),
                                        TemporalLoop(Dim.S, 3)))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        counts = analyze(two_level_arch, medium_conv, mapping)
        assert counts.storage["DRAM"].writes[O] \
            == medium_conv.output_elements

    def test_gb_output_updates_equal_macs(self, two_level_arch,
                                          medium_conv):
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                        TemporalLoop(Dim.P, 8),
                                        TemporalLoop(Dim.Q, 8),
                                        TemporalLoop(Dim.C, 8),
                                        TemporalLoop(Dim.R, 3),
                                        TemporalLoop(Dim.S, 3)))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        counts = analyze(two_level_arch, medium_conv, mapping)
        assert counts.storage["GB"].writes[O] == counts.padded_macs
