"""White-box tests for the mapper's candidate generators."""

import random

import pytest

from repro.arch import Architecture, ComputeLevel, Domain, SpatialFanout, \
    StorageLevel
from repro.mapping import Mapper, MappingConstraints
from repro.mapping.constraints import FanoutConstraint
from repro.mapping.mapper import _ordered_loops, _PERMUTATION_TEMPLATES
from repro.mapping.mapping import problem_dims
from repro.workloads import ConvLayer, DataSpace
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


def _arch_with_fanout(size=8, dims=(Dim.M, Dim.C)):
    return Architecture(name="t", nodes=(
        StorageLevel(name="DRAM", component="d", domain=Domain.DE,
                     dataspaces={W, I, O}),
        StorageLevel(name="GB", component="s", domain=Domain.DE,
                     capacity_bits=1e9, dataspaces={W, I, O}),
        SpatialFanout(name="pe", size=size,
                      allowed_dims=frozenset(dims), multicast={I}),
        ComputeLevel(name="mac", component="m", domain=Domain.DE),
    ))


def _noop_cost(mapping):
    return 0.0


class TestFanoutOptions:
    def _options(self, layer, constraints=None, size=8,
                 dims=(Dim.M, Dim.C)):
        arch = _arch_with_fanout(size=size, dims=dims)
        mapper = Mapper(arch, _noop_cost, constraints=constraints)
        fanout = arch.fanouts[0]
        remaining = problem_dims(layer)
        return mapper._fanout_options(fanout, remaining)

    def test_includes_empty_option(self):
        options = self._options(ConvLayer(name="l", m=8, c=8))
        assert {} in options

    def test_greedy_fill_present(self):
        options = self._options(ConvLayer(name="l", m=8, c=8))
        assert any(factors.get(Dim.M, 1) * factors.get(Dim.C, 1) == 8
                   for factors in options)

    def test_respects_max_instances(self):
        constraints = MappingConstraints(
            fanouts={"pe": FanoutConstraint(max_instances=2)})
        options = self._options(ConvLayer(name="l", m=8, c=8),
                                constraints=constraints)
        for factors in options:
            product = 1
            for factor in factors.values():
                product *= factor
            assert product <= 2

    def test_respects_forbidden_dims(self):
        constraints = MappingConstraints(
            fanouts={"pe": FanoutConstraint(forbidden_dims={Dim.C})})
        options = self._options(ConvLayer(name="l", m=8, c=8),
                                constraints=constraints)
        assert all(Dim.C not in factors for factors in options)

    def test_unit_dims_yield_only_empty(self):
        options = self._options(ConvLayer(name="l", m=1, c=1))
        assert options == [{}]

    def test_single_dim_fill(self):
        options = self._options(ConvLayer(name="l", m=64, c=1),
                                dims=(Dim.M,))
        assert {Dim.M: 8} in options


class TestOrderedLoops:
    def test_template_order_respected(self):
        factors = {Dim.M: 4, Dim.C: 2, Dim.P: 3}
        loops = _ordered_loops(factors,
                               _PERMUTATION_TEMPLATES["protect_outputs"])
        dims = [loop.dim for loop in loops]
        # protect_outputs puts reduction dims innermost (last).
        assert dims.index(Dim.C) > dims.index(Dim.M)

    def test_unit_factors_skipped(self):
        loops = _ordered_loops({Dim.M: 1, Dim.C: 4},
                               _PERMUTATION_TEMPLATES["protect_weights"])
        assert len(loops) == 1 and loops[0].dim == Dim.C

    def test_all_templates_cover_all_dims(self):
        for name, template in _PERMUTATION_TEMPLATES.items():
            assert set(template) == set(Dim), name


class TestSearchDeterminismAndSampling:
    def test_generation_capped_by_max_evaluations(self):
        arch = _arch_with_fanout()
        layer = ConvLayer(name="l", m=16, c=16, p=8, q=8)
        calls = []

        def counting_cost(mapping):
            calls.append(1)
            return 1.0

        mapper = Mapper(arch, counting_cost)
        mapper.search(layer, max_evaluations=50, seed=0)
        assert len(calls) <= 50

    def test_different_seeds_may_differ_but_stay_valid(self):
        arch = _arch_with_fanout()
        layer = ConvLayer(name="l", m=16, c=16, p=8, q=8)

        def traffic(mapping):
            from repro.mapping import analyze

            counts = analyze(arch, layer, mapping)
            return counts.storage["DRAM"].total_reads

        mapper = Mapper(arch, traffic)
        costs = {mapper.search(layer, max_evaluations=150,
                               seed=seed).cost for seed in range(3)}
        assert all(cost < float("inf") for cost in costs)


class TestStationaryOptions:
    def test_weight_holder_gets_fill_option(self):
        arch = Architecture(name="t", nodes=(
            StorageLevel(name="DRAM", component="d", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="s", domain=Domain.DE,
                         capacity_bits=1e9, dataspaces={W, I, O}),
            StorageLevel(name="Bank", component="b", domain=Domain.AE,
                         capacity_bits=64 * 8.0, dataspaces={W}),
            ComputeLevel(name="mac", component="m", domain=Domain.DE),
        ))
        mapper = Mapper(arch, _noop_cost)
        layer = ConvLayer(name="l", m=16, c=16, p=4, q=4)
        bank = arch.storage_levels[2]
        options = mapper._stationary_options(bank, layer,
                                             problem_dims(layer))
        assert {} in options
        fills = [o for o in options if o]
        assert fills, "expected a fill-to-capacity option"
        for option in fills:
            product = 1
            for factor in option.values():
                product *= factor
            assert product <= 64  # capacity in elements

    def test_tiny_capacity_passthrough_only(self):
        arch = Architecture(name="t", nodes=(
            StorageLevel(name="DRAM", component="d", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="Reg", component="r", domain=Domain.DE,
                         capacity_bits=8.0, dataspaces={W}),
            ComputeLevel(name="mac", component="m", domain=Domain.DE),
        ))
        mapper = Mapper(arch, _noop_cost)
        layer = ConvLayer(name="l", m=16, c=16)
        register = arch.storage_levels[1]
        options = mapper._stationary_options(register, layer,
                                             problem_dims(layer))
        assert options == [{}]
