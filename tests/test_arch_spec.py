"""Tests for dict-spec serialization of architectures."""

import pytest

from repro.arch import (
    Architecture,
    Domain,
    architecture_from_dict,
    architecture_to_dict,
)
from repro.exceptions import SpecError
from repro.systems import AlbireoConfig, build_albireo_architecture


MINIMAL_SPEC = {
    "name": "mini",
    "clock_ghz": 2.0,
    "nodes": [
        {"type": "storage", "name": "DRAM", "component": "dram",
         "domain": "DE", "dataspaces": ["Weights", "Inputs", "Outputs"]},
        {"type": "fanout", "name": "array", "size": 8,
         "allowed_dims": ["M"], "multicast": ["Inputs"]},
        {"type": "converter", "name": "adc", "component": "adc",
         "from": "AE", "to": "DE", "dataspaces": ["Outputs"]},
        {"type": "compute", "name": "mac", "component": "mac",
         "domain": "AE",
         "actions": [{"component": "laser", "events_per_mac": 0.5}]},
    ],
}


class TestFromDict:
    def test_minimal(self):
        arch = architecture_from_dict(MINIMAL_SPEC)
        assert arch.name == "mini"
        assert arch.clock_ghz == 2.0
        assert arch.peak_parallelism == 8
        assert arch.compute.actions[0].events_per_mac == 0.5

    def test_missing_top_key(self):
        with pytest.raises(SpecError):
            architecture_from_dict({"nodes": []})

    def test_missing_node_type(self):
        spec = dict(MINIMAL_SPEC, nodes=[{"name": "x"}])
        with pytest.raises(SpecError):
            architecture_from_dict(spec)

    def test_unknown_node_type(self):
        spec = dict(MINIMAL_SPEC, nodes=[{"type": "warp-drive"}])
        with pytest.raises(SpecError):
            architecture_from_dict(spec)

    def test_missing_required_field_reports_index(self):
        spec = dict(MINIMAL_SPEC,
                    nodes=[{"type": "storage", "name": "S"}])
        with pytest.raises(SpecError) as excinfo:
            architecture_from_dict(spec)
        assert "#0" in str(excinfo.value)

    def test_bad_domain_value(self):
        node = dict(MINIMAL_SPEC["nodes"][0], domain="XX")
        spec = dict(MINIMAL_SPEC, nodes=[node] + MINIMAL_SPEC["nodes"][1:])
        with pytest.raises(SpecError):
            architecture_from_dict(spec)


class TestRoundTrip:
    def test_minimal_roundtrip(self):
        arch = architecture_from_dict(MINIMAL_SPEC)
        spec = architecture_to_dict(arch)
        again = architecture_from_dict(spec)
        assert architecture_to_dict(again) == spec

    def test_albireo_roundtrip(self):
        arch = build_albireo_architecture(AlbireoConfig())
        spec = architecture_to_dict(arch)
        again = architecture_from_dict(spec)
        assert again.name == arch.name
        assert again.peak_parallelism == arch.peak_parallelism
        assert [n.name for n in again.nodes] == [n.name for n in arch.nodes]
        # Full fidelity.
        assert architecture_to_dict(again) == spec

    def test_roundtrip_preserves_accumulation_depth(self):
        arch = build_albireo_architecture(AlbireoConfig(output_reuse=15))
        spec = architecture_to_dict(arch)
        again = architecture_from_dict(spec)
        integrator = again.node_named("AEIntegrator")
        assert integrator.max_accumulation_depth == \
            arch.node_named("AEIntegrator").max_accumulation_depth

    def test_spec_is_json_serializable(self):
        import json

        arch = build_albireo_architecture(AlbireoConfig())
        text = json.dumps(architecture_to_dict(arch))
        again = architecture_from_dict(json.loads(text))
        assert again.peak_parallelism == arch.peak_parallelism
