"""End-to-end integration scenarios crossing module boundaries."""

import json

import pytest

from repro import (
    AGGRESSIVE,
    AlbireoConfig,
    AlbireoSystem,
    CrossbarConfig,
    CrossbarSystem,
    architecture_from_dict,
    architecture_to_dict,
    mapping_from_dict,
    mapping_to_dict,
)
from repro.cli import main
from repro.workloads import tiny_cnn
from repro.workloads.spec import network_from_dict, network_to_dict


class TestFullSerializationPipeline:
    """Everything needed to reproduce an experiment round-trips through
    JSON: architecture, workload, and mapping."""

    def test_archive_and_replay(self, tmp_path):
        system = AlbireoSystem(AlbireoConfig(scenario=AGGRESSIVE))
        network = tiny_cnn()
        layer = network.entries[0].layer
        mapping = system.reference_mapping(layer)
        baseline = system.evaluate_layer(layer, mapping=mapping)

        archive = tmp_path / "experiment.json"
        archive.write_text(json.dumps({
            "architecture": architecture_to_dict(system.architecture),
            "network": network_to_dict(network),
            "mapping": mapping_to_dict(mapping),
        }))

        loaded = json.loads(archive.read_text())
        arch = architecture_from_dict(loaded["architecture"])
        net = network_from_dict(loaded["network"])
        replayed_mapping = mapping_from_dict(loaded["mapping"])

        from repro.model import AcceleratorModel

        model = AcceleratorModel(arch, system.energy_table)
        replayed = model.evaluate_layer(
            net.entries[0].layer, replayed_mapping,
            analysis_layer=system.analysis_layer(net.entries[0].layer))
        assert replayed.energy_pj == pytest.approx(baseline.energy_pj)
        assert replayed.cycles == baseline.cycles


class TestCrossSystemConsistency:
    """Physics that must hold regardless of architecture."""

    def test_same_workload_same_dram_compulsory_traffic(self):
        """Both systems fetch at least the compulsory tensors from DRAM
        for an un-fused, batch-1 network."""
        from repro.mapping.analysis import analyze

        network = tiny_cnn()
        layer = network.entries[0].layer
        for system in (AlbireoSystem(AlbireoConfig()),
                       CrossbarSystem(CrossbarConfig())):
            target = layer
            if hasattr(system, "analysis_layer"):
                target = system.analysis_layer(layer)
            counts = analyze(system.architecture, target,
                             system.reference_mapping(layer))
            dram = counts.storage["DRAM"]
            from repro.workloads import DataSpace

            assert dram.reads[DataSpace.WEIGHTS] >= layer.weight_elements

    def test_scenario_scaling_moves_both_systems(self):
        from repro.energy import CONSERVATIVE
        from repro.workloads import ConvLayer

        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        for build in (
                lambda s: AlbireoSystem(AlbireoConfig(scenario=s)),
                lambda s: CrossbarSystem(CrossbarConfig(scenario=s))):
            conservative_system = build(CONSERVATIVE)
            aggressive_system = build(AGGRESSIVE)
            conservative = conservative_system.evaluate_layer(layer)
            aggressive = aggressive_system.evaluate_layer(layer)
            assert aggressive.energy_per_mac_pj \
                < conservative.energy_per_mac_pj
            # With the *same* schedule, throughput is device-energy
            # independent (reference mappings may differ because the
            # candidate choice is energy-priced per scenario).
            shared = conservative_system.reference_mapping(layer)
            assert aggressive_system.evaluate_layer(
                layer, mapping=shared).cycles \
                == conservative.cycles


class TestCliIntegration:
    def test_compare_command(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "albireo" in out and "crossbar" in out

    def test_sensitivity_command(self, capsys):
        assert main(["sensitivity"]) == 0
        assert "fixed_loss_db" in capsys.readouterr().out

    def test_roofline_command(self, capsys):
        assert main(["roofline"]) == 0
        out = capsys.readouterr().out
        assert "Roofline" in out and "memory" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5"]) == 0
        assert "More Weight Reuse" in capsys.readouterr().out

    def test_fig4_command(self, capsys):
        assert main(["fig4"]) == 0
        assert "DRAM" in capsys.readouterr().out
