"""Tests for the figure experiments: paper-claim reproduction.

These are the headline integration tests — each asserts the *shape* claims
of the corresponding paper figure, with the tolerances recorded in
EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig2_validation,
    fig3_throughput,
    fig4_memory,
    fig5_reuse,
)
from repro.experiments.reported import (
    FIG2_REPORTED,
    FIG3_REPORTED,
    FIG5_INPUT_REUSE,
    FIG5_OUTPUT_REUSE,
)


@pytest.fixture(scope="module")
def fig2():
    return fig2_validation.run()


@pytest.fixture(scope="module")
def fig3():
    return fig3_throughput.run()


@pytest.fixture(scope="module")
def fig4():
    return fig4_memory.run()


@pytest.fixture(scope="module")
def fig5():
    return fig5_reuse.run()


class TestFig2:
    def test_three_scenarios(self, fig2):
        assert [v.scenario for v in fig2.validations] \
            == ["conservative", "moderate", "aggressive"]

    def test_average_error_within_claim(self, fig2):
        # Paper: 0.4% average overall error; we allow 1% for transcription.
        assert fig2.average_error <= 0.01
        assert fig2.meets_paper_claim

    def test_every_bucket_close(self, fig2):
        for validation in fig2.validations:
            for bucket, reported in validation.reported.items():
                modeled = validation.modeled[bucket]
                assert modeled == pytest.approx(reported, rel=0.05), \
                    f"{validation.scenario}/{bucket}"

    def test_scenario_totals_ordered(self, fig2):
        totals = [v.modeled_total for v in fig2.validations]
        assert totals[0] > totals[1] > totals[2]

    def test_conservative_magnitude(self, fig2):
        # The figure's conservative bar sits between 3 and 4 pJ/MAC.
        assert 2.5 < fig2.validations[0].modeled_total < 4.5

    def test_table_renders(self, fig2):
        text = fig2.table()
        assert "MRR" in text and "error" in text


class TestFig3:
    def test_vgg16_near_ideal(self, fig3):
        vgg = fig3.for_network("VGG16")
        assert vgg.modeled_over_ideal >= 0.70

    def test_alexnet_severely_degraded(self, fig3):
        alex = fig3.for_network("AlexNet")
        assert alex.modeled_over_reported <= 0.50

    def test_alexnet_worse_than_vgg(self, fig3):
        assert fig3.for_network("AlexNet").modeled \
            < 0.5 * fig3.for_network("VGG16").modeled

    def test_modeled_below_ideal_always(self, fig3):
        for throughput in fig3.throughputs:
            assert throughput.modeled <= throughput.ideal

    def test_claims_met(self, fig3):
        assert fig3.meets_paper_claims

    def test_ideal_matches_peak(self, fig3):
        assert fig3.for_network("VGG16").ideal == 6480

    def test_table_renders(self, fig3):
        text = fig3.table()
        assert "VGG16" in text and "AlexNet" in text

    def test_fc_layers_underutilized_in_breakdown(self, fig3):
        alex = fig3.for_network("AlexNet")
        fc_evals = [e for e, _ in alex.evaluation.layers
                    if e.layer.is_fully_connected]
        assert fc_evals
        for evaluation in fc_evals:
            assert evaluation.utilization < 0.15


class TestFig4:
    def test_aggressive_dram_dominant(self, fig4):
        share = fig4.dram_share("aggressive")
        assert share >= 0.55, f"DRAM share {share:.0%}, paper says 75%"

    def test_conservative_dram_small(self, fig4):
        assert fig4.dram_share("conservative") <= 0.30

    def test_combined_reduction_near_3x(self, fig4):
        reduction = fig4.combined_reduction("aggressive")
        assert reduction >= 0.50, \
            f"combined reduction {reduction:.0%}, paper says 67%"

    def test_batching_helps(self, fig4):
        base = fig4.point("aggressive", batch=1, fused=False)
        batched = fig4.point("aggressive", batch=8, fused=False)
        assert batched.energy_per_mac_pj < base.energy_per_mac_pj

    def test_fusion_helps(self, fig4):
        base = fig4.point("aggressive", batch=1, fused=False)
        fused = fig4.point("aggressive", batch=1, fused=True)
        assert fused.energy_per_mac_pj < base.energy_per_mac_pj

    def test_fusion_grows_buffer_energy(self, fig4):
        base = fig4.buckets_per_mac(
            fig4.point("aggressive", batch=8, fused=False))
        fused = fig4.buckets_per_mac(
            fig4.point("aggressive", batch=8, fused=True))
        # The paper's stated cost of fusion: more on-chip buffer energy.
        assert fused["On-Chip Buffer"] > base["On-Chip Buffer"]

    def test_claims_met(self, fig4):
        assert fig4.meets_paper_claims

    def test_table_renders(self, fig4):
        assert "DRAM" in fig4.table()


class TestFig5:
    def test_full_grid(self, fig5):
        assert len(fig5.points) == (len(FIG5_OUTPUT_REUSE)
                                    * len(FIG5_INPUT_REUSE) * 2)

    def test_or_monotonic_within_variant(self, fig5):
        for variant in ("Original", "More Weight Reuse"):
            for input_reuse in FIG5_INPUT_REUSE:
                energies = [
                    fig5.point(variant, output_reuse, input_reuse)
                    .energy_per_mac_pj
                    for output_reuse in FIG5_OUTPUT_REUSE
                ]
                assert energies == sorted(energies, reverse=True), \
                    f"{variant} IR={input_reuse}: {energies}"

    def test_ir_reduces_input_conversion(self, fig5):
        low = fig5.buckets_per_mac(fig5.point("Original", 3, 9))
        high = fig5.buckets_per_mac(fig5.point("Original", 3, 45))
        assert high["Input DE/AE, AE/AO"] < low["Input DE/AE, AE/AO"]

    def test_weight_reuse_reduces_weight_conversion(self, fig5):
        original = fig5.buckets_per_mac(fig5.point("Original", 3, 9))
        mwr = fig5.buckets_per_mac(
            fig5.point("More Weight Reuse", 3, 9))
        assert mwr["Weight DE/AE, AE/AO"] \
            < 0.6 * original["Weight DE/AE, AE/AO"]

    def test_converter_reduction_claim(self, fig5):
        # Paper: 42%; require at least ~70% of it.
        assert fig5.converter_reduction >= 0.30

    def test_accelerator_reduction_claim(self, fig5):
        # Paper: 31%.
        assert fig5.accelerator_reduction >= 0.22

    def test_claims_met(self, fig5):
        assert fig5.meets_paper_claims

    def test_table_renders(self, fig5):
        text = fig5.table()
        assert "More Weight Reuse" in text


class TestReportedData:
    def test_fig2_reported_buckets_consistent(self):
        for scenario, buckets in FIG2_REPORTED.items():
            assert set(buckets) == {"MRR", "MZM", "Laser", "AO/AE",
                                    "DE/AE", "AE/DE", "Cache"}, scenario
            assert all(value > 0 for value in buckets.values())

    def test_fig3_reported_ordering(self):
        for network, series in FIG3_REPORTED.items():
            assert series["modeled"] <= series["reported"] \
                <= series["ideal"], network


class TestRunner:
    def test_run_all_reports(self):
        from repro.experiments import run_all

        results = run_all()
        assert all(results.claims.values()), results.claims
        report = results.report()
        assert "Claim summary" in report
