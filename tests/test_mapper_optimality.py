"""Mapper-quality tests: heuristic search vs brute-force enumeration.

On a problem small enough to enumerate completely, the heuristic mapper
must find (near-)optimal mappings.  This pins the search quality that the
paper's design-space-exploration claims rest on.
"""

import itertools

import pytest

from repro.arch import Architecture, ComputeLevel, Domain, SpatialFanout, \
    StorageLevel
from repro.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapper,
    Mapping,
    TemporalLoop,
    analyze,
)
from repro.mapping.factorization import divisors, factor_splits
from repro.workloads import ConvLayer, DataSpace
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS

LAYER = ConvLayer(name="tiny", m=4, c=4, p=4, q=1)
ACTIVE_DIMS = (Dim.M, Dim.C, Dim.P)

ARCH = Architecture(name="tiny", nodes=(
    StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                 dataspaces={W, I, O}),
    StorageLevel(name="GB", component="sram", domain=Domain.DE,
                 capacity_bits=24 * 8.0, dataspaces={W, I, O}),
    SpatialFanout(name="pe", size=4, allowed_dims={Dim.M, Dim.C},
                  multicast={I}, reduction={O}),
    ComputeLevel(name="mac", component="mac", domain=Domain.DE),
))

#: Cost: DRAM traffic weighted heavily + GB traffic (an energy proxy with
#: the hierarchy's natural cost ratio).
def _cost(mapping: Mapping) -> float:
    counts = analyze(ARCH, LAYER, mapping)
    dram = counts.storage["DRAM"]
    gb = counts.storage["GB"]
    return 100.0 * (dram.total_reads + dram.total_writes) \
        + (gb.total_reads + gb.total_writes)


def _enumerate_all():
    """Every exact mapping: spatial options x per-dim splits x orders."""
    spatial_options = []
    for m_sp in divisors(4):
        for c_sp in divisors(4):
            if m_sp * c_sp <= 4:
                spatial_options.append({Dim.M: m_sp, Dim.C: c_sp})
    orderings = list(itertools.permutations(ACTIVE_DIMS))
    best = (float("inf"), None)
    total = 0
    for spatial in spatial_options:
        leftovers = {dim: LAYER.dims[dim] // spatial.get(dim, 1)
                     for dim in ACTIVE_DIMS}
        per_dim_splits = {
            dim: list(factor_splits(leftovers[dim], 2))
            for dim in ACTIVE_DIMS
        }
        for combo in itertools.product(*(per_dim_splits[d]
                                         for d in ACTIVE_DIMS)):
            split = dict(zip(ACTIVE_DIMS, combo))
            for dram_order in orderings:
                for gb_order in orderings:
                    dram_loops = tuple(
                        TemporalLoop(d, split[d][0]) for d in dram_order
                        if split[d][0] > 1)
                    gb_loops = tuple(
                        TemporalLoop(d, split[d][1]) for d in gb_order
                        if split[d][1] > 1)
                    mapping = Mapping(
                        levels=(LevelMapping("DRAM", dram_loops),
                                LevelMapping("GB", gb_loops)),
                        spatials=(FanoutMapping("pe", spatial),),
                    )
                    total += 1
                    try:
                        cost = _cost(mapping)
                    except Exception:
                        continue
                    if cost < best[0]:
                        best = (cost, mapping)
    return best, total


class TestMapperOptimality:
    @pytest.fixture(scope="class")
    def brute_force(self):
        return _enumerate_all()

    def test_enumeration_is_substantial(self, brute_force):
        (_, _), total = brute_force
        assert total > 1000  # genuinely exhaustive, not a token sweep

    def test_brute_force_found_valid(self, brute_force):
        (cost, mapping), _ = brute_force
        assert mapping is not None and cost < float("inf")

    def test_heuristic_within_two_percent_of_optimum(self, brute_force):
        (optimum, _), _ = brute_force
        mapper = Mapper(ARCH, _cost)
        result = mapper.search(LAYER, max_evaluations=3000, seed=0)
        assert result.cost <= optimum * 1.02, \
            f"heuristic {result.cost} vs optimum {optimum}"

    def test_heuristic_robust_across_seeds(self, brute_force):
        (optimum, _), _ = brute_force
        mapper = Mapper(ARCH, _cost)
        for seed in range(5):
            result = mapper.search(LAYER, max_evaluations=3000, seed=seed)
            assert result.cost <= optimum * 1.10, f"seed {seed}"

    def test_optimum_exploits_spatial_reduction(self, brute_force):
        """With input multicast and output reduction on the array, the
        optimal schedule uses the fanout (sanity on the brute force)."""
        (_, mapping), _ = brute_force
        assert mapping.total_spatial_product > 1
