"""Tests for energy breakdowns and evaluation result containers."""

import pytest

from repro.model.buckets import BucketScheme, component_rule
from repro.model.results import (
    EnergyBreakdown,
    LayerEvaluation,
    NetworkEvaluation,
)
from repro.workloads import ConvLayer, DataSpace

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


def _breakdown():
    breakdown = EnergyBreakdown()
    breakdown.add("adc", O, 10.0)
    breakdown.add("dac", W, 5.0)
    breakdown.add("dac", I, 3.0)
    breakdown.add("laser", None, 2.0)
    return breakdown


class TestEnergyBreakdown:
    def test_total(self):
        assert _breakdown().total_pj == 20.0

    def test_add_accumulates(self):
        breakdown = _breakdown()
        breakdown.add("adc", O, 1.0)
        assert breakdown.entries()[("adc", O)] == 11.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            _breakdown().add("adc", O, -1.0)

    def test_component_total(self):
        assert _breakdown().component_total("dac") == 8.0

    def test_dataspace_total(self):
        assert _breakdown().dataspace_total(W) == 5.0
        assert _breakdown().dataspace_total(None) == 2.0

    def test_addition(self):
        combined = _breakdown() + _breakdown()
        assert combined.total_pj == 40.0

    def test_scaled(self):
        assert _breakdown().scaled(0.5).total_pj == 10.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            _breakdown().scaled(-1.0)

    def test_per_mac(self):
        assert _breakdown().per_mac(10).total_pj == 2.0

    def test_per_mac_rejects_zero(self):
        with pytest.raises(ValueError):
            _breakdown().per_mac(0)

    def test_grouped(self):
        scheme = BucketScheme(
            name="t",
            rules=(component_rule("adc", "converters"),
                   component_rule("dac", "converters")),
            default="other",
            order=("converters", "other"),
        )
        grouped = _breakdown().grouped(scheme)
        assert grouped == {"converters": 18.0, "other": 2.0}
        assert list(grouped) == ["converters", "other"]

    def test_top_contributors(self):
        top = _breakdown().top_contributors(2)
        assert top[0] == (("adc", O), 10.0)
        assert len(top) == 2

    def test_describe_contains_total(self):
        assert "TOTAL" in _breakdown().describe()


def _layer_eval(cycles=100, real=3200, padded=3200):
    return LayerEvaluation(
        layer=ConvLayer(name="l", m=4, c=2, p=20, q=20),
        energy=_breakdown(),
        cycles=cycles,
        real_macs=real,
        padded_macs=padded,
        peak_parallelism=64,
        clock_ghz=2.0,
    )


class TestLayerEvaluation:
    def test_energy_per_mac(self):
        assert _layer_eval().energy_per_mac_pj == pytest.approx(20.0 / 3200)

    def test_macs_per_cycle(self):
        assert _layer_eval().macs_per_cycle == 32.0

    def test_utilization(self):
        assert _layer_eval().utilization == pytest.approx(0.5)

    def test_latency(self):
        assert _layer_eval().latency_ns == pytest.approx(50.0)

    def test_describe(self):
        assert "MACs/cycle" in _layer_eval().describe()


class TestNetworkEvaluation:
    def _network_eval(self):
        return NetworkEvaluation(
            name="net",
            layers=((_layer_eval(), 2), (_layer_eval(cycles=50), 1)),
            clock_ghz=2.0,
            peak_parallelism=64,
        )

    def test_totals_respect_counts(self):
        evaluation = self._network_eval()
        assert evaluation.total_cycles == 250
        assert evaluation.total_macs == 3 * 3200
        assert evaluation.energy_pj == pytest.approx(60.0)

    def test_aggregate_rates(self):
        evaluation = self._network_eval()
        assert evaluation.macs_per_cycle == pytest.approx(9600 / 250)
        assert evaluation.energy_per_mac_pj == pytest.approx(60.0 / 9600)
        assert 0 < evaluation.utilization <= 1.0

    def test_describe_lists_layers(self):
        assert "x2" in self._network_eval().describe()
