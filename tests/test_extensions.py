"""Tests for the extension features: optical DRAM I/O (DO domain),
static power accounting, Pareto DSE helpers, and the MobileNetV1 workload.
"""

import pytest

from repro.systems import (
    AlbireoConfig,
    AlbireoSystem,
    pareto_frontier,
    sweep_configurations,
)
from repro.systems.albireo import (
    OPTICAL_IO_DRAM_CORE_PJ_PER_BIT,
    OPTICAL_LINK_RX_PJ_PER_BIT,
    OPTICAL_LINK_TX_PJ_PER_BIT,
)
from repro.workloads import ConvLayer, DataSpace, mobilenet_v1, tiny_cnn

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


class TestOpticalDramIo:
    def test_architecture_gains_link_stages(self):
        system = AlbireoSystem(AlbireoConfig(optical_dram_io=True))
        names = {c.name for c in system.architecture.converters}
        assert {"DramLinkTx", "DramLinkRx", "OutputLinkTx",
                "OutputLinkRx"} <= names

    def test_link_stages_are_do_domain(self):
        system = AlbireoSystem(AlbireoConfig(optical_dram_io=True))
        tx = system.architecture.node_named("DramLinkTx")
        assert tx.conversion.label == "DE/DO"
        rx = system.architecture.node_named("DramLinkRx")
        assert rx.conversion.label == "DO/DE"

    def test_baseline_has_no_links(self):
        system = AlbireoSystem(AlbireoConfig())
        names = {c.name for c in system.architecture.converters}
        assert "DramLinkTx" not in names

    def test_link_events_match_dram_traffic(self):
        from repro.mapping.analysis import analyze

        system = AlbireoSystem(AlbireoConfig(optical_dram_io=True))
        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        dram = counts.storage["DRAM"]
        tx_events = counts.conversions["DramLinkTx"]
        assert tx_events[W] == dram.reads[W]
        assert tx_events[I] == dram.reads[I]
        out_events = counts.conversions["OutputLinkTx"]
        assert out_events[O] == dram.writes[O]

    def test_optical_io_cuts_memory_energy(self):
        """Core 6 + link 2 pJ/bit beats the 16 pJ/bit DDR interface."""
        layer = ConvLayer(name="c", m=64, c=64, p=56, q=56, r=3, s=3)
        electrical = AlbireoSystem(AlbireoConfig()).evaluate_layer(layer)
        optical = AlbireoSystem(
            AlbireoConfig(optical_dram_io=True)).evaluate_layer(layer)

        def memory_energy(evaluation):
            return sum(
                value for (component, _), value
                in evaluation.energy.entries().items()
                if component == "DRAM" or "Link" in component)

        assert memory_energy(optical) < 0.7 * memory_energy(electrical)
        expected_ratio = (
            OPTICAL_IO_DRAM_CORE_PJ_PER_BIT
            + OPTICAL_LINK_TX_PJ_PER_BIT + OPTICAL_LINK_RX_PJ_PER_BIT
        ) / 16.0
        measured_ratio = memory_energy(optical) / memory_energy(electrical)
        assert measured_ratio == pytest.approx(expected_ratio, rel=0.05)

    def test_fusion_elides_link_events_too(self):
        system = AlbireoSystem(AlbireoConfig(optical_dram_io=True))
        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        fused = system.evaluate_layer(layer, input_from_dram=False,
                                      output_to_dram=False)
        for (component, dataspace), value in fused.energy.entries().items():
            if component in ("DramLinkTx", "DramLinkRx") and dataspace == I:
                assert value == 0.0
            if "OutputLink" in component:
                assert value == 0.0

    def test_fig2_buckets_fold_links_into_dram(self):
        from repro.systems import FIG2_BUCKETS

        assert FIG2_BUCKETS.bucket_of("DramLinkTx", W) == "DRAM"


class TestStaticPower:
    def test_albireo_static_power_positive_with_tuning(self):
        import dataclasses

        from repro.energy import estimate
        from repro.model import AcceleratorModel
        from repro.systems import build_albireo_architecture, \
            build_albireo_energy_table

        config = AlbireoConfig()
        table = build_albireo_energy_table(config)
        # Give the ring modulators a thermal tuning budget.
        table.replace(estimate("mrr", "weight_modulator",
                               {"energy_pj": 0.6, "tuning_mw": 0.01}))
        model = AcceleratorModel(build_albireo_architecture(config), table)
        powers = model.static_power_mw()
        assert powers["WeightModulator"] > 0
        # Positional instance count: the drive stage sits above the
        # weight-lane/star/site fanouts, so 16 cluster-level stages at
        # 10 uW each (the per-ring undercount is documented in DESIGN.md).
        assert powers["WeightModulator"] == pytest.approx(0.16, rel=0.01)

    def test_leakage_from_buffer(self):
        system = AlbireoSystem(AlbireoConfig())
        powers = system.model.static_power_mw()
        # The 1 MiB SRAM leaks (1 mW per Mbit in the model).
        assert powers.get("GlobalBuffer", 0) == pytest.approx(8.0, rel=0.01)


class TestParetoFrontier:
    def test_simple_frontier(self):
        points = [(1, 5), (2, 2), (3, 3)]
        assert pareto_frontier(points, lambda p: p) == [(1, 5), (2, 2)]

    def test_all_nondominated(self):
        points = [(1, 3), (2, 2), (3, 1)]
        assert pareto_frontier(points, lambda p: p) == points

    def test_single_point(self):
        assert pareto_frontier([(1, 1)], lambda p: p) == [(1, 1)]

    def test_duplicates_survive(self):
        points = [(1, 1), (1, 1)]
        assert len(pareto_frontier(points, lambda p: p)) == 2

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_configuration_sweep_pareto(self):
        network = tiny_cnn()
        configs = [AlbireoConfig(clusters=c) for c in (4, 8, 16)]
        results = sweep_configurations(network, configs)
        frontier = pareto_frontier(
            results,
            lambda item: (item[1].energy_pj, item[1].total_cycles))
        assert 1 <= len(frontier) <= len(results)
        # More clusters always cuts cycles here, so the largest config is
        # on the frontier.
        assert any(config.clusters == 16 for config, _ in frontier)


class TestMobileNet:
    def test_reference_macs(self):
        assert mobilenet_v1().total_macs == pytest.approx(0.569e9, rel=0.01)

    def test_reference_params(self):
        params = mobilenet_v1().total_weight_bits / 8
        assert params == pytest.approx(4.21e6, rel=0.02)

    def test_width_multiplier(self):
        full = mobilenet_v1().total_macs
        half = mobilenet_v1(width_multiplier=0.5).total_macs
        assert half < 0.4 * full

    def test_depthwise_layers_present(self):
        depthwise = [e.layer for e in mobilenet_v1()
                     if e.layer.is_depthwise]
        assert len(depthwise) == 13

    def test_albireo_hates_mobilenet(self):
        """Depthwise + pointwise layers should utilize Albireo far worse
        than ResNet18 — the broadcast fabric has nothing to broadcast."""
        from repro.workloads import resnet18

        system = AlbireoSystem(AlbireoConfig())
        mobile = system.evaluate_network(mobilenet_v1())
        resnet = system.evaluate_network(resnet18())
        assert mobile.utilization < 0.5 * resnet.utilization
