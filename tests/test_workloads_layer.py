"""Tests for layer shapes, derived geometry, and tensor volumes."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import ConvLayer, dense_layer, depthwise_layer
from repro.workloads.dims import Dim


class TestConstruction:
    def test_defaults_are_unit(self):
        layer = ConvLayer(name="x")
        assert layer.macs == 1
        assert layer.dims == {d: 1 for d in Dim}

    def test_rejects_zero_dim(self):
        with pytest.raises(WorkloadError):
            ConvLayer(name="x", m=0)

    def test_rejects_negative_stride(self):
        with pytest.raises(WorkloadError):
            ConvLayer(name="x", stride_h=-1)

    def test_rejects_non_integer(self):
        with pytest.raises(WorkloadError):
            ConvLayer(name="x", m=2.5)  # type: ignore[arg-type]

    def test_rejects_groups_not_dividing_m(self):
        with pytest.raises(WorkloadError):
            ConvLayer(name="x", m=3, c=4, groups=2)

    def test_rejects_groups_not_dividing_c(self):
        with pytest.raises(WorkloadError):
            ConvLayer(name="x", m=4, c=3, groups=2)


class TestGeometry:
    def test_input_size_unit_stride(self):
        layer = ConvLayer(name="x", p=4, q=6, r=3, s=3)
        assert layer.input_h == 6  # (4-1)*1 + 3
        assert layer.input_w == 8  # (6-1)*1 + 3

    def test_input_size_strided(self):
        layer = ConvLayer(name="x", p=4, q=4, r=3, s=3,
                          stride_h=2, stride_w=2)
        assert layer.input_h == 9  # (4-1)*2 + 3
        assert layer.input_w == 9

    def test_fc_input_is_one_pixel(self):
        layer = dense_layer("fc", 128, 64)
        assert layer.input_h == 1
        assert layer.input_w == 1

    def test_strides_property(self):
        layer = ConvLayer(name="x", stride_h=2, stride_w=3)
        assert layer.strides == (2, 3)


class TestVolumes:
    def test_macs(self):
        layer = ConvLayer(name="x", n=2, m=4, c=3, p=5, q=5, r=3, s=3)
        assert layer.macs == 2 * 4 * 3 * 5 * 5 * 3 * 3

    def test_macs_grouped(self):
        plain = ConvLayer(name="x", m=8, c=8, p=4, q=4, r=3, s=3)
        grouped = ConvLayer(name="x", m=8, c=8, p=4, q=4, r=3, s=3, groups=2)
        assert grouped.macs == plain.macs // 2

    def test_weight_elements(self):
        layer = ConvLayer(name="x", m=4, c=3, r=3, s=3)
        assert layer.weight_elements == 4 * 3 * 9

    def test_weight_elements_grouped(self):
        layer = ConvLayer(name="x", m=4, c=4, r=3, s=3, groups=2)
        assert layer.weight_elements == 4 * 2 * 9

    def test_input_elements(self):
        layer = ConvLayer(name="x", n=2, c=3, p=4, q=4, r=3, s=3)
        assert layer.input_elements == 2 * 3 * 6 * 6

    def test_output_elements(self):
        layer = ConvLayer(name="x", n=2, m=4, p=5, q=7)
        assert layer.output_elements == 2 * 4 * 5 * 7

    def test_bits_scale_with_width(self):
        layer8 = ConvLayer(name="x", m=4, c=3, r=3, s=3)
        layer16 = ConvLayer(name="x", m=4, c=3, r=3, s=3,
                            bits_per_weight=16)
        assert layer16.weight_bits == 2 * layer8.weight_bits


class TestClassification:
    def test_fully_connected(self):
        assert dense_layer("fc", 10, 20).is_fully_connected
        assert not ConvLayer(name="c", p=2).is_fully_connected

    def test_strided(self):
        assert ConvLayer(name="c", stride_h=2, p=2).is_strided
        assert not ConvLayer(name="c").is_strided

    def test_pointwise(self):
        assert ConvLayer(name="c", m=4, c=4, p=8, q=8).is_pointwise
        assert not ConvLayer(name="c", m=4, c=4, p=8, q=8, r=3,
                             s=3).is_pointwise
        assert not dense_layer("fc", 4, 4).is_pointwise

    def test_depthwise(self):
        layer = depthwise_layer("dw", channels=8, p=4, q=4)
        assert layer.is_depthwise
        assert layer.groups == 8
        assert layer.macs == 8 * 4 * 4 * 9


class TestTransforms:
    def test_with_batch(self):
        layer = ConvLayer(name="x", m=4, c=3, p=2, q=2)
        batched = layer.with_batch(8)
        assert batched.n == 8
        assert batched.macs == 8 * layer.macs

    def test_with_batch_rejects_zero(self):
        with pytest.raises(WorkloadError):
            ConvLayer(name="x").with_batch(0)

    def test_ungrouped_preserves_macs(self):
        grouped = ConvLayer(name="x", m=8, c=8, p=4, q=4, groups=4)
        flat = grouped.ungrouped()
        assert flat.groups == 1
        assert flat.macs * grouped.groups == grouped.macs * 1 \
            or flat.macs == grouped.macs // 1  # per-group problem
        # The ungrouped layer models ONE group's compute with full M.
        assert flat.c == grouped.c // grouped.groups

    def test_ungrouped_noop_for_plain(self):
        layer = ConvLayer(name="x", m=4)
        assert layer.ungrouped() is layer

    def test_describe_mentions_stride_and_groups(self):
        layer = ConvLayer(name="x", m=4, c=4, stride_h=2, groups=2, p=2)
        text = layer.describe()
        assert "stride" in text and "groups" in text

    def test_describe_plain(self):
        text = ConvLayer(name="plain", m=4).describe()
        assert "stride" not in text
