"""Tests for the area model, sensitivity analysis, calibration inversion,
and workload dict specs."""

import json

import pytest

from repro.energy.scaling import AGGRESSIVE, CONSERVATIVE
from repro.exceptions import CalibrationError, WorkloadError
from repro.experiments import calibration, sensitivity
from repro.experiments.reported import FIG2_REPORTED
from repro.model.area import area_report, system_area_report
from repro.systems import (
    AlbireoConfig,
    AlbireoSystem,
    CrossbarConfig,
    CrossbarSystem,
)
from repro.workloads import resnet18, tiny_cnn
from repro.workloads.spec import (
    layer_from_dict,
    layer_to_dict,
    network_from_dict,
    network_to_dict,
)


class TestAreaReport:
    def test_positional_fallback(self):
        system = AlbireoSystem(AlbireoConfig())
        report = area_report(system.architecture, system.energy_table)
        assert report.total_mm2 > 0
        assert report.area_of("GlobalBuffer") > 0

    def test_event_rate_sizes_adcs(self):
        """With a best-case reference analysis, ADC replication follows
        the conversion rate (432/cycle), not the list position (144)."""
        system = AlbireoSystem(AlbireoConfig())
        report = system_area_report(system)
        adcs = report.instances_of("OutputADC")
        # 6480 MACs/cycle / (5 wavelengths x OR 3) = 432 conversions/cycle.
        assert adcs == 432

    def test_event_rate_sizes_modulators(self):
        system = AlbireoSystem(AlbireoConfig())
        report = system_area_report(system)
        # One MZM modulation per 9-way broadcast: 6480/9 = 720 per cycle.
        assert report.instances_of("InputMZM") == 720

    def test_reference_beats_positional_for_converters(self):
        system = AlbireoSystem(AlbireoConfig())
        positional = area_report(system.architecture, system.energy_table)
        sized = system_area_report(system)
        assert sized.area_of("OutputADC") > positional.area_of("OutputADC")

    def test_crossbar_report(self):
        system = CrossbarSystem(CrossbarConfig())
        report = system_area_report(
            system, reference_layer=tiny_cnn().entries[0].layer)
        assert report.total_mm2 > 0

    def test_table_renders(self):
        system = AlbireoSystem(AlbireoConfig())
        text = system_area_report(system).table()
        assert "TOTAL" in text and "mm^2" in text

    def test_unknown_node_raises(self):
        system = AlbireoSystem(AlbireoConfig())
        report = system_area_report(system)
        with pytest.raises(KeyError):
            report.area_of("FluxCapacitor")


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(CONSERVATIVE)

    def test_covers_all_fields(self, result):
        assert {e.field for e in result.entries} \
            == set(sensitivity.PERTURBED_FIELDS)

    def test_energy_monotone_in_device_energy(self, result):
        for entry in result.entries:
            if entry.field == "laser_wall_plug_efficiency":
                # Efficiency is inverse: better efficiency, less energy.
                assert entry.high_pj_per_mac < entry.low_pj_per_mac
            else:
                assert entry.high_pj_per_mac > entry.low_pj_per_mac

    def test_optical_loss_is_the_dominant_sensitivity(self, result):
        """The tornado's head is the fixed optical loss: it enters the
        laser budget *exponentially* (dB -> linear), so a 20% loss error
        outweighs 20% on any single linearly-entering device energy — a
        genuinely useful calibration insight the analysis surfaces."""
        assert result.most_sensitive == "fixed_loss_db"

    def test_linear_parameters_rank_by_bucket_share(self, result):
        by_field = {e.field: e.magnitude for e in result.entries}
        # DAC feeds both weight and input paths (the largest linear
        # bucket), so it outranks the MZM and photodiode terms.
        assert by_field["dac_pj_at_8bit"] > by_field["mzm_pj"]
        assert by_field["dac_pj_at_8bit"] > by_field["photodiode_pj"]

    def test_swings_bounded_by_perturbation(self, result):
        # A +-20% perturbation of one component can move the total by at
        # most +-20% (shares are <= 1), modulo the loss exponent.
        for entry in result.entries:
            assert entry.magnitude <= 0.45

    def test_table_renders(self, result):
        text = result.table()
        assert "Sensitivity" in text and "+20%" in text


class TestCalibrationInversion:
    @pytest.mark.parametrize("scenario_name,efficiency,loss", [
        ("conservative", 0.10, 6.0),
        ("moderate", 0.15, 5.0),
        ("aggressive", 0.20, 4.0),
    ])
    def test_roundtrip_reproduces_targets(self, scenario_name, efficiency,
                                          loss):
        config = AlbireoConfig()
        targets = FIG2_REPORTED[scenario_name]
        derived = calibration.derive_scenario(
            f"derived-{scenario_name}", targets, config,
            wall_plug_efficiency=efficiency, fixed_loss_db=loss)
        error = calibration.calibration_error(
            {k: v for k, v in targets.items() if k != "Cache"},
            derived, config)
        assert error < 0.02, f"{scenario_name}: {error:.1%}"

    def test_derived_matches_shipped_scenario(self):
        """Inverting the conservative targets lands on (approximately)
        the shipped CONSERVATIVE parameters — the calibration is honest."""
        derived = calibration.derive_scenario(
            "check", FIG2_REPORTED["conservative"], AlbireoConfig(),
            wall_plug_efficiency=0.10, fixed_loss_db=6.0)
        assert derived.mzm_pj == pytest.approx(CONSERVATIVE.mzm_pj,
                                               rel=0.02)
        assert derived.dac_pj_at_8bit == pytest.approx(
            CONSERVATIVE.dac_pj_at_8bit, rel=0.02)
        assert derived.adc_fom_fj_per_step == pytest.approx(
            CONSERVATIVE.adc_fom_fj_per_step, rel=0.02)

    def test_missing_bucket_rejected(self):
        with pytest.raises(CalibrationError):
            calibration.derive_scenario(
                "bad", {"MRR": 1.0}, AlbireoConfig(),
                wall_plug_efficiency=0.1, fixed_loss_db=6.0)


class TestWorkloadSpec:
    def test_layer_roundtrip(self):
        layer = resnet18().entries[0].layer
        rebuilt = layer_from_dict(layer_to_dict(layer))
        assert rebuilt == layer

    def test_network_roundtrip(self):
        network = resnet18()
        rebuilt = network_from_dict(network_to_dict(network))
        assert rebuilt.total_macs == network.total_macs
        assert rebuilt.max_activation_bits == network.max_activation_bits
        assert len(rebuilt) == len(network)

    def test_roundtrip_through_json(self):
        network = tiny_cnn()
        text = json.dumps(network_to_dict(network))
        rebuilt = network_from_dict(json.loads(text))
        assert rebuilt.total_macs == network.total_macs

    def test_stride_shorthand(self):
        layer = layer_from_dict({"name": "s", "m": 4, "p": 4, "q": 4,
                                 "r": 3, "s": 3, "stride": 2})
        assert layer.stride_h == layer.stride_w == 2

    def test_unknown_key_rejected(self):
        with pytest.raises(WorkloadError):
            layer_from_dict({"name": "x", "padding": 1})

    def test_missing_name_rejected(self):
        with pytest.raises(WorkloadError):
            layer_from_dict({"m": 4})

    def test_empty_network_rejected(self):
        with pytest.raises(WorkloadError):
            network_from_dict({"name": "x", "layers": []})

    def test_first_flag_roundtrip(self):
        spec = {"name": "n", "layers": [
            {"name": "a", "m": 4, "c": 4},
            {"name": "b", "m": 4, "c": 4, "first": True},
        ]}
        network = network_from_dict(spec)
        assert not network.entries[1].consumes_previous_output
        assert network_to_dict(network)["layers"][1]["first"] is True
