"""Tests for factorization utilities."""

import math

import pytest

from repro.mapping.factorization import (
    balanced_split,
    ceil_div,
    divisors,
    factor_splits,
    padded_factor_splits,
    tile_candidates,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(12, 4) == 3

    def test_rounds_up(self):
        assert ceil_div(13, 4) == 4

    def test_one(self):
        assert ceil_div(5, 1) == 5

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)


class TestDivisors:
    def test_twelve(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_prime(self):
        assert divisors(13) == (1, 13)

    def test_one(self):
        assert divisors(1) == (1,)

    def test_square(self):
        assert divisors(36) == (1, 2, 3, 4, 6, 9, 12, 18, 36)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            divisors(0)

    @pytest.mark.parametrize("n", [2, 24, 97, 360, 1024])
    def test_all_divide(self, n):
        for d in divisors(n):
            assert n % d == 0

    def test_sorted_ascending(self):
        assert list(divisors(360)) == sorted(divisors(360))


class TestFactorSplits:
    def test_two_way(self):
        assert sorted(factor_splits(4, 2)) == [(1, 4), (2, 2), (4, 1)]

    def test_products_correct(self):
        for split in factor_splits(24, 3):
            assert math.prod(split) == 24

    def test_count_for_prime_power(self):
        # 8 = 2^3 into 2 parts: (1,8),(2,4),(4,2),(8,1).
        assert len(list(factor_splits(8, 2))) == 4

    def test_single_part(self):
        assert list(factor_splits(7, 1)) == [(7,)]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            list(factor_splits(0, 2))
        with pytest.raises(ValueError):
            list(factor_splits(4, 0))


class TestPaddedSplits:
    def test_includes_exact(self):
        splits = set(padded_factor_splits(6, 2, max_padding_ratio=1.0))
        assert splits == set(factor_splits(6, 2))

    def test_padding_covers_primes(self):
        # 7 padded up to 8 allows a (2, 4) split.
        splits = set(padded_factor_splits(7, 2, max_padding_ratio=1.2))
        assert (2, 4) in splits

    def test_all_products_at_least_n(self):
        for split in padded_factor_splits(10, 2, max_padding_ratio=1.5):
            assert math.prod(split) >= 10

    def test_rejects_ratio_below_one(self):
        with pytest.raises(ValueError):
            list(padded_factor_splits(4, 2, max_padding_ratio=0.5))


class TestTileCandidates:
    def test_divisors_included(self):
        assert set(divisors(12)) <= set(tile_candidates(12))

    def test_padded_ceilings_included(self):
        # ceil(10/3) = 4 is a useful non-divisor tile.
        assert 4 in tile_candidates(10)

    def test_without_padding_only_divisors(self):
        assert set(tile_candidates(10, include_padded=False)) \
            == set(divisors(10))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tile_candidates(0)

    def test_matches_naive_enumeration_exactly(self):
        """The O(sqrt n) quotient-block walk equals the O(n) scan.

        This is the hot-path replacement's correctness proof: for every n
        the candidate tuple must be identical to enumerating ceil(n / k)
        for all k, or the mapper's tiling ladder (and thus its candidate
        pool) would silently change.
        """
        for n in range(1, 1025):
            naive = set(divisors(n))
            naive.update(ceil_div(n, parts) for parts in range(1, n + 1))
            assert tile_candidates(n) == tuple(sorted(naive)), n

    def test_cached_instances_are_reused(self):
        assert tile_candidates(360) is tile_candidates(360)


class TestBalancedSplit:
    def test_square(self):
        assert balanced_split(100, 2) == (10, 10)

    def test_covers(self):
        for n in (7, 12, 100, 997):
            for parts in (1, 2, 3):
                assert math.prod(balanced_split(n, parts)) >= n

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            balanced_split(0, 1)
