"""Tests for the persistent warm worker pool (:mod:`repro.engine.pool`).

Covers the delta-sync protocol (epoch bumps, warm-entry shipping), the
slim wire codec (interned batch payloads, typed-column result packing),
interrupt safety (a cancelled dispatch leaves no orphaned workers and
the pool stays reusable), and bit-identity of pooled execution against
serial execution.
"""

import multiprocessing
import time
from dataclasses import replace

import pytest

from repro.engine import (
    EvaluationCache,
    WorkerPool,
    build_plan,
    config_sweep_jobs,
    grid_jobs,
    parameter_grid,
    run_jobs,
)
from repro.engine.codec import network_evaluation_to_dict
from repro.engine.pool import (
    _decode_layers,
    _encode_batch,
    _pack_added,
    _unpack_added,
)
from repro.systems import AlbireoConfig
from repro.workloads import tiny_cnn


@pytest.fixture(scope="module")
def small_network():
    return tiny_cnn()


def _grid_a(network):
    return grid_jobs(network, AlbireoConfig(),
                     parameter_grid(clusters=(4, 8)))


def _grid_b(network):
    return grid_jobs(network, AlbireoConfig(),
                     parameter_grid(clusters=(4, 8, 16),
                                    output_reuse=(3, 9)))


def _dicts(evaluations):
    return [network_evaluation_to_dict(e) for e in evaluations]


def _no_orphans():
    """True when no worker processes linger (after a short grace)."""
    for _ in range(50):
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


class TestPoolReuse:
    def test_two_dispatches_one_spawn_bit_identical(self, small_network):
        """A reused pool spawns once, delta-syncs later dispatches, and
        stays bit-identical to serial execution."""
        jobs_a, jobs_b = _grid_a(small_network), _grid_b(small_network)
        serial_a = _dicts(run_jobs(jobs_a, workers=1))
        serial_b = _dicts(run_jobs(jobs_b, workers=1))
        cache = EvaluationCache()
        with WorkerPool(workers=2) as pool:
            warm_a = _dicts(run_jobs(jobs_a, workers=2, cache=cache,
                                     pool=pool))
            assert pool.stats.spawns == 1
            warm_b = _dicts(run_jobs(jobs_b, workers=2, cache=cache,
                                     pool=pool))
        assert warm_a == serial_a
        assert warm_b == serial_b
        assert pool.stats.spawns == 1
        assert pool.stats.dispatches == 2
        assert pool.stats.delta_syncs == 2
        assert pool.stats.epoch_resets == 0
        # The second dispatch shipped the first run's warm entries as a
        # delta instead of a fresh snapshot.
        assert pool.stats.delta_entries > 0
        assert _no_orphans()

    def test_cache_epoch_bump_reseeds_workers(self, small_network):
        """``cache.clear()`` bumps the epoch; the pool notices the stale
        warm copies, reseeds them in-band — without respawning the
        worker processes — and still computes correct results."""
        jobs = _grid_a(small_network)
        serial = _dicts(run_jobs(jobs, workers=1))
        cache = EvaluationCache()
        with WorkerPool(workers=2) as pool:
            first = _dicts(run_jobs(jobs, workers=2, cache=cache,
                                    pool=pool))
            epoch_before = cache.epoch
            cache.clear()
            assert cache.epoch == epoch_before + 1
            second = _dicts(run_jobs(jobs, workers=2, cache=cache,
                                     pool=pool))
        assert first == serial
        assert second == serial
        assert pool.stats.epoch_resets == 1
        assert pool.stats.spawns == 1

    def test_switching_caches_reseeds_workers(self, small_network):
        """A different cache object also invalidates the warm copies;
        the reseed likewise rides in-band on the next dispatch."""
        jobs = _grid_a(small_network)
        with WorkerPool(workers=2) as pool:
            run_jobs(jobs, workers=2, cache=EvaluationCache(), pool=pool)
            run_jobs(jobs, workers=2, cache=EvaluationCache(), pool=pool)
        assert pool.stats.epoch_resets == 1
        assert pool.stats.spawns == 1

    def test_pool_worker_count_overrides_run_jobs_default(self,
                                                          small_network):
        """Passing a pool without ``workers=`` still runs parallel."""
        jobs = _grid_a(small_network)
        serial = _dicts(run_jobs(jobs, workers=1))
        with WorkerPool(workers=2) as pool:
            pooled = _dicts(run_jobs(jobs, cache=EvaluationCache(),
                                     pool=pool))
        assert pool.stats.spawns == 1
        assert pooled == serial


class TestInterruptSafety:
    def test_interrupt_mid_dispatch_closes_cleanly(self, small_network):
        """A KeyboardInterrupt while results are in flight terminates the
        workers (no orphans) and the pool object remains reusable."""
        jobs = _grid_b(small_network)
        cache = EvaluationCache()
        plan = build_plan(jobs, cache, workers=2)
        assert plan is not None and plan.batches
        pool = WorkerPool(workers=2)
        try:
            stream = pool.run_batches(plan.batches, cache)
            next(stream)  # at least one batch answered; workers live
            assert pool.active
            with pytest.raises(KeyboardInterrupt):
                stream.throw(KeyboardInterrupt)
            assert not pool.active
            assert _no_orphans()
            # The pool respawns lazily and completes a full run.
            fresh_cache = EvaluationCache()
            results = _dicts(run_jobs(jobs, workers=2, cache=fresh_cache,
                                      pool=pool))
            assert results == _dicts(run_jobs(jobs, workers=1))
            assert pool.stats.spawns == 2
        finally:
            pool.close()
        assert _no_orphans()

    def test_abandoning_iterator_closes_pool(self, small_network):
        """Dropping the dispatch iterator (GeneratorExit) must not leak
        workers either."""
        jobs = _grid_b(small_network)
        cache = EvaluationCache()
        plan = build_plan(jobs, cache, workers=2)
        pool = WorkerPool(workers=2)
        try:
            stream = pool.run_batches(plan.batches, cache)
            next(stream)
            stream.close()
            assert not pool.active
            assert _no_orphans()
        finally:
            pool.close()

    def test_close_is_idempotent_and_context_manager_closes(self):
        pool = WorkerPool(workers=2)
        pool.close()
        pool.close()
        with WorkerPool(workers=2) as ctx_pool:
            assert not ctx_pool.active  # lazy: nothing dispatched yet
        assert not ctx_pool.active

    def test_worker_count_validated(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)


class TestWireCodec:
    def test_batch_encoding_round_trips_layers(self, small_network):
        """Interned wire payloads decode to the exact same layers and
        task structure the planner produced."""
        cache = EvaluationCache()
        plan = build_plan(_grid_b(small_network), cache, workers=2)
        for batch in plan.batches:
            contexts, layer_specs, segments = _encode_batch(batch)
            layers = _decode_layers(layer_specs)
            assert len(contexts) == len(batch) == len(segments)
            for chunk, (ctx_index, codes) in zip(batch, segments):
                system_name, config, system_key = contexts[ctx_index]
                assert system_name == chunk.system
                assert config == chunk.config
                assert system_key == chunk.system_key
                assert len(codes) == len(chunk.tasks)
                for task, (kind_code, layer_id, flags) in zip(chunk.tasks,
                                                              codes):
                    assert layers[layer_id] == task.layer
                    assert layers[layer_id].name == task.layer.name
                    assert kind_code == {"mapper": 0, "layer": 1}[task.kind]
                    assert bool(flags & 1) == task.use_mapper
                    assert bool(flags & 2) == task.input_from_dram
                    assert bool(flags & 4) == task.output_to_dram

    def test_result_packing_round_trips_exactly(self):
        """Typed-column packing reproduces layer entries key-for-key,
        value-for-value, and in canonical field order."""
        entry = {
            "layer": {"name": "conv1", "m": 8},
            "energy": [["DRAM", "W", 1.5]],
            "cycles": 123456789,
            "real_macs": 10**15,
            "padded_macs": 10**15 + 7,
            "peak_parallelism": 4096,
            "clock_ghz": 5.0,
            "occupancy_bits": {"GlobalBuffer": 2048.0},
            "compute_cycles": 120000000,
            "bandwidth_bound_level": None,
        }
        odd = {"weird": True}  # schema mismatch -> raw passthrough
        added = {
            "layers": {"k1": entry, "k2": odd},
            "mappings": {"m1": {"mapping": {}, "cost": 1.0}},
        }
        unpacked = _unpack_added(_pack_added(added))
        assert unpacked["layers"]["k1"] == entry
        assert list(unpacked["layers"]["k1"]) == list(entry)
        assert unpacked["layers"]["k2"] is odd
        assert unpacked["mappings"] == added["mappings"]

    def test_empty_namespaces_not_shipped(self):
        assert _pack_added({"layers": {}, "results": {}}) == {}


class TestStudyIntegration:
    def test_study_run_accepts_pool(self, small_network):
        from repro.api import Study

        def build():
            return (Study()
                    .systems("albireo")
                    .networks("tiny")
                    .grid(clusters=[4, 8]))

        baseline = build().run(workers=1)
        cache = EvaluationCache()
        with WorkerPool(workers=2) as pool:
            first = build().run(workers=2, cache=cache, pool=pool)
            second = build().run(workers=2, cache=cache, pool=pool)
        assert pool.stats.spawns == 1
        assert pool.stats.dispatches >= 1
        assert [r.tags for r in first] == [r.tags for r in baseline]
        for warm in (first, second):
            for got, want in zip(warm, baseline):
                assert got.metrics == want.metrics


class TestSupervision:
    """Worker death mid-dispatch is survived: detected, respawned,
    re-dispatched — one SIGKILL costs one batch retry, not a hang."""

    def test_sigkilled_worker_respawns_and_completes_bit_identical(
            self, small_network):
        """A worker SIGKILLing itself mid-batch (the OOM-killer stand-in,
        delivered deterministically by the fault plan on attempt 0) is
        detected by the supervised result wait; the pool respawns once
        and the sweep still matches serial execution bit for bit."""
        jobs = _grid_b(small_network)
        serial = _dicts(run_jobs(jobs, workers=1))
        cache = EvaluationCache()
        kill = [{"match": "albireo:conv2:layer", "action": "kill",
                 "attempt": 0}]
        with WorkerPool(workers=2) as pool:
            survived = _dicts(run_jobs(jobs, workers=2, cache=cache,
                                       pool=pool, inject=kill))
            assert survived == serial
            assert pool.stats.respawns == 1
            # The replacement workers were spawned fresh...
            assert pool.stats.spawns == 2
            # ...and the dead pids' delta markers were pruned, so the
            # sync bookkeeping tracks only live workers.
            alive = pool._worker_pids()
            assert set(pool._sync.marks) <= alive
            # The pool stays reusable after the recovery.
            again = _dicts(run_jobs(_grid_a(small_network), workers=2,
                                    cache=cache, pool=pool))
            assert again == _dicts(run_jobs(_grid_a(small_network),
                                            workers=1))
            assert pool.stats.respawns == 1
        assert cache.resilience.respawns == 1
        assert _no_orphans()

    def test_crash_storm_gives_up_with_worker_crash_error(
            self, small_network):
        """A batch that kills its worker on *every* attempt exhausts
        ``max_respawns`` and surfaces a clear error instead of looping
        (or hanging) forever."""
        from repro.exceptions import WorkerCrashError

        jobs = _grid_a(small_network)
        kill_always = [{"match": "albireo:conv1:layer", "action": "kill",
                        "attempt": -1}]
        pool = WorkerPool(workers=2)
        try:
            with pytest.raises(WorkerCrashError, match="died"):
                run_jobs(jobs, workers=2, cache=EvaluationCache(),
                         pool=pool, inject=kill_always)
            assert pool.stats.respawns == pool.max_respawns + 1
            # The crashed dispatch closed the pool; a clean run after
            # the storm respawns and succeeds.
            clean = _dicts(run_jobs(jobs, workers=2,
                                    cache=EvaluationCache(), pool=pool))
            assert clean == _dicts(run_jobs(jobs, workers=1))
        finally:
            pool.close()
        assert _no_orphans()

    def test_abrupt_exit_is_survived_too(self, small_network):
        """``os._exit(1)`` (atexit handlers skipped) looks identical to
        a SIGKILL from the parent's side and recovers the same way."""
        jobs = _grid_a(small_network)
        serial = _dicts(run_jobs(jobs, workers=1))
        exit_once = [{"match": "albireo:conv2:layer", "action": "exit",
                      "attempt": 0}]
        with WorkerPool(workers=2) as pool:
            survived = _dicts(run_jobs(jobs, workers=2,
                                       cache=EvaluationCache(),
                                       pool=pool, inject=exit_once))
        assert survived == serial
        assert pool.stats.respawns == 1
        assert _no_orphans()
