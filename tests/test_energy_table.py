"""Tests for EnergyEntry and EnergyTable."""

import pytest

from repro.energy import EnergyEntry, EnergyTable
from repro.exceptions import EstimationError


def _entry(name="x", read=1.0, write=2.0, area=10.0):
    return EnergyEntry(component=name,
                       energy_per_action_pj={"read": read, "write": write},
                       area_um2=area)


class TestEnergyEntry:
    def test_energy_lookup(self):
        entry = _entry()
        assert entry.energy("read") == 1.0
        assert entry.energy("write") == 2.0

    def test_unknown_action_raises_with_available(self):
        with pytest.raises(EstimationError) as excinfo:
            _entry().energy("teleport")
        assert "read" in str(excinfo.value)

    def test_rejects_negative_energy(self):
        with pytest.raises(EstimationError):
            EnergyEntry(component="x", energy_per_action_pj={"read": -1.0})

    def test_rejects_negative_area(self):
        with pytest.raises(EstimationError):
            EnergyEntry(component="x", energy_per_action_pj={},
                        area_um2=-1.0)

    def test_actions_iterable(self):
        assert set(_entry().actions) == {"read", "write"}


class TestEnergyTable:
    def test_add_and_lookup(self):
        table = EnergyTable([_entry("a"), _entry("b", read=3.0)])
        assert table.energy("b", "read") == 3.0
        assert table.area("a") == 10.0
        assert len(table) == 2
        assert "a" in table and "c" not in table

    def test_duplicate_add_raises(self):
        table = EnergyTable([_entry("a")])
        with pytest.raises(EstimationError):
            table.add(_entry("a"))

    def test_replace_overwrites(self):
        table = EnergyTable([_entry("a")])
        table.replace(_entry("a", read=9.0))
        assert table.energy("a", "read") == 9.0

    def test_missing_component_raises_with_known(self):
        table = EnergyTable([_entry("a")])
        with pytest.raises(EstimationError) as excinfo:
            table.energy("zz", "read")
        assert "'a'" in str(excinfo.value)

    def test_total_area(self):
        table = EnergyTable([_entry("a", area=10.0), _entry("b", area=5.0)])
        assert table.total_area_um2({"a": 2, "b": 4}) == 40.0

    def test_iteration(self):
        table = EnergyTable([_entry("a"), _entry("b")])
        assert {entry.component for entry in table} == {"a", "b"}

    def test_describe_renders_all_actions(self):
        text = EnergyTable([_entry("a")]).describe()
        assert "read" in text and "write" in text
