"""Tests for the mapper search and its constraints."""

import pytest

from repro.exceptions import MappingError
from repro.mapping import Mapper, MappingConstraints, analyze
from repro.mapping.constraints import FanoutConstraint, StorageConstraint
from repro.mapping.mapper import _largest_fitting_factor
from repro.workloads import ConvLayer
from repro.workloads.dims import Dim


def _traffic_cost(architecture, layer):
    """Simple cost: total DRAM traffic (reads+writes)."""

    def cost(mapping):
        counts = analyze(architecture, layer, mapping)
        dram = counts.storage["DRAM"]
        return dram.total_reads + dram.total_writes

    return cost


def _largest_fitting_factor_reference(size: int, cap: int) -> int:
    """The original O(cap) linear scan, kept as the semantic reference."""
    if cap <= 1:
        return 1
    if size <= cap:
        return size
    best_factor = 1
    best_key = (size, size)
    for factor in range(1, cap + 1):
        steps = -(-size // factor)
        key = (steps, steps * factor)
        if key < best_key:
            best_key = key
            best_factor = factor
    return best_factor


class TestLargestFittingFactor:
    def test_exact_fit(self):
        assert _largest_fitting_factor(8, 8) == 8

    def test_smaller_than_cap(self):
        assert _largest_fitting_factor(3, 8) == 3

    def test_prefers_full_cap_for_fewer_steps(self):
        # 512 over cap 5: 5 steps of 103 beat 4's 128 steps.
        assert _largest_fitting_factor(512, 5) == 5

    def test_prefers_divisor_on_step_tie(self):
        # 64 over cap 9: both 8 and 9 give 8 steps; 8 has no padding.
        assert _largest_fitting_factor(64, 9) == 8

    def test_cap_one(self):
        assert _largest_fitting_factor(100, 1) == 1

    def test_padding_minimized_on_tie(self):
        # 57 over cap 16: 15 and 16 both give 4 steps; 15 pads less (60<64).
        assert _largest_fitting_factor(57, 16) == 15

    def test_matches_linear_scan_exhaustively(self):
        """Divisor/ceil-block walk == the old O(cap) scan, every pair.

        Exhaustive over a dense small grid, where every quotient-block
        boundary case occurs, plus a seeded random sample across the full
        (size, cap) <= 512 range the mapper actually exercises.
        """
        import random

        for size in range(1, 130):
            for cap in range(1, 130):
                assert _largest_fitting_factor(size, cap) \
                    == _largest_fitting_factor_reference(size, cap), \
                    (size, cap)
        rng = random.Random(42)
        for _ in range(2000):
            size = rng.randint(1, 512)
            cap = rng.randint(1, 512)
            assert _largest_fitting_factor(size, cap) \
                == _largest_fitting_factor_reference(size, cap), (size, cap)


class TestSearch:
    def test_finds_valid_mapping(self, two_level_arch, medium_conv):
        mapper = Mapper(two_level_arch,
                        _traffic_cost(two_level_arch, medium_conv))
        result = mapper.search(medium_conv, max_evaluations=300, seed=1)
        result.mapping.validate(two_level_arch, medium_conv)
        assert result.valid > 0
        assert result.cost < float("inf")
        assert 0 < result.validity_rate <= 1.0

    def test_deterministic_with_seed(self, two_level_arch, medium_conv):
        mapper = Mapper(two_level_arch,
                        _traffic_cost(two_level_arch, medium_conv))
        a = mapper.search(medium_conv, max_evaluations=200, seed=7)
        b = mapper.search(medium_conv, max_evaluations=200, seed=7)
        assert a.cost == b.cost

    def test_uses_spatial_parallelism(self, two_level_arch, medium_conv):
        mapper = Mapper(two_level_arch,
                        _traffic_cost(two_level_arch, medium_conv))
        result = mapper.search(medium_conv, max_evaluations=300, seed=1)
        assert result.mapping.total_spatial_product > 1

    def test_seed_candidate_always_considered(self, two_level_arch,
                                              medium_conv):
        from repro.mapping import FanoutMapping, LevelMapping, Mapping
        from repro.mapping.mapping import TemporalLoop

        seed_mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (
                        TemporalLoop(Dim.M, 4), TemporalLoop(Dim.C, 8),
                        TemporalLoop(Dim.P, 8), TemporalLoop(Dim.Q, 8),
                        TemporalLoop(Dim.R, 3), TemporalLoop(Dim.S, 3)))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        cost_fn = _traffic_cost(two_level_arch, medium_conv)
        mapper = Mapper(two_level_arch, cost_fn)
        result = mapper.search(medium_conv, max_evaluations=50, seed=1,
                               extra_candidates=(seed_mapping,))
        assert result.cost <= cost_fn(seed_mapping)

    def test_mapper_beats_naive_mapping(self, two_level_arch, medium_conv):
        """The searched mapping must beat an everything-at-DRAM schedule."""
        from repro.mapping import FanoutMapping, LevelMapping, Mapping
        from repro.mapping.mapping import TemporalLoop

        naive = Mapping(
            levels=(LevelMapping("DRAM", (
                        TemporalLoop(Dim.M, 16), TemporalLoop(Dim.C, 8),
                        TemporalLoop(Dim.P, 8), TemporalLoop(Dim.Q, 8),
                        TemporalLoop(Dim.R, 3), TemporalLoop(Dim.S, 3))),
                    LevelMapping("GB", ())),
            spatials=(FanoutMapping("pe", {}),),
        )
        cost_fn = _traffic_cost(two_level_arch, medium_conv)
        mapper = Mapper(two_level_arch, cost_fn)
        result = mapper.search(medium_conv, max_evaluations=400, seed=3)
        assert result.cost < cost_fn(naive)

    def test_no_valid_mapping_raises(self, two_level_arch, medium_conv):
        def always_reject(mapping):
            raise MappingError("rejected")

        mapper = Mapper(two_level_arch, always_reject)
        with pytest.raises(MappingError):
            mapper.search(medium_conv, max_evaluations=20)


class TestConstraints:
    def test_max_instances_respected(self, two_level_arch, medium_conv):
        constraints = MappingConstraints(
            fanouts={"pe": FanoutConstraint(max_instances=2)})
        mapper = Mapper(two_level_arch,
                        _traffic_cost(two_level_arch, medium_conv),
                        constraints=constraints)
        result = mapper.search(medium_conv, max_evaluations=200, seed=1)
        assert result.mapping.spatial_for("pe").factor_product <= 2

    def test_forbidden_dim_respected(self, two_level_arch, medium_conv):
        constraints = MappingConstraints(
            fanouts={"pe": FanoutConstraint(forbidden_dims={Dim.M})})
        mapper = Mapper(two_level_arch,
                        _traffic_cost(two_level_arch, medium_conv),
                        constraints=constraints)
        result = mapper.search(medium_conv, max_evaluations=200, seed=1)
        assert Dim.M not in result.mapping.spatial_for("pe").factors

    def test_max_factor_respected(self, two_level_arch, medium_conv):
        constraints = MappingConstraints(
            fanouts={"pe": FanoutConstraint(max_factor={Dim.M: 2})})
        mapper = Mapper(two_level_arch,
                        _traffic_cost(two_level_arch, medium_conv),
                        constraints=constraints)
        result = mapper.search(medium_conv, max_evaluations=200, seed=1)
        assert result.mapping.spatial_for("pe").factors.get(Dim.M, 1) <= 2

    def test_constraint_check_rejects_direct_violation(self):
        from repro.mapping import FanoutMapping, LevelMapping, Mapping

        constraints = MappingConstraints(
            fanouts={"pe": FanoutConstraint(max_instances=2)})
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        with pytest.raises(MappingError):
            constraints.check(mapping)

    def test_storage_temporal_product_cap(self):
        from repro.mapping import LevelMapping, Mapping
        from repro.mapping.mapping import TemporalLoop

        constraints = MappingConstraints(
            storages={"ACC": StorageConstraint(max_temporal_product=4)})
        mapping = Mapping(levels=(
            LevelMapping("DRAM", ()),
            LevelMapping("ACC", (TemporalLoop(Dim.C, 8),)),
        ))
        with pytest.raises(MappingError):
            constraints.check(mapping)

    def test_bad_capacity_fraction_rejected(self):
        with pytest.raises(MappingError):
            StorageConstraint(capacity_fraction=0.0)
