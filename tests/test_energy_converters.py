"""Tests for ADC/DAC figure-of-merit models."""

import pytest

from repro.energy import estimate
from repro.energy.converters import adc_energy_pj, dac_energy_pj
from repro.exceptions import CalibrationError


class TestAdc:
    def test_walden_scaling_per_bit(self):
        e8 = adc_energy_pj(10.0, 8)
        e9 = adc_energy_pj(10.0, 9)
        assert e9 == pytest.approx(2 * e8)

    def test_fom_linear(self):
        assert adc_energy_pj(20.0, 8) == pytest.approx(
            2 * adc_energy_pj(10.0, 8))

    def test_no_speed_penalty_below_corner(self):
        slow = adc_energy_pj(10.0, 8, sample_rate_gsps=0.5)
        corner = adc_energy_pj(10.0, 8, sample_rate_gsps=1.0)
        assert slow == pytest.approx(corner)

    def test_speed_penalty_above_corner(self):
        e1 = adc_energy_pj(10.0, 8, sample_rate_gsps=1.0)
        e4 = adc_energy_pj(10.0, 8, sample_rate_gsps=4.0)
        assert e4 == pytest.approx(2 * e1)  # (4/1)^0.5 = 2

    def test_absolute_value_8bit(self):
        # 10 fJ/step * 256 steps = 2.56 pJ at the corner.
        assert adc_energy_pj(10.0, 8) == pytest.approx(2.56)

    def test_area_exponential_in_bits(self):
        a8 = estimate("adc", "a", {"fom_fj_per_step": 10.0, "bits": 8})
        a10 = estimate("adc", "b", {"fom_fj_per_step": 10.0, "bits": 10})
        assert a10.area_um2 == pytest.approx(4 * a8.area_um2)

    def test_rejects_bad_resolution(self):
        with pytest.raises(CalibrationError):
            adc_energy_pj(10.0, 0)
        with pytest.raises(CalibrationError):
            adc_energy_pj(10.0, 20)

    def test_rejects_bad_fom(self):
        with pytest.raises(CalibrationError):
            adc_energy_pj(0.0, 8)

    def test_rejects_bad_rate(self):
        with pytest.raises(CalibrationError):
            adc_energy_pj(10.0, 8, sample_rate_gsps=0.0)


class TestDac:
    def test_reference_at_8bit(self):
        assert dac_energy_pj(0.8, 8) == pytest.approx(0.8)

    def test_bit_scaling(self):
        # One extra bit: 2x capacitor array, 9/8 driver term.
        assert dac_energy_pj(0.8, 9) == pytest.approx(0.8 * 2 * 9 / 8)

    def test_fewer_bits_cheaper(self):
        assert dac_energy_pj(0.8, 4) < dac_energy_pj(0.8, 8)

    def test_rejects_bad_reference(self):
        with pytest.raises(CalibrationError):
            dac_energy_pj(0.0, 8)

    def test_rejects_bad_resolution(self):
        with pytest.raises(CalibrationError):
            dac_energy_pj(0.8, 0)

    def test_dac_cheaper_than_adc_at_matched_point(self):
        # The survey trend the model encodes.
        adc = adc_energy_pj(7.0, 8, sample_rate_gsps=5.0)
        dac = dac_energy_pj(0.8, 8)
        assert dac < adc
