"""Shared fixtures: toy architectures and layers used across test modules."""

from __future__ import annotations

import pytest

from repro.arch import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    Conversion,
    ConverterStage,
    Domain,
    SpatialFanout,
    StorageLevel,
)
from repro.energy import ComponentSpec, build_table
from repro.workloads import ConvLayer, DataSpace
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


@pytest.fixture
def two_level_arch() -> Architecture:
    """DRAM -> buffer -> 4-wide PE array (input multicast) -> MAC."""
    return Architecture(
        name="two-level",
        nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=1e9, dataspaces={W, I, O}),
            SpatialFanout(name="pe", size=4, allowed_dims={Dim.M},
                          multicast={I}),
            ComputeLevel(name="mac", component="mac", domain=Domain.DE),
        ),
    )


@pytest.fixture
def flat_arch() -> Architecture:
    """DRAM -> buffer -> MAC, no spatial parallelism."""
    return Architecture(
        name="flat",
        nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=1e9, dataspaces={W, I, O}),
            ComputeLevel(name="mac", component="mac", domain=Domain.DE),
        ),
    )


@pytest.fixture
def converter_arch() -> Architecture:
    """A single analog stage with converters on all three dataspaces."""
    return Architecture(
        name="converter-arch",
        nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces={W, I, O}),
            StorageLevel(name="GB", component="sram", domain=Domain.DE,
                         capacity_bits=1e9, dataspaces={W, I, O}),
            ConverterStage(name="WDAC", component="dac_w",
                           conversion=Conversion(Domain.DE, Domain.AE),
                           dataspaces={W}),
            ConverterStage(name="IDAC", component="dac_i",
                           conversion=Conversion(Domain.DE, Domain.AE),
                           dataspaces={I}),
            SpatialFanout(name="array", size=8, allowed_dims={Dim.M},
                          multicast={I}),
            ConverterStage(name="ADC", component="adc_o",
                           conversion=Conversion(Domain.AE, Domain.DE),
                           dataspaces={O}),
            ComputeLevel(name="mac", component="mac", domain=Domain.AE),
        ),
    )


@pytest.fixture
def toy_energy_table():
    return build_table([
        ComponentSpec("dram", "dram", {}),
        ComponentSpec("sram", "sram", {"capacity_bits": 1e6}),
        ComponentSpec("mac", "multiplier", {}),
        ComponentSpec("dac_w", "dac", {"energy_pj_at_8bit": 0.5}),
        ComponentSpec("dac_i", "dac", {"energy_pj_at_8bit": 0.5}),
        ComponentSpec("adc_o", "adc", {"fom_fj_per_step": 10.0}),
    ])


@pytest.fixture
def small_conv() -> ConvLayer:
    return ConvLayer(name="small", m=4, c=2, p=2, q=2)


@pytest.fixture
def medium_conv() -> ConvLayer:
    return ConvLayer(name="medium", m=16, c=8, p=8, q=8, r=3, s=3)
