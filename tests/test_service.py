"""Tests for repro.service — daemon, queue, protocol, client, stdio."""

import io
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.api import Study
from repro.api.results import ResultSet
from repro.exceptions import ReproError, ServiceError, ServiceUnavailable
from repro.service import (
    PROTOCOL_VERSION,
    ReproService,
    ServiceClient,
    SubmitRequest,
    make_server,
    serve_stdio,
)
from repro.service import protocol
from repro.service.queue import JobCancelled, JobQueue

SPEC = {
    "name": "svc-smoke",
    "systems": ["crossbar"],
    "networks": ["tiny"],
    "scenarios": ["conservative"],
    "grid": {"global_buffer_kib": [256, 512]},
}

#: Compiles cleanly (so it passes submit-time validation) but every
#: point explodes at run time with CapacityError.
BOOM_SPEC = {
    "name": "svc-boom",
    "systems": ["crossbar"],
    "networks": ["tiny"],
    "scenarios": ["conservative"],
    "grid": {"global_buffer_kib": [1]},
}


@pytest.fixture
def service(tmp_path):
    service = ReproService(cache=str(tmp_path / "cache"), workers=1)
    yield service
    service.close()


@pytest.fixture
def server(service):
    httpd = make_server(service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=30.0)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_bare_spec_is_a_submit_request(self):
        request = SubmitRequest.from_dict(dict(SPEC))
        assert request.spec["name"] == "svc-smoke"
        assert request.workers is None
        assert request.failure_policy is None
        assert request.trace is False

    def test_wrapped_request_round_trips(self):
        body = {"spec": dict(SPEC), "workers": 4, "trace": True,
                "failure_policy": {"on_error": "retry",
                                   "max_retries": 3}}
        request = SubmitRequest.from_dict(body)
        assert request.workers == 4 and request.trace is True
        assert request.failure_policy.on_error == "retry"
        assert request.failure_policy.max_retries == 3
        rebuilt = SubmitRequest.from_dict(request.to_dict())
        assert rebuilt == request

    def test_unknown_envelope_keys_rejected(self):
        with pytest.raises(ServiceError) as error:
            SubmitRequest.from_dict({"spec": {}, "worker": 4})
        assert "worker" in str(error.value)
        assert "options" in str(error.value)

    @pytest.mark.parametrize("body", [
        {"spec": {}, "workers": 0},
        {"spec": {}, "workers": True},
        {"spec": {}, "workers": "four"},
        {"spec": {}, "trace": "yes"},
        {"spec": []},
        {"spec": {}, "failure_policy": {"on_error": "explode"}},
        {"spec": {}, "failure_policy": {"retries": 3}},
        "not an object",
    ])
    def test_malformed_requests_rejected(self, body):
        with pytest.raises(ServiceError):
            SubmitRequest.from_dict(body)

    def test_event_codec_round_trip(self):
        body = protocol.record_event({"system": "crossbar",
                                      "energy_total_mJ": 0.1875}, 3, 12)
        line = protocol.encode_event(body)
        assert line.endswith("\n") and "\n" not in line[:-1]
        assert protocol.decode_event(line) == body

    @pytest.mark.parametrize("line", ["{truncated", "42", '{"no": "kind"}'])
    def test_decode_event_rejects_garbage(self, line):
        with pytest.raises(ServiceError):
            protocol.decode_event(line)

    def test_error_body_is_type_plus_first_line(self):
        error = ValueError("first line\ntraceback noise")
        assert protocol.error_body(error) == {
            "error": "ValueError", "message": "first line"}

    def test_check_protocol_rejects_newer_server(self):
        with pytest.raises(ServiceError):
            protocol.check_protocol(
                {"protocol": PROTOCOL_VERSION + 1}, "GET /v1/health")
        protocol.check_protocol({"protocol": PROTOCOL_VERSION}, "ok")
        protocol.check_protocol({}, "unstamped passes")


# ---------------------------------------------------------------------------
# Queue (driven directly with a fake execute hook)
# ---------------------------------------------------------------------------


def _request():
    return SubmitRequest(spec=dict(SPEC))


class TestJobQueue:
    def test_jobs_execute_in_submission_order(self):
        order = []
        queue = JobQueue(lambda job: order.append(job.id), limit=8)
        jobs = [queue.submit(_request()) for _ in range(5)]
        assert queue.drain(timeout=10)
        assert order == [job.id for job in jobs]
        assert queue.finished == order
        assert all(job.status == protocol.DONE for job in jobs)
        queue.close()

    def test_full_queue_raises_service_unavailable(self):
        release = threading.Event()
        started = threading.Event()
        def execute(job):
            started.set()
            release.wait(10)
        queue = JobQueue(execute, limit=2)
        queue.submit(_request())
        assert started.wait(10)  # dequeued into running, off the FIFO
        queue.submit(_request())
        queue.submit(_request())
        with pytest.raises(ServiceUnavailable) as error:
            queue.submit(_request())
        assert "full" in str(error.value)
        release.set()
        queue.close(drain=True, timeout=10)

    def test_draining_queue_refuses_submits(self):
        queue = JobQueue(lambda job: None, limit=4)
        queue.drain(timeout=10)
        with pytest.raises(ServiceUnavailable) as error:
            queue.submit(_request())
        assert "draining" in str(error.value)
        queue.close()

    def test_cancel_queued_job_skips_execution(self):
        release = threading.Event()
        ran = []
        def execute(job):
            ran.append(job.id)
            release.wait(10)
        queue = JobQueue(execute, limit=4)
        queue.submit(_request())  # occupies the executor
        victim = queue.submit(_request())
        assert victim.cancel() is True
        release.set()
        queue.close(drain=True, timeout=10)
        assert victim.status == protocol.CANCELLED
        assert victim.id not in ran
        events = [body["event"] for body in victim.stream()]
        assert events == ["queued", "done"]

    def test_cancel_running_job_unwinds_cooperatively(self):
        started = threading.Event()
        def execute(job):
            started.set()
            for _ in range(200):
                if job.cancelled:
                    raise JobCancelled()
                time.sleep(0.01)
            raise AssertionError("never saw the cancel flag")
        queue = JobQueue(execute, limit=4)
        job = queue.submit(_request())
        assert started.wait(10)
        assert job.cancel() is True
        queue.close(drain=True, timeout=10)
        assert job.status == protocol.CANCELLED
        assert job.cancel() is False  # already terminal

    def test_failed_job_keeps_daemon_alive(self):
        def execute(job):
            if job.seq == 1:
                raise ValueError("kaboom\nwith details")
        queue = JobQueue(execute, limit=4)
        bad = queue.submit(_request())
        good = queue.submit(_request())
        assert queue.drain(timeout=10)
        assert bad.status == protocol.FAILED
        assert bad.error == ("ValueError", "kaboom")
        assert good.status == protocol.DONE
        events = list(bad.stream())
        assert events[-2]["event"] == "error"
        assert events[-2]["message"] == "kaboom"
        assert events[-1] == protocol.done_event(
            bad.id, protocol.FAILED, 0, 0)
        queue.close()

    def test_stream_replays_and_follows_live(self):
        gate = threading.Event()
        def execute(job):
            job.emit(protocol.event("started", job=job.id))
            gate.wait(10)
            job.emit(protocol.record_event({"x": 1}, 1, 1))
        queue = JobQueue(execute, limit=4)
        job = queue.submit(_request())
        collected = []
        def reader():
            collected.extend(body["event"] for body in job.stream())
        thread = threading.Thread(target=reader)
        thread.start()
        gate.set()
        thread.join(10)
        assert collected == ["queued", "started", "record", "done"]
        # Late subscriber replays the full buffer identically.
        assert [body["event"] for body in job.stream()] == collected
        # since= resumes mid-buffer.
        assert [body["event"] for body in job.stream(since=2)] \
            == ["record", "done"]
        queue.close()

    def test_stream_heartbeats_while_waiting(self):
        gate = threading.Event()
        queue = JobQueue(lambda job: gate.wait(10), limit=4)
        job = queue.submit(_request())
        stream = job.stream(heartbeat=0.05)
        assert next(stream)["event"] == "queued"
        beat = next(stream)
        assert beat["event"] == "heartbeat"
        assert beat["status"] in (protocol.QUEUED, protocol.RUNNING)
        gate.set()
        assert [body["event"] for body in stream][-1] == "done"
        queue.close()

    def test_close_without_drain_cancels_pending(self):
        release = threading.Event()
        queue = JobQueue(lambda job: release.wait(10), limit=4)
        queue.submit(_request())
        pending = queue.submit(_request())
        release.set()
        queue.close(drain=False, timeout=10)
        assert pending.status == protocol.CANCELLED


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------


class TestHTTPService:
    def test_health_is_well_formed(self, client, service):
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["workers"] == 1
        assert health["cache"] == service.cache.directory
        assert set(health["jobs"]) == set(protocol.TERMINAL_STATUSES) \
            | {protocol.QUEUED, protocol.RUNNING}

    def test_streamed_records_bit_identical_to_local_run(self, client):
        local = Study.from_dict(SPEC).run()
        handle = client.submit(dict(SPEC))
        streamed = handle.result()
        assert streamed == local
        assert [record.tags for record in streamed] \
            == [record.tags for record in local]
        assert [record.metrics for record in streamed] \
            == [record.metrics for record in local]

    def test_second_submit_is_full_warm_replay(self, client):
        assert client.submit(dict(SPEC)).result()
        cold = client.stats()["cache"]["results"]
        handle = client.submit(dict(SPEC))
        assert len(list(handle.records())) == len(
            Study.from_dict(SPEC).compile())
        warm = client.stats()["cache"]["results"]
        # Zero phase-1 tasks the second time: not one new miss, every
        # point served from the shared cache.
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] == cold["hits"] + len(
            Study.from_dict(SPEC).compile())

    def test_stats_are_well_formed(self, client):
        client.submit(dict(SPEC)).result()
        stats = client.stats()
        assert stats["protocol"] == PROTOCOL_VERSION
        assert stats["service"]["submitted"] == 1
        assert stats["service"]["records_streamed"] == len(
            Study.from_dict(SPEC).compile())
        assert stats["jobs"][protocol.DONE] == 1
        assert stats["finished"] == ["job-1"]
        assert "results" in stats["cache"]
        assert "planned" in stats["planner"]
        assert stats["pool"] is None  # workers=1 daemon

    def test_concurrent_submits_execute_in_order(self, client, service):
        handles = []
        errors = []
        def submit():
            try:
                handles.append(client.submit(dict(SPEC)))
            except Exception as error:  # pragma: no cover
                errors.append(error)
        threads = [threading.Thread(target=submit) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors and len(handles) == 3
        for handle in handles:
            handle.result()
        assert service.queue.finished == ["job-1", "job-2", "job-3"]

    def test_event_stream_shape(self, client):
        handle = client.submit(dict(SPEC))
        events = list(handle.events())
        kinds = [body["event"] for body in events]
        assert kinds[0] == "queued"
        assert events[0]["protocol"] == PROTOCOL_VERSION
        assert kinds[1] == "started"
        total = len(Study.from_dict(SPEC).compile())
        assert events[1]["total"] == total
        assert kinds.count("record") == total
        assert kinds[-1] == "done"
        assert events[-1]["status"] == "done"
        assert events[-1]["records"] == total
        record_events = [body for body in events
                         if body["event"] == "record"]
        assert [body["done"] for body in record_events] \
            == list(range(1, total + 1))
        assert all(body["total"] == total for body in record_events)

    def test_bad_spec_rejected_at_submit_with_precise_error(self, client):
        bad = dict(SPEC, systems=["tpu"])
        with pytest.raises(ServiceError) as error:
            client.submit(bad)
        assert error.value.status_code == 400
        assert error.value.server_error == "SpecError"
        assert "tpu" in str(error.value)
        assert not isinstance(error.value, ServiceUnavailable)

    def test_server_side_failure_is_structured_not_html(self, client):
        handle = client.submit(dict(BOOM_SPEC))
        with pytest.raises(ServiceError) as error:
            list(handle.records())
        assert "CapacityError" in str(error.value)
        status = handle.status()
        assert status["status"] == "failed"
        assert status["error"] == "CapacityError"
        assert "\n" not in status["message"]

    def test_failure_policy_streams_failed_records(self, client):
        from repro.engine import FailurePolicy

        handle = client.submit(dict(BOOM_SPEC),
                               failure_policy=FailurePolicy(
                                   on_error="skip"))
        results = handle.result()
        assert len(results) == 1
        assert len(results.failures) == 1
        assert results.failures[0].get("error") == "CapacityError"
        assert handle.status()["status"] == "done"
        assert handle.status()["failures"] == 1

    def test_unknown_job_and_route_are_json_404(self, client, server):
        with pytest.raises(ServiceError) as error:
            client.handle("job-999").status()
        assert error.value.status_code == 404
        raw = urllib.request.Request(server.url + "/nope")
        with pytest.raises(urllib.error.HTTPError) as http_error:
            urllib.request.urlopen(raw, timeout=10)
        body = json.loads(http_error.value.read())
        assert body["error"] == "NotFound"

    def test_non_json_body_is_structured_400(self, server):
        raw = urllib.request.Request(
            server.url + "/v1/studies", data=b"<html>not json</html>",
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as http_error:
            urllib.request.urlopen(raw, timeout=10)
        assert http_error.value.code == 400
        body = json.loads(http_error.value.read())
        assert body["error"] == "ReproError"
        assert "JSON" in body["message"]

    def test_cancel_finished_job_reports_false(self, client):
        handle = client.submit(dict(SPEC))
        handle.result()
        assert handle.cancel() is False

    def test_trace_endpoint_serves_chrome_json(self, client):
        handle = client.submit(dict(SPEC), trace=True)
        handle.result()
        events = obs.validate_chrome_trace(json.loads(handle.trace()))
        assert events
        assert handle.status()["trace"] is True

    def test_trace_absent_without_request_flag(self, client):
        handle = client.submit(dict(SPEC))
        handle.result()
        with pytest.raises(ServiceError) as error:
            handle.trace()
        assert error.value.status_code == 404

    def test_unreachable_server_raises_service_unavailable(self):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=2.0)
        with pytest.raises(ServiceUnavailable):
            client.health()

    def test_studies_listing(self, client):
        client.submit(dict(SPEC)).result()
        listing = client.studies()
        assert [job["job"] for job in listing] == ["job-1"]
        assert listing[0]["status"] == "done"


# ---------------------------------------------------------------------------
# stdio transport
# ---------------------------------------------------------------------------


class TestStdioService:
    def _run(self, service, lines):
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        assert serve_stdio(service, stdin=stdin, stdout=stdout) == 0
        return [protocol.decode_event(line)
                for line in stdout.getvalue().splitlines()]

    def test_round_trip_matches_local_run(self, tmp_path):
        service = ReproService(cache=str(tmp_path / "cache"))
        events = self._run(service, [
            json.dumps({"op": "health"}),
            json.dumps(dict({"op": "submit"}, **SPEC)),  # bare spec form
            json.dumps({"op": "stats"}),
            json.dumps({"op": "shutdown"}),
        ])
        assert events[0]["event"] == "ready"
        assert events[0]["protocol"] == PROTOCOL_VERSION
        assert events[1]["event"] == "health"
        kinds = [body["event"] for body in events]
        assert kinds[-1] == "bye"
        rows = [body["record"] for body in events
                if body["event"] == "record"]
        assert ResultSet.from_records(rows) == Study.from_dict(SPEC).run()
        stats = next(body for body in events if body["event"] == "stats")
        assert stats["service"]["submitted"] == 1

    def test_eof_is_shutdown(self, tmp_path):
        events = self._run(ReproService(), [])
        assert [body["event"] for body in events] == ["ready", "bye"]

    def test_bad_lines_answer_errors_and_keep_serving(self):
        events = self._run(ReproService(), [
            "{broken json",
            json.dumps({"op": "warp"}),
            json.dumps({"op": "submit", "spec": {"systems": ["tpu"]}}),
            json.dumps({"op": "health"}),
        ])
        kinds = [body["event"] for body in events]
        assert kinds == ["ready", "error", "error", "error", "health",
                         "bye"]
        assert "warp" in events[2]["message"]
        assert events[3]["error"] == "SpecError"


# ---------------------------------------------------------------------------
# Daemon process: banner, SIGTERM drain
# ---------------------------------------------------------------------------


class TestDaemonProcess:
    def _spawn(self, tmp_path, *extra):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(root, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--cache",
             str(tmp_path / "cache"), "--port", "0", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=root)
        banner = process.stdout.readline()
        assert "repro-service listening on " in banner, banner
        url = banner.split("listening on ")[1].split()[0]
        return process, url

    def test_sigterm_drains_before_exit(self, tmp_path):
        process, url = self._spawn(tmp_path)
        try:
            client = ServiceClient(url, timeout=30.0)
            assert client.health()["status"] == "ok"
            handle = client.submit(dict(SPEC))
            # Attach to the stream first, then fire SIGTERM mid-job:
            # drain semantics say the stream still completes.
            events = handle.events()
            assert next(events)["event"] == "queued"
            process.send_signal(signal.SIGTERM)
            kinds = [body["event"] for body in events]
            assert kinds[-1] == "done"
            assert sum(kind == "record" for kind in kinds) == len(
                Study.from_dict(SPEC).compile())
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.stderr.close()

    def test_submit_cli_against_live_daemon(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC))
        json_path = tmp_path / "out.json"
        process, url = self._spawn(tmp_path, "--workers", "1")
        try:
            assert main(["submit", str(spec_path), "--server", url,
                         "--json", str(json_path)]) == 0
            out = capsys.readouterr().out
            assert "svc-smoke" in out and "pJ/MAC" in out
            payload = json.loads(json_path.read_text())
            assert len(payload["records"]) == len(
                Study.from_dict(SPEC).compile())
            assert payload["stats"]["service"]["submitted"] == 1
            # Second submission: the daemon's shared cache makes it a
            # full warm replay — zero new misses.
            cold = payload["stats"]["cache"]["results"]["misses"]
            assert main(["submit", str(spec_path), "--server", url,
                         "--json", str(json_path)]) == 0
            capsys.readouterr()
            payload = json.loads(json_path.read_text())
            assert payload["stats"]["cache"]["results"]["misses"] == cold
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.stderr.close()
