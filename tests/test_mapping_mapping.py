"""Tests for the mapping representation and its validation."""

import pytest

from repro.exceptions import MappingError
from repro.mapping import FanoutMapping, LevelMapping, Mapping, TemporalLoop
from repro.mapping.mapping import problem_dims, problem_macs
from repro.workloads import ConvLayer
from repro.workloads.dims import Dim


def _mapping(levels=None, spatials=()):
    if levels is None:
        levels = (LevelMapping("DRAM", ()), LevelMapping("GB", ()))
    return Mapping(levels=tuple(levels), spatials=tuple(spatials))


class TestTemporalLoop:
    def test_rejects_zero_bound(self):
        with pytest.raises(MappingError):
            TemporalLoop(Dim.M, 0)

    def test_repr(self):
        assert "M" in repr(TemporalLoop(Dim.M, 4))


class TestLevelMapping:
    def test_factor_product(self):
        level = LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                    TemporalLoop(Dim.C, 3)))
        assert level.factor_product == 12

    def test_factors_merge_repeated_dims(self):
        level = LevelMapping("GB", (TemporalLoop(Dim.M, 4),
                                    TemporalLoop(Dim.M, 2)))
        assert level.factors()[Dim.M] == 8


class TestFanoutMapping:
    def test_drops_unit_factors(self):
        spatial = FanoutMapping("pe", {Dim.M: 1, Dim.C: 4})
        assert Dim.M not in spatial.factors
        assert spatial.factor_product == 4

    def test_rejects_zero_factor(self):
        with pytest.raises(MappingError):
            FanoutMapping("pe", {Dim.M: 0})


class TestPaddedDims:
    def test_combines_temporal_and_spatial(self):
        mapping = _mapping(
            levels=(LevelMapping("DRAM", (TemporalLoop(Dim.M, 2),)),
                    LevelMapping("GB", (TemporalLoop(Dim.M, 3),))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        assert mapping.padded_dims()[Dim.M] == 24

    def test_total_products(self):
        mapping = _mapping(
            levels=(LevelMapping("DRAM", (TemporalLoop(Dim.C, 5),)),
                    LevelMapping("GB", (TemporalLoop(Dim.Q, 2),))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        assert mapping.total_temporal_product == 10
        assert mapping.total_spatial_product == 4
        assert mapping.padded_macs() == 40


class TestValidation:
    def test_valid_mapping(self, two_level_arch, small_conv):
        mapping = _mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("GB", (TemporalLoop(Dim.C, 2),
                                        TemporalLoop(Dim.P, 2),
                                        TemporalLoop(Dim.Q, 2)))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        mapping.validate(two_level_arch, small_conv)  # no raise

    def test_missing_level_entry(self, two_level_arch, small_conv):
        mapping = Mapping(levels=(LevelMapping("DRAM", ()),),
                          spatials=(FanoutMapping("pe", {}),))
        with pytest.raises(MappingError):
            mapping.validate(two_level_arch, small_conv)

    def test_wrong_level_order(self, two_level_arch, small_conv):
        mapping = Mapping(
            levels=(LevelMapping("GB", ()), LevelMapping("DRAM", ())),
            spatials=(FanoutMapping("pe", {}),))
        with pytest.raises(MappingError):
            mapping.validate(two_level_arch, small_conv)

    def test_missing_spatial_entry(self, two_level_arch, small_conv):
        mapping = Mapping(levels=(LevelMapping("DRAM", ()),
                                  LevelMapping("GB", ())))
        with pytest.raises(MappingError):
            mapping.validate(two_level_arch, small_conv)

    def test_spatial_overflows_fanout(self, two_level_arch, small_conv):
        mapping = _mapping(spatials=(FanoutMapping("pe", {Dim.M: 8}),))
        with pytest.raises(MappingError) as excinfo:
            mapping.validate(two_level_arch, small_conv)
        assert "pe" in str(excinfo.value)

    def test_spatial_illegal_dim(self, two_level_arch, small_conv):
        mapping = _mapping(spatials=(FanoutMapping("pe", {Dim.C: 2}),))
        with pytest.raises(MappingError):
            mapping.validate(two_level_arch, small_conv)

    def test_under_coverage_detected(self, two_level_arch, small_conv):
        # small_conv needs M=4, C=2, P=2, Q=2; give it nothing.
        mapping = _mapping(spatials=(FanoutMapping("pe", {}),))
        with pytest.raises(MappingError) as excinfo:
            mapping.validate(two_level_arch, small_conv)
        assert "covers only" in str(excinfo.value)

    def test_overpadding_allowed_but_counted(self, two_level_arch,
                                             small_conv):
        mapping = _mapping(
            levels=(LevelMapping("DRAM", (TemporalLoop(Dim.C, 2),
                                          TemporalLoop(Dim.P, 2),
                                          TemporalLoop(Dim.Q, 3))),
                    LevelMapping("GB", ())),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        mapping.validate(two_level_arch, small_conv)
        assert mapping.utilization_vs(small_conv) == pytest.approx(2 / 3)

    def test_restricted_temporal_dims(self, small_conv):
        from repro.systems import AlbireoConfig, build_albireo_architecture

        arch = build_albireo_architecture(AlbireoConfig())
        levels = [LevelMapping(s.name, ()) for s in arch.storage_levels]
        # Illegal: a P loop on the analog integrator.
        levels[2] = LevelMapping("AEIntegrator", (TemporalLoop(Dim.P, 2),))
        spatials = tuple(FanoutMapping(f.name, {}) for f in arch.fanouts)
        mapping = Mapping(levels=tuple(levels), spatials=spatials)
        with pytest.raises(MappingError):
            mapping.validate(arch, small_conv)


class TestGroupedProblems:
    def test_problem_dims_divide_groups(self):
        layer = ConvLayer(name="g", m=8, c=8, p=4, q=4, groups=2)
        dims = problem_dims(layer)
        assert dims[Dim.M] == 4 and dims[Dim.C] == 4

    def test_problem_macs(self):
        layer = ConvLayer(name="g", m=8, c=8, p=4, q=4, groups=2)
        assert problem_macs(layer) * layer.groups == layer.macs


class TestDescribe:
    def test_renders_nest(self):
        mapping = _mapping(
            levels=(LevelMapping("DRAM", (TemporalLoop(Dim.M, 2),)),
                    LevelMapping("GB", (TemporalLoop(Dim.C, 4),))),
            spatials=(FanoutMapping("pe", {Dim.M: 4}),),
        )
        text = mapping.describe()
        assert "for M in [0:2)" in text
        assert "spatial[pe]" in text
