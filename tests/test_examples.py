"""Smoke tests: every shipped example must run and say what it promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: (script, substring its output must contain)
_CASES = [
    ("quickstart.py", "pJ/MAC"),
    ("full_system_memory_study.py", "Batching + fusion"),
    ("reuse_exploration.py", "accelerator energy reduction"),
    ("throughput_study.py", "MACs/cycle"),
    ("custom_photonic_accelerator.py", "wdm-crossbar"),
    ("pareto_exploration.py", "Pareto"),
    ("roofline_study.py", "memory-bound"),
    ("study_api.py", "Pareto-optimal"),
    ("service_client.py", "bit-identical"),
]


@pytest.mark.parametrize("script,expected", _CASES)
def test_example_runs(script, expected):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout, (
        f"{script} output missing {expected!r}:\n{result.stdout[-500:]}")


def test_every_example_is_covered():
    shipped = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {script for script, _ in _CASES}
    assert shipped == covered, (
        f"examples without smoke tests: {shipped - covered}")
