"""Golden equivalence: the rewritten analyzer vs the original algorithm.

The mapper hot-path overhaul rewrote :class:`repro.mapping.analysis.
NestAnalyzer` as a single incremental inner-to-outer pass with shared
per-search caches.  Nothing about the *model* changed, so every field of
:class:`AccessCounts` must stay bit-identical — energy numbers in the
paper's figures are built from these counts and may not drift by a ULP.

``_ReferenceNestAnalyzer`` below is a verbatim copy of the pre-overhaul
implementation (the O(levels^2) ``_loops_above`` / per-call
``_cumulative_bounds`` version).  The tests run both analyzers over the
full ResNet18 layer set under several mapping families — the system's
reference mappings, mapper-found mappings, and adversarial padded
mappings — and assert exact equality, floats included.
"""

from typing import Dict, List, Sequence

import pytest

from repro.arch.hierarchy import (
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.exceptions import CapacityError, MappingError
from repro.mapping.analysis import (
    HAVE_NUMPY,
    AccessCounts,
    BatchNestAnalyzer,
    NestAnalyzer,
    SearchContext,
    analyze,
    compute_traffic,
)
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
)
from repro.systems.albireo import (
    AlbireoConfig,
    AlbireoSystem,
    albireo_mapping_candidates,
)
from repro.workloads import resnet18
from repro.workloads.dataspace import (
    ALL_DATASPACES,
    DataSpace,
    dataspace_tile_size,
    reduction_dims,
    relevant_dims,
)
from repro.workloads.dims import ALL_DIMS, Dim
from repro.workloads.layer import ConvLayer


# ---------------------------------------------------------------------------
# Reference implementation (verbatim pre-overhaul analyzer)
# ---------------------------------------------------------------------------

def _loop_is_transparent(loop: TemporalLoop) -> bool:
    return loop.bound <= 1


def _fill_events(loops_above_innermost_first: Sequence[TemporalLoop],
                 dataspace: DataSpace) -> int:
    relevant = relevant_dims(dataspace)
    events = 1
    seen_relevant = False
    for loop in loops_above_innermost_first:
        if _loop_is_transparent(loop):
            continue
        if not seen_relevant and loop.dim not in relevant:
            continue  # initial irrelevant run: perfect temporal reuse
        seen_relevant = True
        events *= loop.bound
    return events


class _ReferenceNestAnalyzer:
    """The pre-overhaul analyzer, kept as the semantic golden master."""

    def __init__(self, architecture, layer, mapping, check_capacity=True):
        mapping.validate(architecture, layer)
        self.architecture = architecture
        self.layer = layer
        self.mapping = mapping
        self.check_capacity = check_capacity
        self._loops_by_storage = {
            level.storage: level.loops for level in mapping.levels
        }
        self._factors_by_fanout = {
            spatial.fanout: dict(spatial.factors)
            for spatial in mapping.spatials
        }
        self._storage_order = [s.name for s in architecture.storage_levels]

    def _loops_above(self, storage_name):
        loops = []
        for name in self._storage_order:
            if name == storage_name:
                break
            loops.extend(self._loops_by_storage[name])
        return loops[::-1]

    def _cumulative_bounds(self, node_index):
        bounds = {dim: 1 for dim in ALL_DIMS}
        for node in self.architecture.nodes[node_index:]:
            if isinstance(node, StorageLevel):
                for loop in self._loops_by_storage[node.name]:
                    bounds[loop.dim] *= loop.bound
            elif isinstance(node, SpatialFanout):
                for dim, factor in self._factors_by_fanout[node.name].items():
                    bounds[dim] *= factor
        return bounds

    def _instances_above(self, node_index):
        product = 1
        for node in self.architecture.nodes[:node_index]:
            if isinstance(node, SpatialFanout):
                for factor in self._factors_by_fanout[node.name].values():
                    product *= factor
        return product

    def _tile_elements(self, node_index, dataspace):
        bounds = self._cumulative_bounds(node_index)
        return dataspace_tile_size(dataspace, bounds, self.layer.strides)

    def _boundary_amortization(self, fanout, dataspace):
        factors = self._factors_by_fanout[fanout.name]
        if dataspace in fanout.multicast:
            product = 1
            for dim, factor in factors.items():
                if dim not in relevant_dims(dataspace):
                    product *= factor
            return float(product)
        if dataspace in fanout.reduction:
            product = 1
            for dim, factor in factors.items():
                if dim in reduction_dims(dataspace):
                    product *= factor
            if fanout.reduction_limit is not None:
                product = min(product, fanout.reduction_limit)
            return float(product)
        return 1.0

    def analyze(self):
        from repro.mapping.analysis import StorageCounts

        architecture = self.architecture
        padded_macs = self.mapping.padded_macs()
        cycles = self.mapping.total_temporal_product
        if padded_macs != cycles * self.mapping.total_spatial_product:
            raise MappingError(
                "internal inconsistency: padded MACs != cycles x spatial"
            )

        storage_counts = {
            name: StorageCounts() for name in self._storage_order
        }
        conversions = {
            stage.name: {} for stage in architecture.converters
        }
        occupancy = {}
        instances = {}

        outermost = {
            dataspace: self.architecture.storage_for(dataspace)[0].name
            for dataspace in ALL_DATASPACES
        }

        flow = {ds: float(padded_macs) for ds in ALL_DATASPACES}

        for node_index in range(len(architecture.nodes) - 1, -1, -1):
            node = architecture.nodes[node_index]
            if isinstance(node, ComputeLevel):
                continue
            if isinstance(node, SpatialFanout):
                for dataspace in ALL_DATASPACES:
                    flow[dataspace] /= self._boundary_amortization(
                        node, dataspace)
                continue
            if isinstance(node, ConverterStage):
                for dataspace in node.dataspaces:
                    bucket = conversions[node.name]
                    bucket[dataspace] = bucket.get(dataspace, 0.0) \
                        + flow[dataspace]
                continue

            assert isinstance(node, StorageLevel)
            counts = storage_counts[node.name]
            level_instances = self._instances_above(node_index)
            instances[node.name] = level_instances
            occupancy[node.name] = self._occupancy_bits(node_index, node)
            if (self.check_capacity and node.capacity_bits is not None
                    and occupancy[node.name] > node.capacity_bits):
                raise CapacityError(
                    f"storage {node.name!r}: mapping needs "
                    f"{occupancy[node.name]:.0f} bits per instance but "
                    f"capacity is {node.capacity_bits:.0f}"
                )
            for dataspace in node.dataspaces:
                if dataspace is DataSpace.OUTPUTS:
                    flow[dataspace] = self._visit_output_storage(
                        node, node_index, counts, flow[dataspace],
                        is_outermost=(node.name == outermost[dataspace]),
                    )
                else:
                    flow[dataspace] = self._visit_read_storage(
                        node, node_index, counts, flow[dataspace],
                        dataspace,
                        is_outermost=(node.name == outermost[dataspace]),
                    )

        real_macs = self._grouped_real_macs()
        traffic_bits, bandwidth_cycles = compute_traffic(
            self.architecture, self.layer, storage_counts, instances)
        return AccessCounts(
            storage=storage_counts,
            conversions=conversions,
            padded_macs=padded_macs,
            real_macs=real_macs,
            cycles=cycles,
            occupancy_bits=occupancy,
            instances=instances,
            padding_utilization=(real_macs / padded_macs
                                 if padded_macs else 0.0),
            bandwidth_cycles=bandwidth_cycles,
            traffic_bits=traffic_bits,
        )

    def _visit_read_storage(self, node, node_index, counts, incoming_demand,
                            dataspace, is_outermost):
        counts.reads[dataspace] = counts.reads.get(dataspace, 0.0) \
            + incoming_demand
        if is_outermost:
            return 0.0
        fills = (
            _fill_events(self._loops_above(node.name), dataspace)
            * self._tile_elements(node_index, dataspace)
            * self._instances_above(node_index)
        )
        counts.writes[dataspace] = counts.writes.get(dataspace, 0.0) + fills
        return float(fills)

    def _visit_output_storage(self, node, node_index, counts, updates_in,
                              is_outermost):
        writebacks = float(
            _fill_events(self._loops_above(node.name), DataSpace.OUTPUTS)
            * self._tile_elements(node_index, DataSpace.OUTPUTS)
            * self._instances_above(node_index)
        )
        if node.max_accumulation_depth is not None:
            writebacks = max(writebacks,
                             updates_in / node.max_accumulation_depth)
        if updates_in + 1e-9 < writebacks:
            raise MappingError(
                f"storage {node.name!r}: output residencies ({writebacks}) "
                f"exceed incoming updates ({updates_in}); mapping is "
                f"structurally inconsistent"
            )
        counts.writes[DataSpace.OUTPUTS] = counts.writes.get(
            DataSpace.OUTPUTS, 0.0) + updates_in
        if is_outermost:
            rmw_reads = updates_in - writebacks
            counts.reads[DataSpace.OUTPUTS] = counts.reads.get(
                DataSpace.OUTPUTS, 0.0) + rmw_reads
            return 0.0
        counts.reads[DataSpace.OUTPUTS] = counts.reads.get(
            DataSpace.OUTPUTS, 0.0) + updates_in
        return float(writebacks)

    def _occupancy_bits(self, node_index, node):
        bits = 0.0
        for dataspace in node.dataspaces:
            width = (self.layer.bits_per_weight
                     if dataspace is DataSpace.WEIGHTS
                     else self.layer.bits_per_activation)
            bits += self._tile_elements(node_index, dataspace) * width
        return bits

    def _grouped_real_macs(self):
        layer = self.layer
        return (layer.n * (layer.m // layer.groups)
                * (layer.c // layer.groups)
                * layer.p * layer.q * layer.r * layer.s)


# ---------------------------------------------------------------------------
# Comparison plumbing
# ---------------------------------------------------------------------------

def _counts_equal(a: AccessCounts, b: AccessCounts) -> List[str]:
    """Field-by-field exact comparison; returns mismatch descriptions."""
    mismatches = []
    if set(a.storage) != set(b.storage):
        mismatches.append("storage level sets differ")
    for name in a.storage:
        for kind in ("reads", "writes"):
            left = getattr(a.storage[name], kind)
            right = getattr(b.storage[name], kind)
            if left != right:
                mismatches.append(
                    f"storage[{name}].{kind}: {left} != {right}")
    if a.conversions != b.conversions:
        mismatches.append(f"conversions: {a.conversions} != {b.conversions}")
    for scalar in ("padded_macs", "real_macs", "cycles",
                   "padding_utilization"):
        if getattr(a, scalar) != getattr(b, scalar):
            mismatches.append(
                f"{scalar}: {getattr(a, scalar)} != {getattr(b, scalar)}")
    for mapping_field in ("occupancy_bits", "instances", "bandwidth_cycles",
                          "traffic_bits"):
        if getattr(a, mapping_field) != getattr(b, mapping_field):
            mismatches.append(
                f"{mapping_field}: {getattr(a, mapping_field)} != "
                f"{getattr(b, mapping_field)}")
    return mismatches


def _assert_equivalent(architecture, layer, mapping):
    try:
        expected = _ReferenceNestAnalyzer(architecture, layer,
                                          mapping).analyze()
        expected_error = None
    except (MappingError, CapacityError) as error:
        expected, expected_error = None, type(error)
    try:
        actual = analyze(architecture, layer, mapping)
        actual_error = None
    except (MappingError, CapacityError) as error:
        actual, actual_error = None, type(error)
    assert expected_error == actual_error, (
        f"rejection behaviour diverged: reference {expected_error}, "
        f"rewritten {actual_error}")
    if expected is None:
        return
    mismatches = _counts_equal(expected, actual)
    assert not mismatches, "\n".join(mismatches)


def _unique_layers():
    seen = set()
    layers = []
    for entry in resnet18().entries:
        layer = entry.layer
        key = (layer.n, layer.m, layer.c, layer.p, layer.q, layer.r,
               layer.s, layer.stride_h, layer.stride_w, layer.groups)
        if key not in seen:
            seen.add(key)
            layers.append(layer)
    return layers


RESNET_LAYERS = _unique_layers()


@pytest.fixture(scope="module")
def system():
    return AlbireoSystem(AlbireoConfig())


# ---------------------------------------------------------------------------
# Golden tests
# ---------------------------------------------------------------------------

class TestResNet18Equivalence:
    @pytest.mark.parametrize(
        "layer", RESNET_LAYERS, ids=[l.name for l in RESNET_LAYERS])
    def test_reference_mapping_candidates(self, system, layer):
        """All reference-mapping variants of every unique ResNet18 layer."""
        target = system.analysis_layer(layer)
        for mapping in albireo_mapping_candidates(system.config, target):
            _assert_equivalent(system.architecture, target, mapping)

    def test_mapper_found_mappings(self, system):
        """Mappings the search actually returns (several seeds)."""
        layer = RESNET_LAYERS[3]
        target = system.analysis_layer(layer)
        for seed in (0, 1, 2):
            result = system.search_mapping(layer, max_evaluations=60,
                                           seed=seed)
            _assert_equivalent(system.architecture, target, result.mapping)

    def test_adversarial_padded_mappings(self, system):
        """Heavily padded, deliberately awkward hand-built mappings."""
        layer = ConvLayer(name="awkward", m=127, c=63, p=13, q=13, r=3, s=3)
        target = system.analysis_layer(layer)
        mappings = [
            # Everything temporal at DRAM, heavy padding on M and C.
            Mapping(
                levels=(
                    LevelMapping("DRAM", (
                        TemporalLoop(Dim.M, 128), TemporalLoop(Dim.C, 64),
                        TemporalLoop(Dim.P, 13), TemporalLoop(Dim.Q, 13),
                        TemporalLoop(Dim.R, 3), TemporalLoop(Dim.S, 3))),
                    LevelMapping("GlobalBuffer", ()),
                    LevelMapping("AEIntegrator", ()),
                ),
                spatials=(
                    FanoutMapping("clusters", {}),
                    FanoutMapping("weight_lanes", {}),
                    FanoutMapping("star_coupler", {}),
                    FanoutMapping("window_sites", {}),
                    FanoutMapping("wavelengths", {}),
                ),
            ),
            # Split across levels with transparent (bound-1) loops and
            # spatial padding on the star coupler.
            Mapping(
                levels=(
                    LevelMapping("DRAM", (
                        TemporalLoop(Dim.C, 16), TemporalLoop(Dim.M, 8),
                        TemporalLoop(Dim.N, 1), TemporalLoop(Dim.P, 13))),
                    LevelMapping("GlobalBuffer", (
                        TemporalLoop(Dim.Q, 13), TemporalLoop(Dim.C, 4),
                        TemporalLoop(Dim.M, 2), TemporalLoop(Dim.R, 1))),
                    LevelMapping("AEIntegrator", (TemporalLoop(Dim.R, 3),)),
                ),
                spatials=(
                    FanoutMapping("clusters", {Dim.M: 8}),
                    FanoutMapping("weight_lanes", {}),
                    FanoutMapping("star_coupler", {Dim.M: 1}),
                    FanoutMapping("window_sites", {Dim.S: 3}),
                    FanoutMapping("wavelengths", {Dim.C: 1}),
                ),
            ),
        ]
        for mapping in mappings:
            _assert_equivalent(system.architecture, target, mapping)

    def test_strided_and_grouped_layers(self, system):
        """Stride/group handling flows through identically."""
        strided = ConvLayer(name="strided", m=64, c=64, p=14, q=14,
                            r=3, s=3, stride_h=2, stride_w=2)
        grouped = ConvLayer(name="grouped", m=32, c=32, p=7, q=7,
                            groups=4)
        for layer in (strided, grouped):
            target = system.analysis_layer(layer)
            for mapping in albireo_mapping_candidates(system.config,
                                                      target)[:4]:
                _assert_equivalent(system.architecture, target, mapping)

    def test_capacity_rejection_matches(self, system):
        """Over-capacity mappings raise CapacityError in both paths."""
        layer = ConvLayer(name="huge", m=512, c=512, p=56, q=56, r=3, s=3)
        target = system.analysis_layer(layer)
        mapping = Mapping(
            levels=(
                LevelMapping("DRAM", ()),
                LevelMapping("GlobalBuffer", tuple(
                    TemporalLoop(dim, bound) for dim, bound in (
                        (Dim.M, 512), (Dim.C, 512), (Dim.P, 56),
                        (Dim.Q, 56), (Dim.R, 3), (Dim.S, 3)))),
                LevelMapping("AEIntegrator", ()),
            ),
            spatials=(
                FanoutMapping("clusters", {}),
                FanoutMapping("weight_lanes", {}),
                FanoutMapping("star_coupler", {}),
                FanoutMapping("window_sites", {}),
                FanoutMapping("wavelengths", {}),
            ),
        )
        _assert_equivalent(system.architecture, target, mapping)


# ---------------------------------------------------------------------------
# Batched (candidate-axis) analyzer vs the scalar analyzer
# ---------------------------------------------------------------------------

def _assert_batch_equivalent(system, target, mappings):
    """Batch-analyze ``mappings`` and compare every candidate — counts,
    priced energy, and rejection behaviour — bitwise against the scalar
    path."""
    architecture = system.architecture
    valid = []
    for mapping in mappings:
        try:
            mapping.validate(architecture, target)
        except MappingError:
            continue
        valid.append(mapping)
    assert valid, "candidate family produced no structurally valid mapping"
    context = SearchContext.for_layer(architecture, target)
    batch = BatchNestAnalyzer(architecture, target, valid,
                              context=context, validate=False).analyze()
    costs = system.model.batch_energy_pj(target, valid, context)
    assert len(costs) == len(valid)
    for index, mapping in enumerate(valid):
        try:
            scalar = NestAnalyzer(architecture, target, mapping,
                                  context=context,
                                  validate=False).analyze()
            scalar_error = None
        except (MappingError, CapacityError) as error:
            scalar, scalar_error = None, error
        if scalar_error is not None:
            assert not batch.ok(index), (
                f"scalar raised {type(scalar_error).__name__} but the "
                f"batch accepted candidate {index}")
            assert costs[index] is None
            with pytest.raises(type(scalar_error)) as caught:
                batch.counts_for(index)
            assert str(caught.value) == str(scalar_error)
            continue
        assert batch.ok(index), (
            f"batch flagged candidate {index} "
            f"(capacity={batch.capacity_level[index]!r}, "
            f"inconsistent={bool(batch.inconsistent[index])}) but the "
            f"scalar analyzer accepted it")
        mismatches = _counts_equal(scalar, batch.counts_for(index))
        assert not mismatches, "\n".join(mismatches)
        expected = system.model.evaluate_layer(
            target, mapping, context=context, validated=True).energy_pj
        assert costs[index] == expected, (
            f"candidate {index}: batch cost {costs[index]!r} != scalar "
            f"energy {expected!r}")


def _mapper_candidate_pool(system, target, budget=150, seed=0):
    """Deduplicated materialized mapper candidates (the search's pool)."""
    import random

    from repro.mapping.mapper import Mapper, _materialize

    mapper = Mapper(system.architecture,
                    system.model.energy_cost_fn(target),
                    constraints=system.constraints(target))
    specs, _ = mapper._generate_specs(target, random.Random(seed), set(),
                                      budget)
    return [_materialize(spec) for spec in specs]


@pytest.mark.skipif(not HAVE_NUMPY, reason="batched analyzer needs numpy")
class TestBatchedAnalyzerEquivalence:
    """The vectorized candidate-axis analyzer is bit-identical to the
    scalar analyzer over every mapping family the system exercises."""

    @pytest.mark.parametrize(
        "layer", RESNET_LAYERS[:6], ids=[l.name for l in RESNET_LAYERS[:6]])
    def test_reference_candidates(self, system, layer):
        target = system.analysis_layer(layer)
        _assert_batch_equivalent(
            system, target,
            list(albireo_mapping_candidates(system.config, target)))

    def test_mapper_candidate_pools(self, system):
        for layer in RESNET_LAYERS[2:5]:
            target = system.analysis_layer(layer)
            _assert_batch_equivalent(
                system, target, _mapper_candidate_pool(system, target))

    def test_adversarial_padded_mappings(self, system):
        layer = ConvLayer(name="awkward", m=127, c=63, p=13, q=13, r=3, s=3)
        target = system.analysis_layer(layer)
        mappings = [
            Mapping(
                levels=(
                    LevelMapping("DRAM", (
                        TemporalLoop(Dim.M, 128), TemporalLoop(Dim.C, 64),
                        TemporalLoop(Dim.P, 13), TemporalLoop(Dim.Q, 13),
                        TemporalLoop(Dim.R, 3), TemporalLoop(Dim.S, 3))),
                    LevelMapping("GlobalBuffer", ()),
                    LevelMapping("AEIntegrator", ()),
                ),
                spatials=(
                    FanoutMapping("clusters", {}),
                    FanoutMapping("weight_lanes", {}),
                    FanoutMapping("star_coupler", {}),
                    FanoutMapping("window_sites", {}),
                    FanoutMapping("wavelengths", {}),
                ),
            ),
            Mapping(
                levels=(
                    LevelMapping("DRAM", (
                        TemporalLoop(Dim.C, 16), TemporalLoop(Dim.M, 8),
                        TemporalLoop(Dim.N, 1), TemporalLoop(Dim.P, 13))),
                    LevelMapping("GlobalBuffer", (
                        TemporalLoop(Dim.Q, 13), TemporalLoop(Dim.C, 4),
                        TemporalLoop(Dim.M, 2), TemporalLoop(Dim.R, 1))),
                    LevelMapping("AEIntegrator", (TemporalLoop(Dim.R, 3),)),
                ),
                spatials=(
                    FanoutMapping("clusters", {Dim.M: 8}),
                    FanoutMapping("weight_lanes", {}),
                    FanoutMapping("star_coupler", {Dim.M: 1}),
                    FanoutMapping("window_sites", {Dim.S: 3}),
                    FanoutMapping("wavelengths", {Dim.C: 1}),
                ),
            ),
        ]
        _assert_batch_equivalent(system, target, mappings)

    def test_capacity_rejection_reproduced(self, system):
        """Over-capacity candidates are flagged, priced as None, and
        counts_for raises the scalar CapacityError verbatim."""
        layer = ConvLayer(name="huge", m=512, c=512, p=56, q=56, r=3, s=3)
        target = system.analysis_layer(layer)
        mapping = Mapping(
            levels=(
                LevelMapping("DRAM", ()),
                LevelMapping("GlobalBuffer", tuple(
                    TemporalLoop(dim, bound) for dim, bound in (
                        (Dim.M, 512), (Dim.C, 512), (Dim.P, 56),
                        (Dim.Q, 56), (Dim.R, 3), (Dim.S, 3)))),
                LevelMapping("AEIntegrator", ()),
            ),
            spatials=(
                FanoutMapping("clusters", {}),
                FanoutMapping("weight_lanes", {}),
                FanoutMapping("star_coupler", {}),
                FanoutMapping("window_sites", {}),
                FanoutMapping("wavelengths", {}),
            ),
        )
        _assert_batch_equivalent(system, target, [mapping])

    def test_search_batched_equals_scalar(self, system):
        """Full Mapper.search: block path vs per-candidate path produce
        the same mapping, cost, and counters."""
        from repro.mapping.mapper import Mapper

        layer = RESNET_LAYERS[3]
        target = system.analysis_layer(layer)
        results = []
        for strip_batch in (False, True):
            cost_fn = system.model.energy_cost_fn(target)
            if strip_batch:
                assert hasattr(cost_fn, "batch")
                del cost_fn.batch
            mapper = Mapper(system.architecture, cost_fn,
                            constraints=system.constraints(target))
            results.append(mapper.search(target, max_evaluations=120))
        batched, scalar = results
        assert batched.cost == scalar.cost
        assert batched.mapping.canonical_key() \
            == scalar.mapping.canonical_key()
        assert (batched.evaluated, batched.valid, batched.deduplicated,
                batched.pruned_early) \
            == (scalar.evaluated, scalar.valid, scalar.deduplicated,
                scalar.pruned_early)

    def test_reference_mapping_batched_equals_scalar(self, monkeypatch):
        """System reference-mapping selection picks the same mapping with
        the batched pricing path disabled."""
        import repro.systems.base as systems_base

        layer = RESNET_LAYERS[1]
        picked = {}
        for disabled in (False, True):
            monkeypatch.setattr(systems_base, "HAVE_NUMPY", not disabled)
            fresh = AlbireoSystem(AlbireoConfig())
            picked[disabled] = fresh.reference_mapping(layer).canonical_key()
        assert picked[False] == picked[True]
