"""Sharded cache store: durability, migration, concurrency, eviction.

Covers the on-disk contracts of :mod:`repro.engine.store` that the
engine-level tests only exercise indirectly: atomic index/image writes,
legacy ``cache.json`` auto-migration, two processes appending to one
store without losing entries, readers never seeing torn records, lock
contention surfacing in the stats, and LRU eviction under entry/byte
budgets.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.engine import EvaluationCache
from repro.engine.store import (
    FileLock,
    ShardedStore,
    atomic_write_json,
    shard_of,
)

NAMESPACES = ("results", "mappings", "layers")


def _key(tag) -> str:
    """A realistic content-addressed key (SHA-256 hex)."""
    return hashlib.sha256(str(tag).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------


class TestBuildingBlocks:
    def test_shard_of_hex_prefix(self):
        assert shard_of(_key("x")) == _key("x")[0]
        assert shard_of("abc") == "a"

    def test_shard_of_non_hex_is_stable(self):
        assert shard_of("zzz") == shard_of("zzz")
        assert shard_of("zzz") in "0123456789abcdef"

    def test_atomic_write_json_round_trip(self, tmp_path):
        path = str(tmp_path / "index.json")
        atomic_write_json(path, {"a": 1})
        atomic_write_json(path, {"a": 2})
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == {"a": 2}

    def test_atomic_write_json_failure_keeps_old_file(self, tmp_path):
        path = str(tmp_path / "index.json")
        atomic_write_json(path, {"a": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == {"a": 1}
        # No stray temp files left behind either.
        assert os.listdir(str(tmp_path)) == ["index.json"]


# ---------------------------------------------------------------------------
# Round trip + lazy loading
# ---------------------------------------------------------------------------


class TestShardedRoundTrip:
    def test_save_reload_lazy_fault(self, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        keys = [_key(i) for i in range(8)]
        for i, key in enumerate(keys):
            cache.put("results", key, {"value": i})
        cache.save()

        warm = EvaluationCache(str(tmp_path))
        assert len(warm) == 0  # nothing loaded up front
        for i, key in enumerate(keys):
            assert warm.get("results", key) == {"value": i}
        # Only the shards those keys live in were faulted.
        shards = {shard_of(key) for key in keys}
        assert warm.store.stats.shard_loads == len(shards)

    def test_flush_is_delta_only(self, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        cache.put("results", _key("a"), {"v": 1})
        cache.save()
        assert cache.store.stats.flushed_entries == 1
        cache.put("results", _key("b"), {"v": 2})
        cache.save()
        # Second save flushed only the one new entry.
        assert cache.store.stats.flushed_entries == 2

    def test_overwrite_latest_wins_after_reload(self, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        cache.put("results", _key("a"), {"v": 1})
        cache.save()
        cache.put("results", _key("a"), {"v": 2})
        cache.save()
        warm = EvaluationCache(str(tmp_path))
        assert warm.get("results", _key("a")) == {"v": 2}


# ---------------------------------------------------------------------------
# Legacy migration
# ---------------------------------------------------------------------------


class TestMigration:
    def _legacy_cache(self, directory, entries):
        legacy = EvaluationCache(directory, backend="legacy")
        for namespace, key, value in entries:
            legacy.put(namespace, key, value)
        legacy.save()
        return legacy

    def test_auto_migration_preserves_entries_exactly(self, tmp_path):
        entries = [
            ("results", _key("r"), {"energy": 1.25, "nested": [1, 2]}),
            ("mappings", _key("m"), {"cost": 0.5}),
            ("layers", _key("l"), {"latency": 7}),
        ]
        self._legacy_cache(str(tmp_path), entries)
        legacy_bytes = (tmp_path / "cache.json").read_bytes()

        migrated = EvaluationCache(str(tmp_path))
        for namespace, key, value in entries:
            assert migrated.get(namespace, key) == value
        assert migrated.store.stats.migrated_entries == len(entries)
        # The legacy image stays in place, untouched, for old readers.
        assert (tmp_path / "cache.json").read_bytes() == legacy_bytes

    def test_migration_happens_once(self, tmp_path):
        self._legacy_cache(str(tmp_path),
                           [("results", _key("r"), {"v": 1})])
        first = EvaluationCache(str(tmp_path))
        assert first.store.stats.migrated_entries == 1
        again = EvaluationCache(str(tmp_path))
        assert again.store.stats.migrated_entries == 0
        assert again.get("results", _key("r")) == {"v": 1}

    def test_sharded_serves_byte_identical_values(self, tmp_path):
        """A migrated store returns values that encode byte-identically
        to what the legacy loader would have produced."""
        value = {"cost": 1.5, "list": [1, 2, 3], "s": "x"}
        self._legacy_cache(str(tmp_path), [("results", _key("r"), value)])
        legacy_view = EvaluationCache(str(tmp_path), backend="legacy")
        sharded_view = EvaluationCache(str(tmp_path))
        a = json.dumps(legacy_view.get("results", _key("r")),
                       sort_keys=True)
        b = json.dumps(sharded_view.get("results", _key("r")),
                       sort_keys=True)
        assert a == b

    def test_explicit_cli_migrate(self, tmp_path, capsys):
        from repro.cli import main

        self._legacy_cache(str(tmp_path),
                           [("results", _key("r"), {"v": 1})])
        assert main(["cache", "migrate", str(tmp_path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["migrated_entries"] == 1
        assert info["total_entries"] == 1


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


def _writer_process(directory, start, count, barrier):
    """Write ``count`` entries through a private cache handle, flushing
    in small batches to interleave with the sibling process."""
    cache = EvaluationCache(directory)
    barrier.wait()
    for i in range(start, start + count):
        cache.put("results", _key(i), {"value": i, "writer": start})
        if i % 5 == 0:
            cache.save()
    cache.save()


class TestConcurrency:
    def test_two_processes_disjoint_writes_union(self, tmp_path):
        """Two processes sweeping disjoint grids into one cache directory
        lose no entries: the merged store equals the serial union."""
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        count = 20
        procs = [
            ctx.Process(target=_writer_process,
                        args=(str(tmp_path), start, count, barrier))
            for start in (0, count)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode == 0

        merged = EvaluationCache(str(tmp_path))
        for i in range(2 * count):
            expected = {"value": i, "writer": 0 if i < count else count}
            assert merged.get("results", _key(i)) == expected
        assert merged.store.entry_counts()["results"] == 2 * count

    def test_reader_never_sees_torn_record(self, tmp_path):
        """A reader concurrent with a flushing writer sees the old value
        or the new value — never a torn/partial one."""
        directory = str(tmp_path)
        key = _key("contended")
        payload = "x" * 4096  # large enough to span write syscalls
        writer = EvaluationCache(directory)
        writer.put("results", key, {"n": 0, "sum": 0, "pad": payload})
        writer.save()

        stop = threading.Event()
        errors = []

        def write_versions():
            try:
                for n in range(1, 40):
                    writer.put("results", key,
                               {"n": n, "sum": n, "pad": payload})
                    writer.save()
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(exc)
            finally:
                stop.set()

        thread = threading.Thread(target=write_versions)
        thread.start()
        reads = 0
        while not stop.is_set() or reads == 0:
            fresh = EvaluationCache(directory)
            value = fresh.get("results", key)
            assert value is not None
            assert value["n"] == value["sum"]  # complete record
            assert len(value["pad"]) == len(payload)
            reads += 1
        thread.join(30)
        assert not errors
        assert reads > 0

    def test_lock_contention_is_counted(self, tmp_path):
        store = ShardedStore(str(tmp_path), NAMESPACES)
        key = _key("locked")
        shard = shard_of(key)
        lock_path = os.path.join(store.root, "locks",
                                 f"shard-{shard}.lock")
        from repro.engine import store as store_module
        if store_module.fcntl is None:
            pytest.skip("platform without flock advisory locks")

        done = threading.Event()

        def flush_contended():
            store.flush({"results": {key: {"v": 1}}})
            done.set()

        # flock is per open file description, so holding the lock on a
        # separate fd in this same process blocks the flusher thread.
        with FileLock(lock_path):
            thread = threading.Thread(target=flush_contended)
            thread.start()
            time.sleep(0.2)
            assert not done.is_set()  # stuck behind our lock
        thread.join(30)
        assert done.is_set()
        assert store.stats.lock_waits >= 1
        assert store.stats.lock_wait_s > 0.0
        # The write still landed once the lock cleared.
        assert store.load_shard(shard)["results"][key] == {"v": 1}

    def test_lock_acquisition_timeout_is_a_clear_error(self, tmp_path):
        from repro.engine import store as store_module
        from repro.exceptions import StoreLockTimeout

        if store_module.fcntl is None:
            pytest.skip("platform without flock advisory locks")
        lock_path = os.path.join(str(tmp_path), "wedged.lock")
        # A second acquisition on a separate fd must give up at the
        # deadline with an error naming the lock, not block forever.
        with FileLock(lock_path):
            started = time.perf_counter()
            with pytest.raises(StoreLockTimeout,
                               match="wedged.lock"):
                with FileLock(lock_path, timeout=0.2):
                    pass
            waited = time.perf_counter() - started
        assert 0.15 <= waited < 5.0
        # The lock is usable again once the holder releases it.
        with FileLock(lock_path, timeout=0.2):
            pass


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------


class TestEviction:
    def test_byte_budget_evicts_lru_and_recomputes(self, tmp_path):
        directory = str(tmp_path)
        cache = EvaluationCache(directory)
        pad = "y" * 512
        keys = [_key(i) for i in range(8)]
        for i, key in enumerate(keys):
            cache.put("results", key, {"value": i, "pad": pad})
        cache.save()
        total = cache.store.total_bytes()

        # Touch the two oldest-written entries so recency protects them.
        warm = EvaluationCache(directory)
        assert warm.get("results", keys[0]) is not None
        assert warm.get("results", keys[1]) is not None
        warm.save()  # persists the access touches

        summary = warm.store.gc(max_bytes=total // 2)
        assert summary["evicted_entries"] > 0
        assert summary["evicted_bytes"] > 0
        # Compaction re-encodes surviving lines with their merged access
        # timestamps, whose float repr can run a few bytes longer than
        # the original — budget the slack per surviving entry.
        survivors = sum(warm.store.entry_counts().values())
        assert warm.store.total_bytes() <= total // 2 + 8 * survivors

        after = EvaluationCache(directory)
        assert after.get("results", keys[0]) == {"value": 0, "pad": pad}
        assert after.get("results", keys[1]) == {"value": 1, "pad": pad}
        # An evicted entry is simply a miss: recompute-and-put restores.
        missing = [key for key in keys
                   if after.get("results", key) is None]
        assert missing
        after.put("results", missing[0],
                  {"value": keys.index(missing[0]), "pad": pad})
        after.save()
        assert EvaluationCache(directory).get(
            "results", missing[0]) is not None

    def test_entry_budget_auto_gc_on_flush(self, tmp_path):
        cache = EvaluationCache(str(tmp_path), max_entries=3)
        for i in range(9):
            cache.put("results", _key(i), {"v": i})
        cache.save()  # flush trips the budget and runs gc inline
        assert cache.store.stats.evicted_entries == 6
        assert sum(cache.store.entry_counts().values()) == 3

    def test_per_namespace_budget(self, tmp_path):
        store = ShardedStore(str(tmp_path), NAMESPACES)
        store.flush({
            "results": {_key(("r", i)): {"v": i} for i in range(6)},
            "layers": {_key(("l", i)): {"v": i} for i in range(4)},
        })
        summary = store.gc(max_entries={"results": 2})
        counts = store.entry_counts()
        assert counts["results"] == 2
        assert counts["layers"] == 4  # unbudgeted namespace untouched
        assert summary["evicted_entries"] == 4

    def test_gc_compacts_superseded_puts(self, tmp_path):
        store = ShardedStore(str(tmp_path), NAMESPACES)
        key = _key("rewritten")
        for version in range(5):
            store.flush({"results": {key: {"v": version}}})
        size_before = store.total_bytes()
        summary = store.gc()
        assert summary["evicted_entries"] == 0
        assert store.total_bytes() < size_before
        assert store.load_shard(shard_of(key))["results"][key] == {"v": 4}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCacheCli:
    def test_stats_json(self, tmp_path, capsys):
        from repro.cli import main

        cache = EvaluationCache(str(tmp_path))
        cache.put("results", _key("a"), {"v": 1})
        cache.put("layers", _key("b"), {"v": 2})
        cache.save()
        assert main(["cache", "stats", str(tmp_path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["total_entries"] == 2
        assert info["entries"] == {"results": 1, "mappings": 0,
                                   "layers": 1, "failures": 0}
        assert info["bytes"] > 0

    def test_gc_with_budget(self, tmp_path, capsys):
        from repro.cli import main

        cache = EvaluationCache(str(tmp_path))
        for i in range(10):
            cache.put("results", _key(i), {"v": i})
        cache.save()
        assert main(["cache", "gc", str(tmp_path),
                     "--max-entries", "4", "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["gc"]["evicted_entries"] == 6
        assert info["total_entries"] == 4

    def test_stats_table_output(self, tmp_path, capsys):
        from repro.cli import main

        cache = EvaluationCache(str(tmp_path))
        cache.put("results", _key("a"), {"v": 1})
        cache.save()
        assert main(["cache", "stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "results 1" in out
