"""The Study facade: composition, spec validation, engine execution, and
equivalence with the sweeps it replaces."""

import dataclasses
import json
import warnings

import pytest

from repro.api import Study, comparison_study, config_study, \
    memory_study, reuse_study
from repro.energy.scaling import AGGRESSIVE, CONSERVATIVE
from repro.engine import network_evaluation_to_dict
from repro.exceptions import SpecError, WorkloadError
from repro.systems import AlbireoConfig, CrossbarConfig
from repro.workloads import tiny_cnn


class TestStudyComposition:
    def test_lattice_size_and_order(self):
        jobs = (Study()
                .systems("albireo", "crossbar")
                .networks("tiny")
                .scenarios("conservative", "aggressive")
                .grid(global_buffer_kib=(512, 1024))
                .compile())
        assert len(jobs) == 2 * 2 * 2
        # Row-major: source -> scenario -> grid point.
        assert [job.system for job in jobs] == ["albireo"] * 4 \
            + ["crossbar"] * 4
        assert [job.config.scenario.name for job in jobs[:4]] \
            == ["conservative"] * 2 + ["aggressive"] * 2
        assert [job.config.global_buffer_kib for job in jobs[:2]] \
            == [512, 1024]

    def test_tags_carry_coordinates(self):
        job = (Study().systems("albireo").networks("tiny")
               .scenarios("aggressive").grid(clusters=(8,)).compile())[0]
        tags = job.tags_dict
        assert tags["system"] == "albireo"
        assert tags["network"] == "TinyCNN"
        assert tags["scenario"] == "aggressive"
        assert tags["clusters"] == 8
        assert tags["fused"] is False and tags["batch"] == 1

    def test_configs_source_with_tags(self):
        config = CrossbarConfig(tiles=4)
        job = (Study().configs((config, {"variant": "small"}))
               .networks(tiny_cnn()).compile())[0]
        assert job.system == "crossbar"
        assert job.config is config
        assert job.tags_dict["variant"] == "small"

    def test_batches_and_fusion_axes(self):
        jobs = (Study().systems("albireo").networks("tiny")
                .fusion(False, True).batches(1, 4).compile())
        assert [(job.fused, job.network.entries[0].layer.n)
                for job in jobs] \
            == [(False, 1), (False, 4), (True, 1), (True, 4)]

    def test_transform_hook_sees_point(self):
        seen = []

        def widen(config, point):
            seen.append((point.system, point.fused, point.batch))
            return dataclasses.replace(config, clusters=point.batch)

        jobs = (Study().systems("albireo").networks("tiny")
                .batches(2, 4).transform(widen).compile())
        assert [job.config.clusters for job in jobs] == [2, 4]
        assert seen == [("albireo", False, 2), ("albireo", False, 4)]

    def test_grid_key_applies_where_supported(self):
        """A key missing from one system's config applies to the others
        and leaves that system's config untouched."""
        jobs = (Study().systems("albireo", "crossbar").networks("tiny")
                .grid(clusters=(4,)).compile())
        assert jobs[0].config.clusters == 4          # albireo has it
        assert not hasattr(jobs[1].config, "clusters")  # crossbar doesn't

    def test_grid_tags_only_applied_overrides(self):
        """A record never claims a grid coordinate its evaluation
        ignored: unsupported keys are untagged, and points that collapse
        to the same config for a source are emitted once."""
        jobs = (Study().systems("albireo", "crossbar").networks("tiny")
                .grid(clusters=(4, 8)).compile())
        by_system = {}
        for job in jobs:
            by_system.setdefault(job.system, []).append(job)
        # Albireo sweeps the axis; both points tagged with their value.
        assert [job.tags_dict["clusters"]
                for job in by_system["albireo"]] == [4, 8]
        # Crossbar has no `clusters` field: one job, no misleading tag.
        assert len(by_system["crossbar"]) == 1
        assert "clusters" not in by_system["crossbar"][0].tags_dict

    def test_partially_supported_grid_keeps_distinct_points(self):
        """Points still differing in a supported key are all kept for a
        source that ignores the other axis."""
        jobs = (Study().systems("albireo", "crossbar").networks("tiny")
                .grid(clusters=(4, 8), tiles=(2, 4)).compile())
        albireo = [job for job in jobs if job.system == "albireo"]
        crossbar = [job for job in jobs if job.system == "crossbar"]
        # Albireo ignores `tiles`: the 2x2 grid collapses to 2 points.
        assert [job.config.clusters for job in albireo] == [4, 8]
        # Crossbar ignores `clusters`: collapses to the 2 tiles points.
        assert [job.config.tiles for job in crossbar] == [2, 4]
        assert all("clusters" not in job.tags_dict for job in crossbar)

    def test_compile_is_pure_and_repeatable(self):
        study = Study().systems("albireo").networks("tiny")
        first, second = study.compile(), study.compile()
        assert [job.key for job in first] == [job.key for job in second]


class TestStudyValidation:
    def test_unknown_system_lists_options(self):
        with pytest.raises(SpecError, match="albireo"):
            Study().systems("warpdrive")

    def test_unknown_network_lists_options(self):
        with pytest.raises(WorkloadError, match="resnet18"):
            Study().networks("imagenet99")

    def test_unknown_scenario_rejected(self):
        from repro.exceptions import CalibrationError

        with pytest.raises(CalibrationError, match="conservative"):
            Study().scenarios("optimistic")

    def test_empty_study_rejected(self):
        with pytest.raises(SpecError, match="systems or configs"):
            Study().networks("tiny").compile()
        with pytest.raises(SpecError, match="networks"):
            Study().systems("albireo").compile()

    def test_grid_key_matching_no_system_rejected(self):
        with pytest.raises(SpecError, match="starships"):
            (Study().systems("albireo").networks("tiny")
             .grid(starships=(1,)).compile())

    def test_unregistered_config_type_rejected(self):
        with pytest.raises(SpecError, match="infer"):
            Study().configs(object())


class TestStudySpec:
    SPEC = {
        "name": "spec-study",
        "systems": ["albireo", "crossbar"],
        "networks": ["tiny"],
        "scenarios": ["conservative"],
        "grid": {"global_buffer_kib": [512, 1024]},
        "options": {"use_mapper": False},
    }

    def test_from_dict_compiles(self):
        study = Study.from_dict(self.SPEC)
        assert study.name == "spec-study"
        assert len(study.compile()) == 4

    def test_from_dict_round_trips(self):
        study = Study.from_dict(self.SPEC)
        assert Study.from_dict(study.to_dict()).to_dict() \
            == study.to_dict()

    def test_programmatic_study_has_no_dict_form(self):
        with pytest.raises(SpecError, match="programmatically"):
            Study().systems("albireo").to_dict()

    def test_from_json_text_and_path(self, tmp_path):
        text = json.dumps(self.SPEC)
        assert len(Study.from_json(text).compile()) == 4
        path = tmp_path / "spec.json"
        path.write_text(text)
        assert len(Study.from_json(str(path)).compile()) == 4

    def test_from_json_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            Study.from_json("{not json")

    def test_unknown_spec_key_lists_options(self):
        with pytest.raises(SpecError, match="grid"):
            Study.from_dict({"systems": ["albireo"], "networks": ["tiny"],
                             "gird": {}})

    def test_unknown_option_key_rejected(self):
        with pytest.raises(SpecError, match="use_mapper"):
            Study.from_dict({"systems": ["albireo"], "networks": ["tiny"],
                             "options": {"turbo": True}})

    def test_string_option_values_rejected(self):
        """The JSON string "false" must error, not silently enable."""
        with pytest.raises(SpecError, match="boolean"):
            Study.from_dict({"systems": ["albireo"], "networks": ["tiny"],
                             "options": {"use_mapper": "false"}})
        with pytest.raises(SpecError, match="boolean"):
            Study.from_dict({"systems": ["albireo"], "networks": ["tiny"],
                             "fused": ["false"]})

    def test_unknown_system_in_spec_lists_options(self):
        with pytest.raises(SpecError, match="albireo"):
            Study.from_dict({"systems": ["warpdrive"],
                             "networks": ["tiny"]})

    def test_unknown_network_in_spec_lists_options(self):
        with pytest.raises(WorkloadError, match="tiny"):
            Study.from_dict({"systems": ["albireo"],
                             "networks": ["hal9000"]})

    def test_spec_batches_and_fused(self):
        study = Study.from_dict({
            "systems": ["albireo"], "networks": ["tiny"],
            "batches": [1, 2], "fused": [False, True],
        })
        assert len(study.compile()) == 4


class TestStudyExecution:
    def test_run_returns_tagged_records(self):
        results = (Study().systems("crossbar").networks("tiny")
                   .run())
        assert len(results) == 1
        record = results[0]
        assert record.tags["system"] == "crossbar"
        assert record.evaluation is not None
        assert record.metrics["energy_per_mac_pj"] > 0

    def test_mixed_system_grid_parallel_cached_bit_identical(self, tmp_path):
        """The acceptance lattice: albireo + crossbar + wdm_delay in one
        grid, parallel + cached results bit-identical to serial."""
        study = (Study()
                 .systems("albireo", "crossbar", "wdm_delay")
                 .networks("tiny")
                 .scenarios("conservative", "aggressive")
                 .grid(global_buffer_kib=(512, 1024)))
        serial = study.run(workers=1)
        parallel = study.run(workers=2, cache=str(tmp_path / "cache"))
        assert len(serial) == 12
        for left, right in zip(serial, parallel):
            assert left.tags == right.tags
            assert network_evaluation_to_dict(left.evaluation) \
                == network_evaluation_to_dict(right.evaluation)
        # And a warm re-run replays everything from the cache.
        from repro.engine import EvaluationCache

        cache = EvaluationCache(str(tmp_path / "cache"))
        warm = study.run(workers=2, cache=cache)
        assert cache.stats["results"].hits == 12
        for left, right in zip(serial, warm):
            assert network_evaluation_to_dict(left.evaluation) \
                == network_evaluation_to_dict(right.evaluation)

    def test_report_over_live_run(self):
        results = (Study().systems("crossbar").networks("tiny").run())
        report = results.report(mark_pareto=True)
        assert "crossbar" in report and "pJ/MAC" in report


class TestPrebuiltStudies:
    def test_memory_study_matches_deprecated_sweep(self):
        network = tiny_cnn()
        config = AlbireoConfig()
        study_results = memory_study(
            network, config, (CONSERVATIVE,), batch_sizes=(1, 2)).run()
        from repro.systems.dse import memory_points, sweep_memory_options

        with pytest.warns(DeprecationWarning, match="repro.api"):
            shim_points = sweep_memory_options(
                network, config, (CONSERVATIVE,), batch_sizes=(1, 2))
        study_points = memory_points(study_results)
        assert [(p.scenario.name, p.batch, p.fused) for p in study_points] \
            == [(p.scenario.name, p.batch, p.fused) for p in shim_points]
        for mine, theirs in zip(study_points, shim_points):
            assert network_evaluation_to_dict(mine.evaluation) \
                == network_evaluation_to_dict(theirs.evaluation)

    def test_reuse_study_matches_deprecated_sweep(self):
        network = tiny_cnn()
        config = AlbireoConfig(scenario=AGGRESSIVE)
        study_results = reuse_study(
            network, config, output_reuse_values=(3,),
            input_reuse_values=(9,)).run()
        from repro.systems.dse import reuse_points, sweep_reuse_factors

        with pytest.warns(DeprecationWarning, match="repro.api"):
            shim_points = sweep_reuse_factors(
                network, config, output_reuse_values=(3,),
                input_reuse_values=(9,))
        for mine, theirs in zip(reuse_points(study_results), shim_points):
            assert (mine.variant, mine.output_reuse, mine.input_reuse,
                    mine.weight_lanes) \
                == (theirs.variant, theirs.output_reuse, theirs.input_reuse,
                    theirs.weight_lanes)
            assert network_evaluation_to_dict(mine.evaluation) \
                == network_evaluation_to_dict(theirs.evaluation)

    def test_config_study_deprecated_shim(self):
        network = tiny_cnn()
        configs = [CrossbarConfig(tiles=2), CrossbarConfig(tiles=4)]
        from repro.systems.dse import sweep_configurations

        with pytest.warns(DeprecationWarning, match="repro.api"):
            points = sweep_configurations(network, configs)
        assert [config for config, _ in points] == configs
        direct = config_study(network, configs).run()
        for (_, evaluation), record in zip(points, direct):
            assert network_evaluation_to_dict(evaluation) \
                == network_evaluation_to_dict(record.evaluation)

    def test_comparison_study_covers_lattice(self):
        study = comparison_study((tiny_cnn(),), ("albireo", "crossbar"),
                                 CONSERVATIVE)
        jobs = study.compile()
        assert [job.system for job in jobs] == ["albireo", "crossbar"]
        assert all(job.config.scenario.name == "conservative"
                   for job in jobs)


class TestComparisonShell:
    def test_duplicate_system_names_yield_duplicate_rows(self):
        """Repeated names in the request still produce one row each (the
        pre-facade per-instance behavior), not an ambiguity error."""
        from repro.experiments import system_comparison

        result = system_comparison.run(networks=(tiny_cnn(),),
                                       systems=["albireo", "albireo"])
        assert [row.system for row in result.rows] \
            == ["albireo", "albireo"]

    def test_duplicate_network_names_pair_positionally(self):
        from repro.experiments import system_comparison

        result = system_comparison.run(
            networks=(tiny_cnn(), tiny_cnn(batch=2)),  # same .name
            systems=["crossbar"])
        assert len(result.rows) == 2
        first, second = result.rows
        assert first.evaluation.total_macs \
            < second.evaluation.total_macs  # batch-2 twin came second


class TestExperimentsStayWarningFree:
    def test_fig4_fig5_do_not_emit_deprecation_warnings(self):
        """The rewired experiments go through the Study facade directly —
        only the legacy dse shims warn."""
        from repro.experiments import fig4_memory, fig5_reuse

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            fig4_memory.run(network=tiny_cnn(), scenarios=(CONSERVATIVE,),
                            batch_sizes=(1,))
            fig5_reuse.run(network=tiny_cnn(),
                           output_reuse_values=(3,),
                           input_reuse_values=(9,))


class TestStudyOnRecord:
    """Study.run(on_record=...): the record-level streaming seam —
    one call per point, with live done/total counters, on every path."""

    def _study(self):
        return (Study()
                .systems("crossbar")
                .networks("tiny")
                .scenarios("conservative")
                .grid(global_buffer_kib=(256, 512, 1024)))

    def test_streams_every_record_with_counters(self):
        seen = []
        results = self._study().run(
            on_record=lambda record, done, total:
                seen.append((record, done, total)))
        assert [done for _, done, _ in seen] == [1, 2, 3]
        assert all(total == 3 for _, _, total in seen)
        # The streamed records are the run's records (serial execution
        # completes in input order).
        assert [record for record, _, _ in seen] == list(results)

    def test_streams_on_the_parallel_path(self):
        seen = []
        results = self._study().run(
            workers=2,
            on_record=lambda record, done, total:
                seen.append(record))
        assert sorted(record.tags["global_buffer_kib"]
                      for record in seen) == [256, 512, 1024]
        assert len(seen) == len(results)

    def test_streams_failed_records_under_skip_policy(self):
        from repro.engine import FailurePolicy

        seen = []
        results = self._study().run(
            failure_policy=FailurePolicy(on_error="skip"),
            inject=[{"match": "crossbar:*:job", "action": "raise",
                     "attempt": -1}],
            on_record=lambda record, done, total: seen.append(record))
        assert len(seen) == 3
        assert all(record.failed for record in seen)
        assert len(results.failures) == 3
