"""Tests for unit constants and conversion helpers."""

import math

import pytest

from repro import units


class TestEnergyUnits:
    def test_femtojoule_is_thousandth_of_picojoule(self):
        assert units.FEMTOJOULE == pytest.approx(1e-3)

    def test_joule_chain(self):
        assert units.JOULE == pytest.approx(1e12 * units.PICOJOULE)
        assert units.MILLIJOULE == pytest.approx(1e-3 * units.JOULE)
        assert units.MICROJOULE == pytest.approx(1e-6 * units.JOULE)
        assert units.NANOJOULE == pytest.approx(1e-9 * units.JOULE)

    def test_power_times_time_is_energy(self):
        # 1 mW for 1 ns is 1 pJ; the base units make this product direct.
        assert units.MILLIWATT * units.NANOSECOND == units.PICOJOULE

    def test_watt_times_second(self):
        assert units.WATT * units.SECOND == pytest.approx(units.JOULE)


class TestDataUnits:
    def test_byte(self):
        assert units.BYTE == 8

    def test_binary_prefixes(self):
        assert units.KIBIBYTE == 1024 * 8
        assert units.MEBIBYTE == 1024 * units.KIBIBYTE
        assert units.GIBIBYTE == 1024 * units.MEBIBYTE


class TestDecibels:
    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert units.db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_about_two(self):
        assert units.db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_roundtrip(self):
        for ratio in (0.1, 0.5, 1.0, 2.0, 100.0):
            assert units.db_to_linear(
                units.linear_to_db(ratio)) == pytest.approx(ratio)

    def test_negative_db_attenuates(self):
        assert units.db_to_linear(-3.0) < 1.0

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)


class TestFrequency:
    def test_one_ghz_is_one_ns(self):
        assert units.ghz_to_cycle_ns(1.0) == pytest.approx(1.0)

    def test_five_ghz(self):
        assert units.ghz_to_cycle_ns(5.0) == pytest.approx(0.2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.ghz_to_cycle_ns(0.0)


class TestFormatting:
    def test_format_energy_femtojoules(self):
        assert units.format_energy(0.0005) == "0.500 fJ"

    def test_format_energy_picojoules(self):
        assert units.format_energy(2.5) == "2.500 pJ"

    def test_format_energy_nanojoules(self):
        assert "nJ" in units.format_energy(1234.5)

    def test_format_energy_microjoules(self):
        assert "uJ" in units.format_energy(2e6)

    def test_format_energy_millijoules(self):
        assert "mJ" in units.format_energy(3e9)

    def test_format_bits(self):
        assert units.format_bits(16 * units.KIBIBYTE) == "16.0 KiB"
        assert units.format_bits(32) == "4.0 B"
        assert "MiB" in units.format_bits(2 * units.MEBIBYTE)
        assert "GiB" in units.format_bits(3 * units.GIBIBYTE)

    def test_format_count(self):
        assert units.format_count(999) == "999"
        assert units.format_count(1500) == "1.50K"
        assert units.format_count(2_000_000) == "2.00M"
        assert units.format_count(1_820_000_000) == "1.82G"
