"""Tests for the (deprecated) design-space exploration drivers.

The ``sweep_*`` shims intentionally warn — these tests pin their legacy
behavior, so the deprecation noise is silenced module-wide (the warning
itself is asserted in ``tests/test_api_study.py``).
"""

import pytest

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

from repro.energy import AGGRESSIVE, CONSERVATIVE
from repro.systems import AlbireoConfig, sweep_memory_options, \
    sweep_reuse_factors
from repro.systems.dse import _next_power_of_two_kib
from repro.workloads import tiny_cnn


@pytest.fixture(scope="module")
def small_network():
    return tiny_cnn()


class TestReuseSweep:
    def test_grid_complete(self, small_network):
        points = sweep_reuse_factors(
            small_network, AlbireoConfig(scenario=AGGRESSIVE),
            output_reuse_values=(3, 9), input_reuse_values=(9, 27),
            weight_lane_variants=(("Original", 1),),
        )
        assert len(points) == 4
        combos = {(p.output_reuse, p.input_reuse) for p in points}
        assert combos == {(3, 9), (3, 27), (9, 9), (9, 27)}

    def test_dram_excluded_by_default(self, small_network):
        points = sweep_reuse_factors(
            small_network, AlbireoConfig(scenario=AGGRESSIVE),
            output_reuse_values=(3,), input_reuse_values=(9,),
            weight_lane_variants=(("Original", 1),),
        )
        entries = points[0].evaluation.total_energy.entries()
        assert all(component != "DRAM" for component, _ in entries)

    def test_dram_included_on_request(self, small_network):
        points = sweep_reuse_factors(
            small_network, AlbireoConfig(scenario=AGGRESSIVE),
            output_reuse_values=(3,), input_reuse_values=(9,),
            weight_lane_variants=(("Original", 1),),
            include_dram=True,
        )
        entries = points[0].evaluation.total_energy.entries()
        assert any(component == "DRAM" for component, _ in entries)

    def test_more_or_reduces_energy(self, small_network):
        points = sweep_reuse_factors(
            small_network, AlbireoConfig(scenario=AGGRESSIVE),
            output_reuse_values=(3, 9), input_reuse_values=(9,),
            weight_lane_variants=(("Original", 1),),
        )
        by_or = {p.output_reuse: p.energy_per_mac_pj for p in points}
        assert by_or[9] < by_or[3]

    def test_weight_lanes_reduce_energy(self, small_network):
        points = sweep_reuse_factors(
            small_network, AlbireoConfig(scenario=AGGRESSIVE),
            output_reuse_values=(3,), input_reuse_values=(9,),
            weight_lane_variants=(("Original", 1), ("MWR", 3)),
        )
        by_variant = {p.variant: p.energy_per_mac_pj for p in points}
        assert by_variant["MWR"] < by_variant["Original"]


class TestMemorySweep:
    def test_grid_complete(self, small_network):
        points = sweep_memory_options(
            small_network, AlbireoConfig(),
            scenarios=[AGGRESSIVE], batch_sizes=(1, 4),
            fusion_options=(False, True),
        )
        assert len(points) == 4
        labels = {p.label for p in points}
        assert len(labels) == 4

    def test_batching_reduces_energy_per_mac(self, small_network):
        points = sweep_memory_options(
            small_network, AlbireoConfig(),
            scenarios=[AGGRESSIVE], batch_sizes=(1, 4),
            fusion_options=(False,),
        )
        by_batch = {p.batch: p.energy_per_mac_pj for p in points}
        assert by_batch[4] < by_batch[1]

    def test_fusion_reduces_energy_per_mac(self, small_network):
        points = sweep_memory_options(
            small_network, AlbireoConfig(),
            scenarios=[AGGRESSIVE], batch_sizes=(1,),
            fusion_options=(False, True),
        )
        by_fused = {p.fused: p.energy_per_mac_pj for p in points}
        assert by_fused[True] < by_fused[False]

    def test_fused_buffer_auto_sizing(self):
        from repro.workloads import resnet18

        network = resnet18()
        points = sweep_memory_options(
            network, AlbireoConfig(global_buffer_kib=512),
            scenarios=[AGGRESSIVE], batch_sizes=(1,),
            fusion_options=(True,),
        )
        # Fusion needed ~1 MB resident; the buffer must have grown.
        assert points, "sweep returned nothing"

    def test_conservative_less_sensitive_to_dram(self, small_network):
        both = sweep_memory_options(
            small_network, AlbireoConfig(),
            scenarios=[CONSERVATIVE, AGGRESSIVE], batch_sizes=(1, 4),
            fusion_options=(False,),
        )
        def reduction(name):
            pts = [p for p in both if p.scenario.name == name]
            by_batch = {p.batch: p.energy_per_mac_pj for p in pts}
            return 1 - by_batch[4] / by_batch[1]

        assert reduction("aggressive") > reduction("conservative")


class TestHelpers:
    def test_next_power_of_two(self):
        assert _next_power_of_two_kib(8192 * 100) == 128
        assert _next_power_of_two_kib(8192) == 1
        assert _next_power_of_two_kib(0) == 1

    def test_next_power_of_two_rounds_up_at_boundaries(self):
        """Regression: footprints just above a KiB boundary must round UP.

        The original ``int(bits / 8192)`` floored, so a fused-buffer
        footprint of e.g. 1 KiB + 1 bit sized a 1 KiB buffer that could
        not hold the resident tensors.
        """
        assert _next_power_of_two_kib(8193) == 2
        assert _next_power_of_two_kib(2 * 8192 + 1) == 4
        assert _next_power_of_two_kib(4 * 8192 + 1) == 8
        # Just below a boundary still fits in the boundary's power.
        assert _next_power_of_two_kib(2 * 8192 - 1) == 2
