"""Tests for the shared SearchContext and the mapper's hot-path protocols.

Covers the context construction cache, the cheap early capacity check
(which must agree exactly with the analyzer's CapacityError behaviour),
the validate-once protocol, and the search-efficiency counters.
"""

import pickle

import pytest

from repro.exceptions import CapacityError, MappingError
from repro.mapping import Mapper
from repro.mapping.analysis import NestAnalyzer, SearchContext, analyze
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
)
from repro.systems.albireo import (
    AlbireoConfig,
    AlbireoSystem,
    albireo_constraints,
    albireo_mapping_candidates,
)
from repro.workloads import ConvLayer
from repro.workloads.dims import Dim

LAYER = ConvLayer(name="ctx-conv", m=64, c=64, p=14, q=14, r=3, s=3)


@pytest.fixture(scope="module")
def system():
    return AlbireoSystem(AlbireoConfig())


class TestContextConstruction:
    def test_for_layer_reuses_instances(self, system):
        a = SearchContext.for_layer(system.architecture, LAYER)
        b = SearchContext.for_layer(system.architecture, LAYER)
        assert a is b

    def test_layers_sharing_geometry_share_contexts(self, system):
        other = ConvLayer(name="other", m=32, c=16, p=7, q=7, r=3, s=3)
        a = SearchContext.for_layer(system.architecture, LAYER)
        b = SearchContext.for_layer(system.architecture, other)
        assert a is b  # same strides and datatype widths

    def test_different_strides_get_distinct_contexts(self, system):
        strided = ConvLayer(name="strided", m=32, c=16, p=7, q=7, r=3, s=3,
                            stride_h=2, stride_w=2)
        a = SearchContext.for_layer(system.architecture, LAYER)
        b = SearchContext.for_layer(system.architecture, strided)
        assert a is not b

    def test_incompatible_context_rejected(self, system):
        strided = ConvLayer(name="strided", m=32, c=16, p=7, q=7, r=3, s=3,
                            stride_h=2, stride_w=2)
        context = SearchContext.for_layer(system.architecture, strided)
        mapping = system.reference_mapping(LAYER)
        with pytest.raises(MappingError):
            NestAnalyzer(system.architecture, LAYER, mapping,
                         context=context)

    def test_context_analysis_matches_fresh_analysis(self, system):
        context = SearchContext.for_layer(system.architecture, LAYER)
        for mapping in albireo_mapping_candidates(system.config, LAYER):
            fresh = analyze(system.architecture, LAYER, mapping)
            shared = analyze(system.architecture, LAYER, mapping,
                             context=context)
            assert fresh.storage["DRAM"].reads \
                == shared.storage["DRAM"].reads
            assert fresh.conversions == shared.conversions
            assert fresh.occupancy_bits == shared.occupancy_bits


class TestEarlyCapacityCheck:
    def _over_capacity_mapping(self):
        """A heavily padded single GlobalBuffer tile: over its capacity.

        512 x 512 x 3 x 3 weights alone need ~18.9 Mbit against the 8.6
        Mbit (1 MiB) default buffer.
        """
        return Mapping(
            levels=(
                LevelMapping("DRAM", ()),
                LevelMapping("GlobalBuffer", (
                    TemporalLoop(Dim.M, 512), TemporalLoop(Dim.C, 512),
                    TemporalLoop(Dim.P, 14), TemporalLoop(Dim.Q, 14),
                    TemporalLoop(Dim.R, 3), TemporalLoop(Dim.S, 3))),
                LevelMapping("AEIntegrator", ()),
            ),
            spatials=tuple(
                FanoutMapping(name, {}) for name in
                ("clusters", "weight_lanes", "star_coupler",
                 "window_sites", "wavelengths")),
        )

    def test_agrees_with_analyzer_rejection(self, system):
        context = SearchContext.for_layer(system.architecture, LAYER)
        mapping = self._over_capacity_mapping()
        assert context.capacity_violation(mapping) == "GlobalBuffer"
        with pytest.raises(CapacityError):
            analyze(system.architecture, LAYER, mapping)

    def test_agrees_with_analyzer_acceptance(self, system):
        context = SearchContext.for_layer(system.architecture, LAYER)
        for mapping in albireo_mapping_candidates(system.config, LAYER):
            violation = context.capacity_violation(mapping)
            if violation is None:
                analyze(system.architecture, LAYER, mapping)  # must not raise
            else:
                with pytest.raises(CapacityError):
                    analyze(system.architecture, LAYER, mapping)


class TestValidateOnceProtocol:
    def test_candidates_validated_exactly_once(self, system, monkeypatch):
        """With a context-aware cost fn, each candidate validates once."""
        calls = []
        original = Mapping.validate

        def counting_validate(self, architecture, layer):
            calls.append(self)
            return original(self, architecture, layer)

        monkeypatch.setattr(Mapping, "validate", counting_validate)
        mapper = Mapper(
            system.architecture,
            cost_fn=system.model.energy_cost_fn(LAYER),
            constraints=albireo_constraints(system.config, LAYER),
        )
        result = mapper.search(LAYER, max_evaluations=40, seed=0)
        assert result.valid > 0
        # One validate call per evaluated candidate — none from inside the
        # analyzer (the pre-overhaul code validated twice per candidate).
        assert len(calls) == result.evaluated

    def test_pickled_mapping_drops_validation_memo(self, system):
        mapping = system.reference_mapping(LAYER)
        mapping.validate(system.architecture, LAYER)
        clone = pickle.loads(pickle.dumps(mapping))
        assert "_validated_cache" not in clone.__dict__
        assert clone.padded_dims() == mapping.padded_dims()


class TestCanonicalKeyConsistency:
    def test_spec_keys_equal_materialized_canonical_keys(self, system):
        """The mapper's spec-side key format must track Mapping.canonical_key.

        Dedup against seeded candidates compares keys built from candidate
        specs (before materialization) with keys from Mapping objects; if
        the two formats ever drift apart, duplicates get priced twice and
        nothing else fails.  This pins their equivalence.
        """
        import random

        from repro.mapping.mapper import _materialize

        mapper = Mapper(
            system.architecture,
            cost_fn=system.model.energy_cost_fn(LAYER),
            constraints=albireo_constraints(system.config, LAYER),
        )
        seen = set()
        specs, _ = mapper._generate_specs(LAYER, random.Random(0), seen, 60)
        assert specs
        for spec in specs:
            assert _materialize(spec).canonical_key() in seen


class TestSearchCounters:
    def test_duplicates_are_skipped_and_counted(self, system):
        """A tiny problem collapses many specs onto the same schedule."""
        tiny = ConvLayer(name="tiny", m=2, c=2, p=1, q=1)
        result = system.search_mapping(tiny, max_evaluations=2000, seed=0)
        assert result.deduplicated > 0
        assert result.valid > 0

    def test_early_pruning_counts_capacity_rejections(self):
        """A small global buffer makes many candidates prunable."""
        system = AlbireoSystem(AlbireoConfig(global_buffer_kib=16))
        layer = ConvLayer(name="big", m=96, c=96, p=14, q=14, r=3, s=3)
        result = system.search_mapping(layer, max_evaluations=150, seed=0)
        assert result.pruned_early > 0
        # Pruned candidates are evaluated-but-invalid, exactly as the full
        # analysis would have classified them.
        assert result.valid + result.pruned_early <= result.evaluated

    def test_pruning_never_changes_the_outcome(self, system):
        """Search with and without the context fast path agrees.

        A cost function without ``supports_context`` takes the legacy
        path (validate + full analysis, no pruning); the result must
        match the accelerated path bit-for-bit.
        """
        legacy_fn = system.model.energy_cost_fn(LAYER)
        legacy_fn.supports_context = False
        fast = Mapper(
            system.architecture,
            cost_fn=system.model.energy_cost_fn(LAYER),
            constraints=albireo_constraints(system.config, LAYER),
        ).search(LAYER, max_evaluations=80, seed=3)
        legacy = Mapper(
            system.architecture,
            cost_fn=legacy_fn,
            constraints=albireo_constraints(system.config, LAYER),
        ).search(LAYER, max_evaluations=80, seed=3)
        assert fast.cost == legacy.cost
        assert fast.mapping == legacy.mapping
        assert fast.evaluated == legacy.evaluated
        assert fast.valid == legacy.valid