"""Tests for the extended photonic component set (SOA, tuner, microcomb,
optical links)."""

import pytest

from repro.energy import estimate
from repro.exceptions import CalibrationError


class TestSoa:
    def test_energy_is_bias_over_rate(self):
        entry = estimate("soa", "s", {"gain_db": 10.0, "bias_mw": 50.0,
                                      "symbol_rate_gsps": 5.0})
        assert entry.energy("transfer") == pytest.approx(10.0)

    def test_static_power_recorded(self):
        entry = estimate("soa", "s", {"gain_db": 10.0, "bias_mw": 50.0})
        assert entry.static_power_mw == 50.0

    def test_rejects_negative_gain(self):
        with pytest.raises(CalibrationError):
            estimate("soa", "s", {"gain_db": -1.0, "bias_mw": 50.0})

    def test_rejects_zero_bias(self):
        with pytest.raises(CalibrationError):
            estimate("soa", "s", {"gain_db": 10.0, "bias_mw": 0.0})


class TestThermalTuner:
    def test_hold_energy(self):
        entry = estimate("thermal_tuner", "t", {"power_mw": 0.02,
                                                "symbol_rate_gsps": 5.0})
        assert entry.energy("hold") == pytest.approx(0.004)

    def test_zero_power_athermal(self):
        entry = estimate("thermal_tuner", "t", {"power_mw": 0.0})
        assert entry.energy("hold") == 0.0
        assert entry.static_power_mw == 0.0

    def test_rejects_negative(self):
        with pytest.raises(CalibrationError):
            estimate("thermal_tuner", "t", {"power_mw": -0.1})


class TestMicrocomb:
    def _comb(self, **overrides):
        attributes = {"lines": 5, "line_power_mw": 1.0,
                      "conversion_efficiency": 0.2,
                      "symbol_rate_gsps": 5.0}
        attributes.update(overrides)
        return estimate("microcomb", "c", attributes)

    def test_pump_power(self):
        # 5 lines x 1 mW / 0.2 = 25 mW pump; /5 GS/s = 5 pJ/symbol.
        entry = self._comb()
        assert entry.energy("mac") == pytest.approx(5.0)
        assert entry.static_power_mw == pytest.approx(25.0)

    def test_more_lines_more_pump(self):
        assert self._comb(lines=10).energy("mac") \
            == pytest.approx(2 * self._comb().energy("mac"))

    def test_rejects_bad_efficiency(self):
        with pytest.raises(CalibrationError):
            self._comb(conversion_efficiency=0.0)
        with pytest.raises(CalibrationError):
            self._comb(conversion_efficiency=1.5)

    def test_rejects_bad_lines(self):
        with pytest.raises(CalibrationError):
            self._comb(lines=0)


class TestOpticalLink:
    def test_per_element_energy(self):
        entry = estimate("optical_link", "l", {"energy_pj_per_bit": 1.5,
                                               "width_bits": 8})
        assert entry.energy("convert") == pytest.approx(12.0)

    def test_rejects_negative(self):
        with pytest.raises(CalibrationError):
            estimate("optical_link", "l", {"energy_pj_per_bit": -1.0})
