"""Property-based tests (hypothesis) for the core invariants.

These exercise the engine on randomized layers and mappings, checking the
conservation laws and bounds any correct Timeloop-style analysis must obey
— the strongest defense against silent access-count bugs.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mapping import FanoutMapping, LevelMapping, Mapping, TemporalLoop
from repro.mapping.analysis import analyze
from repro.mapping.factorization import (
    balanced_split,
    ceil_div,
    divisors,
    factor_splits,
    tile_candidates,
)
from repro.mapping.mapper import _largest_fitting_factor
from repro.systems import AlbireoConfig, AlbireoSystem
from repro.systems.albireo import albireo_reference_mapping, \
    build_albireo_architecture
from repro.workloads import ConvLayer, DataSpace
from repro.workloads.dataspace import dataspace_tile_size
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

dims_strategy = st.fixed_dictionaries({
    "m": st.integers(1, 32),
    "c": st.integers(1, 32),
    "p": st.integers(1, 16),
    "q": st.integers(1, 16),
    "r": st.integers(1, 5),
    "s": st.integers(1, 5),
    "n": st.integers(1, 4),
})


@st.composite
def layers(draw):
    shape = draw(dims_strategy)
    stride_h = draw(st.integers(1, 3))
    stride_w = draw(st.integers(1, 3))
    return ConvLayer(name="prop", stride_h=stride_h, stride_w=stride_w,
                     **shape)


@st.composite
def flat_mappings(draw, layer):
    """A random two-level (DRAM/GB) mapping covering ``layer`` exactly."""
    dram_factors = {}
    gb_factors = {}
    for dim, size in layer.dims.items():
        split_at = draw(st.sampled_from(divisors(size)))
        dram_factors[dim] = size // split_at if size % split_at == 0 \
            else ceil_div(size, split_at)
        gb_factors[dim] = split_at
    order = draw(st.permutations(list(Dim)))
    dram_loops = tuple(TemporalLoop(d, dram_factors[d]) for d in order
                       if dram_factors[d] > 1)
    gb_loops = tuple(TemporalLoop(d, gb_factors[d]) for d in order
                     if gb_factors[d] > 1)
    return Mapping(levels=(LevelMapping("DRAM", dram_loops),
                           LevelMapping("GB", gb_loops)))


# ---------------------------------------------------------------------------
# Factorization properties
# ---------------------------------------------------------------------------

class TestFactorizationProperties:
    @given(st.integers(1, 2000))
    def test_divisors_all_divide_and_bracket(self, n):
        ds = divisors(n)
        assert ds[0] == 1 and ds[-1] == n
        assert all(n % d == 0 for d in ds)

    @given(st.integers(1, 200), st.integers(1, 4))
    def test_factor_splits_product(self, n, parts):
        for split in factor_splits(n, parts):
            assert math.prod(split) == n

    @given(st.integers(1, 500))
    def test_tile_candidates_cover_range(self, n):
        candidates = tile_candidates(n)
        assert 1 in candidates and n in candidates
        assert all(1 <= c <= n for c in candidates)

    @given(st.integers(1, 500), st.integers(1, 50))
    def test_largest_fitting_factor_bounds(self, size, cap):
        factor = _largest_fitting_factor(size, cap)
        assert 1 <= factor <= max(1, min(size, cap))
        # Never more steps than the full-cap split.
        assert ceil_div(size, factor) <= ceil_div(size, min(size, cap)) \
            or factor == min(size, cap)

    @given(st.integers(1, 1000), st.integers(1, 4))
    def test_balanced_split_covers(self, n, parts):
        assert math.prod(balanced_split(n, parts)) >= n


# ---------------------------------------------------------------------------
# Tile-size properties
# ---------------------------------------------------------------------------

class TestTileProperties:
    @given(dims_strategy)
    def test_tiles_bounded_by_tensor(self, shape):
        layer = ConvLayer(name="t", **shape)
        bounds = layer.dims
        assert dataspace_tile_size(W, bounds) == layer.weight_elements
        assert dataspace_tile_size(O, bounds) == layer.output_elements
        assert dataspace_tile_size(I, bounds, layer.strides) \
            == layer.input_elements

    @given(dims_strategy, st.integers(1, 3), st.integers(1, 3))
    def test_input_halo_monotone_in_stride(self, shape, s1, s2):
        assume(s1 <= s2)
        bounds = ConvLayer(name="t", **shape).dims
        small = dataspace_tile_size(I, bounds, (s1, s1))
        large = dataspace_tile_size(I, bounds, (s2, s2))
        assert small <= large

    @given(dims_strategy)
    def test_tile_monotone_in_bounds(self, shape):
        layer = ConvLayer(name="t", **shape)
        full = layer.dims
        half = {d: max(1, b // 2) for d, b in full.items()}
        for ds in (W, I, O):
            assert dataspace_tile_size(ds, half, layer.strides) \
                <= dataspace_tile_size(ds, full, layer.strides)


# ---------------------------------------------------------------------------
# Analysis conservation properties
# ---------------------------------------------------------------------------

class TestAnalysisProperties:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_conservation_laws(self, data):
        layer = data.draw(layers())
        mapping = data.draw(flat_mappings(layer))
        arch = _flat_arch()
        counts = analyze(arch, layer, mapping, check_capacity=False)
        gb, dram = counts.storage["GB"], counts.storage["DRAM"]
        padded = counts.padded_macs

        # Compute demand: each MAC reads one weight and one input from GB.
        assert gb.reads[W] == padded
        assert gb.reads[I] == padded
        # Fills never below the distinct-tensor lower bound (per-group).
        assert dram.reads[W] >= _grouped_weight_elements(layer)
        assert dram.reads[I] >= _grouped_input_lower_bound(layer)
        # Output updates at GB equal the MACs; writebacks to DRAM at least
        # the output tensor, writes conserve.
        assert gb.writes[O] == padded
        assert dram.writes[O] >= _grouped_output_elements(layer)
        # Utilization bounds.
        assert 0 < counts.padding_utilization <= 1.0
        # Cycle identity.
        assert counts.cycles * mapping.total_spatial_product == padded

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_rmw_reads_never_exceed_updates(self, data):
        layer = data.draw(layers())
        mapping = data.draw(flat_mappings(layer))
        counts = analyze(_flat_arch(), layer, mapping,
                         check_capacity=False)
        dram = counts.storage["DRAM"]
        assert dram.reads.get(O, 0.0) <= dram.writes.get(O, 0.0)


# ---------------------------------------------------------------------------
# Albireo end-to-end properties
# ---------------------------------------------------------------------------

class TestAlbireoProperties:
    @given(dims_strategy)
    @settings(max_examples=30, deadline=None)
    def test_reference_mapping_always_valid(self, shape):
        layer = ConvLayer(name="p", **shape)
        config = AlbireoConfig()
        arch = build_albireo_architecture(config)
        mapping = albireo_reference_mapping(config, layer)
        mapping.validate(arch, layer)  # must not raise

    @given(dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_evaluation_invariants(self, shape):
        layer = ConvLayer(name="p", **shape)
        system = AlbireoSystem(AlbireoConfig())
        evaluation = system.evaluate_layer(layer)
        assert evaluation.energy_pj > 0
        assert 0 < evaluation.utilization <= 1.0
        assert evaluation.cycles >= 1
        assert evaluation.energy_per_mac_pj > 0
        for value in evaluation.energy.entries().values():
            assert value >= 0

    @given(dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_albireo_analysis_passes_consistency_checker(self, shape):
        from repro.mapping.analysis import analyze
        from repro.validation import check_consistency

        layer = ConvLayer(name="p", **shape)
        system = AlbireoSystem(AlbireoConfig())
        target = system.analysis_layer(layer)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, target, mapping)
        assert check_consistency(system.architecture, target, counts) == []

    @given(dims_strategy)
    @settings(max_examples=15, deadline=None)
    def test_crossbar_analysis_passes_consistency_checker(self, shape):
        from repro.mapping.analysis import analyze
        from repro.systems import CrossbarConfig, CrossbarSystem
        from repro.validation import check_consistency

        layer = ConvLayer(name="p", **shape)
        system = CrossbarSystem(CrossbarConfig())
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        assert check_consistency(system.architecture, layer, counts) == []


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _flat_arch():
    from repro.arch import (Architecture, ComputeLevel, Domain,
                            StorageLevel)

    return Architecture(name="flat", nodes=(
        StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                     dataspaces={W, I, O}),
        StorageLevel(name="GB", component="sram", domain=Domain.DE,
                     capacity_bits=None, dataspaces={W, I, O}),
        ComputeLevel(name="mac", component="mac", domain=Domain.DE),
    ))


def _grouped_weight_elements(layer):
    return (layer.m // layer.groups) * (layer.c // layer.groups) \
        * layer.r * layer.s


def _grouped_output_elements(layer):
    return layer.n * (layer.m // layer.groups) * layer.p * layer.q


def _grouped_input_lower_bound(layer):
    """Distinct input elements a convolution actually touches (per group).

    When the stride exceeds the filter extent, rows/columns between
    windows are never read, so the touched count is ``P*R`` per axis, not
    the contiguous span ``(P-1)*stride + R``.
    """
    def touched(outputs, filter_extent, stride):
        if stride <= filter_extent:
            return (outputs - 1) * stride + filter_extent
        return outputs * filter_extent

    height = touched(layer.p, layer.r, layer.stride_h)
    width = touched(layer.q, layer.s, layer.stride_w)
    return layer.n * (layer.c // layer.groups) * height * width
