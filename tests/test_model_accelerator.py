"""Tests for the accelerator model: pricing, fusion elision, networks."""

import pytest

from repro.exceptions import CapacityError, SpecError
from repro.mapping import FanoutMapping, LevelMapping, Mapping, TemporalLoop
from repro.model import AcceleratorModel, NetworkOptions
from repro.workloads import ConvLayer, DataSpace, Network
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


@pytest.fixture
def model(converter_arch, toy_energy_table):
    return AcceleratorModel(converter_arch, toy_energy_table)


def _mapping(gb_loops):
    return Mapping(
        levels=(LevelMapping("DRAM", ()),
                LevelMapping("GB", tuple(gb_loops))),
        spatials=(FanoutMapping("array", {Dim.M: 8}),),
    )


LAYER = ConvLayer(name="t", m=8, c=4, p=2, q=2)
MAPPING = _mapping((TemporalLoop(Dim.C, 4), TemporalLoop(Dim.P, 2),
                    TemporalLoop(Dim.Q, 2)))


class TestConstruction:
    def test_missing_component_rejected(self, converter_arch):
        from repro.energy import EnergyTable

        with pytest.raises(SpecError) as excinfo:
            AcceleratorModel(converter_arch, EnergyTable())
        assert "dram" in str(excinfo.value)


class TestLayerEvaluation:
    def test_energy_matches_counts_times_prices(self, model,
                                                toy_energy_table):
        evaluation = model.evaluate_layer(LAYER, MAPPING)
        # Weight DAC: one conversion per MAC = 128 events.
        expected_wdac = 128 * toy_energy_table.energy("dac_w", "convert")
        assert evaluation.energy.component_total("WDAC") \
            == pytest.approx(expected_wdac)
        # Input DAC: multicast 8 ways -> 16 events.
        expected_idac = 16 * toy_energy_table.energy("dac_i", "convert")
        assert evaluation.energy.component_total("IDAC") \
            == pytest.approx(expected_idac)

    def test_cycles_and_utilization(self, model):
        evaluation = model.evaluate_layer(LAYER, MAPPING)
        assert evaluation.cycles == 16
        assert evaluation.utilization == 1.0
        assert evaluation.macs_per_cycle == 8.0

    def test_grouped_layer_scales(self, model):
        plain = model.evaluate_layer(LAYER, MAPPING)
        grouped_layer = ConvLayer(name="g", m=16, c=8, p=2, q=2, groups=2)
        grouped = model.evaluate_layer(grouped_layer, MAPPING)
        assert grouped.real_macs == 2 * plain.real_macs
        assert grouped.cycles == 2 * plain.cycles
        assert grouped.energy_pj == pytest.approx(2 * plain.energy_pj)

    def test_analysis_layer_reports_original_work(self, model):
        # Evaluate a 2x-expanded workload but report the original MACs.
        expanded = ConvLayer(name="t", m=8, c=4, p=2, q=4)
        mapping = _mapping((TemporalLoop(Dim.C, 4), TemporalLoop(Dim.P, 2),
                            TemporalLoop(Dim.Q, 4)))
        evaluation = model.evaluate_layer(LAYER, mapping,
                                          analysis_layer=expanded)
        assert evaluation.real_macs == LAYER.macs
        assert evaluation.padded_macs == expanded.macs
        assert evaluation.utilization == pytest.approx(0.5)


class TestFusionElision:
    def test_input_elision_removes_dram_reads(self, model):
        base = model.evaluate_layer(LAYER, MAPPING)
        fused = model.evaluate_layer(LAYER, MAPPING, input_from_dram=False)
        saved = base.energy_pj - fused.energy_pj
        assert saved > 0
        assert fused.energy.dataspace_total(I) \
            < base.energy.dataspace_total(I)

    def test_output_elision_removes_dram_writes(self, model):
        base = model.evaluate_layer(LAYER, MAPPING)
        fused = model.evaluate_layer(LAYER, MAPPING, output_to_dram=False)
        assert fused.energy_pj < base.energy_pj
        dram_o_base = [v for (c, d), v in base.energy.entries().items()
                       if c == "DRAM" and d == O]
        dram_o_fused = [v for (c, d), v in fused.energy.entries().items()
                        if c == "DRAM" and d == O]
        assert sum(dram_o_fused) < sum(dram_o_base) or not dram_o_fused

    def test_elision_never_negative(self, model):
        fused = model.evaluate_layer(LAYER, MAPPING,
                                     input_from_dram=False,
                                     output_to_dram=False)
        for value in fused.energy.entries().values():
            assert value >= 0


class TestNetworkEvaluation:
    def _network(self):
        layers = [ConvLayer(name=f"l{i}", m=8, c=4, p=2, q=2)
                  for i in range(3)]
        return Network.from_layers("net", layers)

    def test_unfused_network(self, model):
        provider = lambda layer: MAPPING  # noqa: E731
        evaluation = model.evaluate_network(self._network(), provider)
        assert evaluation.total_macs == 3 * LAYER.macs

    def test_fusion_reduces_energy(self, model):
        provider = lambda layer: MAPPING  # noqa: E731
        network = self._network()
        base = model.evaluate_network(network, provider)
        fused = model.evaluate_network(network, provider,
                                       NetworkOptions(fused=True))
        assert fused.energy_pj < base.energy_pj

    def test_fusion_capacity_guard(self, converter_arch, toy_energy_table):
        # Shrink the GB below the network's resident footprint.
        from repro.arch import Domain, StorageLevel

        tiny_gb = StorageLevel(name="GB", component="sram",
                               domain=Domain.DE, capacity_bits=256.0,
                               dataspaces={W, I, O})
        arch = converter_arch.replace_node("GB", tiny_gb)
        model = AcceleratorModel(arch, toy_energy_table)
        big_layer = ConvLayer(name="big", m=8, c=4, p=8, q=8)
        network = Network.from_layers("n", [big_layer, big_layer])
        provider = lambda layer: _mapping(  # noqa: E731
            (TemporalLoop(Dim.C, 4), TemporalLoop(Dim.P, 8),
             TemporalLoop(Dim.Q, 8)))
        with pytest.raises(CapacityError):
            model.evaluate_network(network, provider,
                                   NetworkOptions(fused=True))

    def test_fusion_capacity_check_can_be_disabled(self, converter_arch,
                                                   toy_energy_table):
        from repro.arch import Domain, StorageLevel

        tiny_gb = StorageLevel(name="GB", component="sram",
                               domain=Domain.DE, capacity_bits=3000.0,
                               dataspaces={W, I, O})
        arch = converter_arch.replace_node("GB", tiny_gb)
        model = AcceleratorModel(arch, toy_energy_table)
        network = Network.from_layers(
            "n", [ConvLayer(name="l", m=8, c=4, p=2, q=2)] * 2)
        provider = lambda layer: MAPPING  # noqa: E731
        evaluation = model.evaluate_network(
            network, provider,
            NetworkOptions(fused=True, check_fusion_capacity=False))
        assert evaluation.total_macs > 0


class TestArea:
    def test_area_positive_and_scaled_by_instances(self, model):
        areas = model.area_um2()
        assert areas["GB"] > 0
        # ADC is inside the 8-wide array in list position terms.
        assert all(value >= 0 for value in areas.values())

    def test_cost_fns(self, model):
        energy_cost = model.energy_cost_fn(LAYER)
        edp_cost = model.edp_cost_fn(LAYER)
        assert energy_cost(MAPPING) > 0
        assert edp_cost(MAPPING) > 0
