"""Tests for the Albireo system model."""

import pytest

from repro.energy import AGGRESSIVE, CONSERVATIVE
from repro.exceptions import SpecError
from repro.systems import (
    AlbireoConfig,
    AlbireoSystem,
    albireo_best_case_layer,
    build_albireo_architecture,
    build_albireo_energy_table,
)
from repro.systems.albireo import (
    albireo_analysis_layer,
    albireo_mapping_candidates,
    albireo_reference_mapping,
)
from repro.workloads import ConvLayer, DataSpace, dense_layer
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


class TestConfig:
    def test_default_peak(self):
        assert AlbireoConfig().peak_macs_per_cycle == 6480

    def test_or_decomposition_baseline(self):
        config = AlbireoConfig(output_reuse=3)
        assert config.or_spatial == 3 and config.or_temporal == 1

    def test_or_decomposition_nine(self):
        config = AlbireoConfig(output_reuse=9)
        assert config.or_spatial == 9 and config.or_temporal == 1

    def test_or_decomposition_fifteen(self):
        config = AlbireoConfig(output_reuse=15)
        assert config.or_spatial * config.or_temporal == 15
        assert config.or_spatial <= config.window_sites

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            AlbireoConfig(clusters=0)

    def test_with_scenario(self):
        config = AlbireoConfig().with_scenario(AGGRESSIVE)
        assert config.scenario is AGGRESSIVE

    def test_describe(self):
        assert "6480" in AlbireoConfig().describe()


class TestArchitecture:
    def test_structure(self):
        arch = build_albireo_architecture(AlbireoConfig())
        assert [s.name for s in arch.storage_levels] \
            == ["DRAM", "GlobalBuffer", "AEIntegrator"]
        assert arch.peak_parallelism == 6480
        assert {c.name for c in arch.converters} == {
            "WeightDAC", "InputDAC", "WeightModulator", "InputMZM",
            "OutputADC", "OutputPhotodiode"}

    def test_converter_domains(self):
        arch = build_albireo_architecture(AlbireoConfig())
        adc = arch.node_named("OutputADC")
        assert adc.conversion.label == "AE/DE"
        mzm = arch.node_named("InputMZM")
        assert mzm.conversion.label == "AE/AO"

    def test_star_coupler_multicasts_inputs(self):
        arch = build_albireo_architecture(AlbireoConfig())
        star = arch.node_named("star_coupler")
        assert I in star.multicast and W not in star.multicast

    def test_wavelengths_reduce_outputs(self):
        arch = build_albireo_architecture(AlbireoConfig())
        wavelengths = arch.node_named("wavelengths")
        assert O in wavelengths.reduction

    def test_or_limits_site_reduction(self):
        arch = build_albireo_architecture(AlbireoConfig(output_reuse=3))
        sites = arch.node_named("window_sites")
        assert sites.reduction_limit == 3

    def test_energy_table_covers_architecture(self):
        config = AlbireoConfig()
        arch = build_albireo_architecture(config)
        table = build_albireo_energy_table(config)
        for component in arch.component_names():
            assert component in table


class TestAnalysisLayer:
    def test_unstrided_untouched(self):
        layer = ConvLayer(name="c", m=4, c=4, p=8, q=8, r=3, s=3)
        assert albireo_analysis_layer(layer) is layer

    def test_column_stride_expanded(self):
        layer = ConvLayer(name="c", m=4, c=4, p=8, q=8, r=3, s=3,
                          stride_h=2, stride_w=2)
        expanded = albireo_analysis_layer(layer)
        assert expanded.q == 16 and expanded.stride_w == 1
        # Row stride remains: skipping rows is free.
        assert expanded.p == 8 and expanded.stride_h == 2

    def test_expanded_input_width_preserved(self):
        layer = ConvLayer(name="c", m=4, c=4, p=8, q=8, r=3, s=3,
                          stride_h=2, stride_w=2)
        expanded = albireo_analysis_layer(layer)
        assert abs(expanded.input_w - layer.input_w) <= layer.stride_w


class TestReferenceMapping:
    def test_valid_for_best_case(self):
        config = AlbireoConfig()
        layer = albireo_best_case_layer(config)
        mapping = albireo_reference_mapping(config, layer)
        arch = build_albireo_architecture(config)
        mapping.validate(arch, layer)

    def test_best_case_fills_hardware(self):
        config = AlbireoConfig()
        layer = albireo_best_case_layer(config)
        mapping = albireo_reference_mapping(config, layer)
        assert mapping.total_spatial_product == config.peak_macs_per_cycle
        assert mapping.utilization_vs(layer) == 1.0

    def test_candidates_all_valid_or_skipped(self):
        config = AlbireoConfig()
        arch = build_albireo_architecture(config)
        layer = ConvLayer(name="c", m=64, c=64, p=56, q=56, r=3, s=3)
        candidates = albireo_mapping_candidates(config, layer)
        assert len(candidates) >= 2
        valid = 0
        for mapping in candidates:
            try:
                mapping.validate(arch, layer)
                valid += 1
            except Exception:
                pass
        assert valid >= 1

    @pytest.mark.parametrize("m,c,p,q,r,s", [
        (64, 3, 112, 112, 7, 7),
        (1000, 512, 1, 1, 1, 1),
        (96, 3, 55, 55, 11, 11),
        (512, 512, 7, 7, 3, 3),
        (13, 7, 5, 3, 2, 2),   # awkward primes
    ])
    def test_reference_mapping_covers_any_shape(self, m, c, p, q, r, s):
        config = AlbireoConfig()
        layer = ConvLayer(name="any", m=m, c=c, p=p, q=q, r=r, s=s)
        arch = build_albireo_architecture(config)
        mapping = albireo_reference_mapping(config, layer)
        mapping.validate(arch, layer)


class TestSystemEvaluation:
    def test_best_case_full_utilization(self):
        system = AlbireoSystem(AlbireoConfig())
        layer = albireo_best_case_layer(system.config)
        evaluation = system.evaluate_layer(layer)
        assert evaluation.utilization == 1.0
        assert evaluation.macs_per_cycle == 6480

    def test_fc_layer_uses_one_window_site(self):
        system = AlbireoSystem(AlbireoConfig())
        fc = dense_layer("fc", 4096, 4096)
        evaluation = system.evaluate_layer(fc)
        # A single window site of nine: utilization near 1/9.
        assert evaluation.utilization <= 1 / 9 + 0.02

    def test_strided_layer_underutilizes(self):
        system = AlbireoSystem(AlbireoConfig())
        strided = ConvLayer(name="s", m=96, c=40, p=55, q=55, r=3, s=3,
                            stride_h=4, stride_w=4)
        unstrided = ConvLayer(name="u", m=96, c=40, p=55, q=55, r=3, s=3)
        eval_s = system.evaluate_layer(strided)
        eval_u = system.evaluate_layer(unstrided)
        assert eval_s.utilization < 0.5 * eval_u.utilization

    def test_scenario_ordering(self):
        layer = albireo_best_case_layer()
        energies = []
        for scenario in (CONSERVATIVE, AGGRESSIVE):
            system = AlbireoSystem(AlbireoConfig(scenario=scenario))
            energies.append(system.evaluate_layer(layer).energy_per_mac_pj)
        assert energies[0] > energies[1]

    def test_mapping_cache_hit(self):
        system = AlbireoSystem(AlbireoConfig())
        layer = albireo_best_case_layer(system.config)
        first = system.reference_mapping(layer)
        second = system.reference_mapping(layer)
        assert first is second

    def test_search_mapping_not_worse_than_reference(self):
        system = AlbireoSystem(AlbireoConfig())
        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        reference_energy = system.evaluate_layer(layer).energy_pj
        result = system.search_mapping(layer, max_evaluations=200, seed=2)
        assert result.cost <= reference_energy * (1 + 1e-9)

    def test_network_evaluation_counts(self):
        from repro.workloads import tiny_cnn

        system = AlbireoSystem(AlbireoConfig())
        network = tiny_cnn()
        evaluation = system.evaluate_network(network)
        assert evaluation.total_macs == network.total_macs

    def test_area_summary(self):
        system = AlbireoSystem(AlbireoConfig())
        areas = system.area_summary_um2()
        assert areas["GlobalBuffer"] > 0
        assert sum(areas.values()) > 0

    def test_describe(self):
        assert "albireo" in AlbireoSystem().describe().lower()


class TestConversionRates:
    """Per-MAC conversion rates on the best-case layer match the fabric."""

    @pytest.fixture
    def counts(self):
        from repro.mapping.analysis import analyze

        config = AlbireoConfig()
        system = AlbireoSystem(config)
        layer = albireo_best_case_layer(config)
        mapping = system.reference_mapping(layer)
        return analyze(system.architecture, layer, mapping), layer, config

    def test_weight_conversions_per_mac(self, counts):
        result, layer, config = counts
        rate = result.converter_events("WeightDAC") / result.padded_macs
        assert rate == pytest.approx(1.0 / config.weight_lanes)

    def test_input_conversions_per_mac(self, counts):
        result, layer, config = counts
        rate = result.converter_events("InputMZM") / result.padded_macs
        assert rate == pytest.approx(1.0 / config.star_ports)

    def test_photodiode_rate(self, counts):
        result, layer, config = counts
        rate = result.converter_events("OutputPhotodiode") \
            / result.padded_macs
        assert rate == pytest.approx(1.0 / config.wavelengths)

    def test_adc_rate(self, counts):
        result, layer, config = counts
        rate = result.converter_events("OutputADC") / result.padded_macs
        assert rate == pytest.approx(
            1.0 / (config.wavelengths * config.output_reuse))
