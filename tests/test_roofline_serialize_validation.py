"""Tests for roofline analysis, mapping serialization, and the
consistency checker."""

import json

import pytest

from repro.mapping.analysis import analyze
from repro.mapping.serialize import mapping_from_dict, mapping_to_dict
from repro.model.roofline import layer_roofline, network_roofline
from repro.exceptions import MappingError
from repro.systems import AlbireoConfig, AlbireoSystem, CrossbarConfig, \
    CrossbarSystem
from repro.validation import assert_consistent, check_consistency
from repro.workloads import ConvLayer, dense_layer, tiny_cnn


class TestRoofline:
    def test_unbounded_dram_is_compute_bound(self):
        system = AlbireoSystem(AlbireoConfig())
        result = network_roofline(system, tiny_cnn())
        assert result.memory_bound_layers == []
        assert all(p.bound == "compute" for p in result.points)

    def test_ddr_bandwidth_makes_fc_memory_bound(self):
        system = AlbireoSystem(AlbireoConfig(dram_bandwidth_gbps=25.6))
        fc = dense_layer("fc", 4096, 4096)
        mapping = system.reference_mapping(fc)
        point = layer_roofline(system.architecture, fc, mapping)
        assert point.bound == "memory"
        assert point.attainable_macs_per_cycle \
            < system.config.peak_macs_per_cycle

    def test_achieved_never_exceeds_attainable(self):
        system = AlbireoSystem(AlbireoConfig(dram_bandwidth_gbps=25.6))
        result = network_roofline(system, tiny_cnn())
        for point in result.points:
            assert point.achieved_macs_per_cycle \
                <= point.attainable_macs_per_cycle * (1 + 1e-6)
            assert 0 < point.roof_efficiency <= 1 + 1e-6

    def test_intensity_reflects_reuse(self):
        """Convolutions have far higher arithmetic intensity than
        batch-1 FC layers (weights used once)."""
        system = AlbireoSystem(AlbireoConfig())
        conv = ConvLayer(name="c", m=64, c=64, p=28, q=28, r=3, s=3)
        fc = dense_layer("fc", 4096, 4096)
        conv_point = layer_roofline(system.architecture, conv,
                                    system.reference_mapping(conv))
        fc_point = layer_roofline(system.architecture, fc,
                                  system.reference_mapping(fc))
        assert conv_point.intensity > 10 * fc_point.intensity

    def test_table_renders(self):
        system = AlbireoSystem(AlbireoConfig(dram_bandwidth_gbps=25.6))
        text = network_roofline(system, tiny_cnn()).table()
        assert "Roofline" in text and "bound" in text

    def test_works_for_crossbar_too(self):
        system = CrossbarSystem(CrossbarConfig())
        result = network_roofline(system, tiny_cnn())
        assert len(result.points) == tiny_cnn().unique_layer_count


class TestMappingSerialization:
    def _mapping(self):
        system = AlbireoSystem(AlbireoConfig())
        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        return system, layer, system.reference_mapping(layer)

    def test_roundtrip_identity(self):
        system, layer, mapping = self._mapping()
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        assert rebuilt == mapping

    def test_roundtrip_through_json(self):
        system, layer, mapping = self._mapping()
        text = json.dumps(mapping_to_dict(mapping))
        rebuilt = mapping_from_dict(json.loads(text))
        rebuilt.validate(system.architecture,
                         system.analysis_layer(layer))

    def test_roundtrip_preserves_evaluation(self):
        system, layer, mapping = self._mapping()
        rebuilt = mapping_from_dict(mapping_to_dict(mapping))
        original = system.evaluate_layer(layer, mapping=mapping)
        again = system.evaluate_layer(layer, mapping=rebuilt)
        assert original.energy_pj == pytest.approx(again.energy_pj)

    def test_missing_levels_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_dict({})

    def test_malformed_loop_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_dict(
                {"levels": [{"storage": "X", "loops": [["ZZ", 2]]}]})

    def test_malformed_spatial_rejected(self):
        with pytest.raises(MappingError):
            mapping_from_dict(
                {"levels": [{"storage": "X"}],
                 "spatials": [{"factors": {"M": 2}}]})


class TestConsistencyChecker:
    def test_albireo_reference_is_consistent(self):
        system = AlbireoSystem(AlbireoConfig())
        layer = ConvLayer(name="c", m=64, c=64, p=28, q=28, r=3, s=3)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        assert check_consistency(system.architecture, layer, counts) == []

    def test_crossbar_reference_is_consistent(self):
        system = CrossbarSystem(CrossbarConfig())
        layer = ConvLayer(name="c", m=64, c=64, p=28, q=28, r=3, s=3)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        assert_consistent(system.architecture, layer, counts)  # no raise

    def test_detects_corrupted_counts(self):
        from repro.workloads import DataSpace

        system = AlbireoSystem(AlbireoConfig())
        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        # Corrupt: claim DRAM read fewer weights than the tensor holds.
        counts.storage["DRAM"].reads[DataSpace.WEIGHTS] = 1.0
        problems = check_consistency(system.architecture, layer, counts)
        assert any("distinct volume" in p for p in problems)

    def test_detects_negative_counts(self):
        from repro.workloads import DataSpace

        system = AlbireoSystem(AlbireoConfig())
        layer = ConvLayer(name="c", m=16, c=16, p=4, q=4)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        counts.storage["GlobalBuffer"].writes[DataSpace.INPUTS] = -5.0
        problems = check_consistency(system.architecture, layer, counts)
        assert any("negative" in p for p in problems)

    def test_assert_consistent_raises_with_details(self):
        from repro.workloads import DataSpace

        system = AlbireoSystem(AlbireoConfig())
        layer = ConvLayer(name="c", m=16, c=16, p=4, q=4)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, layer, mapping)
        counts.storage["DRAM"].reads[DataSpace.WEIGHTS] = 1.0
        with pytest.raises(AssertionError) as excinfo:
            assert_consistent(system.architecture, layer, counts)
        assert "inconsistencies" in str(excinfo.value)
