"""Tests for ASCII table and bar-chart rendering."""

import pytest

from repro.report import bar, format_table, percent, stacked_bar, \
    stacked_bar_chart


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("name", "value"), [("a", 1), ("bb", 22)])
        lines = text.split("\n")
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_right_alignment(self):
        text = format_table(("v",), [(5,), (500,)],
                            align_right=[True])
        lines = text.split("\n")
        assert lines[2].endswith("5")
        assert lines[3].endswith("500")

    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert "a" in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_float_formatting(self):
        text = format_table(("x",), [(0.123456,)])
        assert "0.1235" in text


class TestBars:
    def test_full_bar(self):
        assert bar(10, 10, width=10) == "█" * 10

    def test_half_bar(self):
        rendered = bar(5, 10, width=10)
        assert rendered.startswith("█" * 5)
        assert len(rendered) <= 6

    def test_zero_value(self):
        assert bar(0, 10, width=10) == ""

    def test_zero_max(self):
        assert bar(5, 0) == ""

    def test_clamps_overflow(self):
        assert len(bar(20, 10, width=10)) == 10

    def test_stacked_bar_segments(self):
        rendered = stacked_bar([("a", 5), ("b", 5)], maximum=10, width=10)
        assert len(rendered) == 10
        assert len(set(rendered)) == 2  # two distinct fills

    def test_stacked_bar_chart(self):
        chart = stacked_bar_chart([
            ("row1", {"x": 1.0, "y": 2.0}),
            ("row2", {"x": 0.5, "y": 0.5}),
        ], width=20)
        lines = chart.split("\n")
        assert len(lines) == 3  # two bars + legend
        assert "x" in lines[-1] and "y" in lines[-1]
        assert "3.000" in lines[0]

    def test_stacked_bar_chart_empty(self):
        assert stacked_bar_chart([]) == ""

    def test_segment_order_consistent(self):
        chart = stacked_bar_chart([
            ("a", {"x": 1.0}),
            ("b", {"y": 1.0, "x": 1.0}),
        ], width=10, show_legend=True)
        legend = chart.split("\n")[-1]
        assert legend.index("x") < legend.index("y")


class TestPercent:
    def test_positive(self):
        assert percent(0.42) == "+42.0%"

    def test_negative(self):
        assert percent(-0.1) == "-10.0%"
