"""Tests for the top-level public API surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        system = repro.AlbireoSystem(
            repro.AlbireoConfig(scenario=repro.AGGRESSIVE))
        result = system.evaluate_network(repro.tiny_cnn())
        assert result.energy_pj > 0
        assert "TinyCNN" in result.describe()

    def test_custom_architecture_flow(self):
        """Users can assemble and price a custom architecture."""
        from repro import (
            AcceleratorModel, Architecture, ComputeLevel, ConvLayer,
            Domain, FanoutMapping, LevelMapping, Mapping, SpatialFanout,
            StorageLevel, TemporalLoop, build_table, ComponentSpec,
            DataSpace, Dim,
        )

        arch = Architecture(name="custom", nodes=(
            StorageLevel(name="DRAM", component="dram", domain=Domain.DE,
                         dataspaces=set(DataSpace)),
            StorageLevel(name="SP", component="scratch", domain=Domain.DE,
                         capacity_bits=1e6, dataspaces=set(DataSpace)),
            SpatialFanout(name="pes", size=16, allowed_dims={Dim.M, Dim.C},
                          multicast={DataSpace.INPUTS}),
            ComputeLevel(name="alu", component="alu", domain=Domain.DE),
        ))
        table = build_table([
            ComponentSpec("dram", "dram", {}),
            ComponentSpec("scratch", "sram", {"capacity_bits": 1e6}),
            ComponentSpec("alu", "multiplier", {}),
        ])
        model = AcceleratorModel(arch, table)
        layer = ConvLayer(name="l", m=16, c=4, p=4, q=4)
        mapping = Mapping(
            levels=(LevelMapping("DRAM", ()),
                    LevelMapping("SP", (TemporalLoop(Dim.C, 4),
                                        TemporalLoop(Dim.P, 4),
                                        TemporalLoop(Dim.Q, 4)))),
            spatials=(FanoutMapping("pes", {Dim.M: 16}),),
        )
        evaluation = model.evaluate_layer(layer, mapping)
        assert evaluation.utilization == 1.0

    def test_exceptions_hierarchy(self):
        assert issubclass(repro.MappingError, repro.ReproError)
        assert issubclass(repro.CapacityError, repro.MappingError)
        assert issubclass(repro.SpecError, repro.ReproError)
        assert issubclass(repro.WorkloadError, repro.SpecError)
