"""Tests for photonic component estimators and the optical link budget."""

import pytest

from repro.energy import estimate
from repro.energy.photonic import (
    SHARED_DRIVE_OVERHEAD_PER_LANE,
    coupler_excess_loss_db,
    link_loss_db,
)
from repro.exceptions import CalibrationError


class TestMrr:
    def test_base_energy(self):
        entry = estimate("mrr", "m", {"energy_pj": 0.6})
        assert entry.energy("convert") == pytest.approx(0.6)

    def test_shared_lanes_overhead(self):
        shared = estimate("mrr", "m", {"energy_pj": 0.6, "shared_lanes": 3})
        expected = 0.6 * (1 + 2 * SHARED_DRIVE_OVERHEAD_PER_LANE)
        assert shared.energy("convert") == pytest.approx(expected)

    def test_sharing_still_wins_per_mac(self):
        # One event feeds `lanes` MACs; overhead must not eat the gain.
        single = estimate("mrr", "a", {"energy_pj": 0.6})
        shared = estimate("mrr", "b", {"energy_pj": 0.6, "shared_lanes": 3})
        per_mac_single = single.energy("convert")
        per_mac_shared = shared.energy("convert") / 3
        assert per_mac_shared < per_mac_single

    def test_area_scales_with_lanes(self):
        one = estimate("mrr", "a", {"energy_pj": 0.6})
        three = estimate("mrr", "b", {"energy_pj": 0.6, "shared_lanes": 3})
        assert three.area_um2 == pytest.approx(3 * one.area_um2)

    def test_tuning_power_recorded(self):
        entry = estimate("mrr", "m", {"energy_pj": 0.6, "tuning_mw": 0.02})
        assert entry.static_power_mw == pytest.approx(0.02)

    def test_rejects_negative(self):
        with pytest.raises(CalibrationError):
            estimate("mrr", "m", {"energy_pj": -1.0})


class TestMzmPhotodiode:
    def test_mzm(self):
        assert estimate("mzm", "m", {"energy_pj": 4.0}).energy(
            "convert") == 4.0

    def test_photodiode(self):
        assert estimate("photodiode", "p", {"energy_pj": 0.9}).energy(
            "convert") == 0.9

    def test_both_reject_negative(self):
        with pytest.raises(CalibrationError):
            estimate("mzm", "m", {"energy_pj": -0.1})
        with pytest.raises(CalibrationError):
            estimate("photodiode", "p", {"energy_pj": -0.1})


class TestPassives:
    def test_star_coupler_free_dynamic(self):
        entry = estimate("star_coupler", "s", {"ports": 9})
        assert entry.energy("transfer") == 0.0
        assert entry.area_um2 > 0

    def test_star_coupler_area_grows_with_ports(self):
        small = estimate("star_coupler", "a", {"ports": 9})
        large = estimate("star_coupler", "b", {"ports": 45})
        assert large.area_um2 == pytest.approx(5 * small.area_um2)

    def test_waveguide(self):
        entry = estimate("waveguide", "w", {"length_mm": 2.0})
        assert entry.energy("transfer") == 0.0
        assert entry.area_um2 > 0


class TestLinkBudget:
    def test_single_port_no_excess(self):
        assert coupler_excess_loss_db(1) == 0.0

    def test_excess_grows_logarithmically(self):
        assert coupler_excess_loss_db(4) == pytest.approx(1.0)  # 0.5 * 2
        assert coupler_excess_loss_db(16) == pytest.approx(2.0)

    def test_rejects_bad_ports(self):
        with pytest.raises(CalibrationError):
            coupler_excess_loss_db(0)

    def test_link_loss_composition(self):
        assert link_loss_db(6.0, 4) == pytest.approx(7.0)


class TestLaser:
    def _laser(self, **overrides):
        attributes = {"detector_fj": 15.0, "wall_plug_efficiency": 0.1,
                      "fixed_loss_db": 6.0, "broadcast_ports": 9}
        attributes.update(overrides)
        return estimate("laser", "l", attributes)

    def test_energy_formula(self):
        # 15 fJ * 10^((6 + 0.5*log2 9)/10) / 0.1 / 1000.
        entry = self._laser()
        assert entry.energy("mac") == pytest.approx(0.860, rel=0.01)

    def test_split_neutrality_except_excess(self):
        # Going 9 -> 45 ports only adds coupler excess, not 5x power.
        nine = self._laser(broadcast_ports=9).energy("mac")
        wide = self._laser(broadcast_ports=45).energy("mac")
        assert wide / nine < 1.5
        assert wide > nine

    def test_efficiency_inverse(self):
        lossy = self._laser(wall_plug_efficiency=0.05).energy("mac")
        good = self._laser(wall_plug_efficiency=0.2).energy("mac")
        assert lossy == pytest.approx(4 * good)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(CalibrationError):
            self._laser(wall_plug_efficiency=0.0)
        with pytest.raises(CalibrationError):
            self._laser(wall_plug_efficiency=1.5)

    def test_rejects_bad_detector(self):
        with pytest.raises(CalibrationError):
            self._laser(detector_fj=0.0)

    def test_mac_and_compute_aliases(self):
        entry = self._laser()
        assert entry.energy("mac") == entry.energy("compute")
