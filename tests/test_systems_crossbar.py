"""Tests for the weight-stationary WDM crossbar system."""

import pytest

from repro.energy import AGGRESSIVE, CONSERVATIVE
from repro.exceptions import SpecError
from repro.systems import (
    AlbireoConfig,
    AlbireoSystem,
    CrossbarConfig,
    CrossbarSystem,
    build_crossbar_architecture,
    build_crossbar_energy_table,
    crossbar_reference_mapping,
)
from repro.workloads import ConvLayer, DataSpace, dense_layer, tiny_cnn

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS

CONV = ConvLayer(name="conv", m=128, c=128, p=28, q=28, r=3, s=3)
FC = dense_layer("fc", 1024, 1024)


class TestConfig:
    def test_default_peak(self):
        assert CrossbarConfig().peak_macs_per_cycle == 4096

    def test_bank_capacity(self):
        config = CrossbarConfig(rows=16, cols=16, bits=8)
        assert config.bank_bits == 16 * 16 * 8

    def test_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            CrossbarConfig(rows=0)

    def test_describe(self):
        assert "4096" in CrossbarConfig().describe()


class TestArchitecture:
    def test_structure(self):
        arch = build_crossbar_architecture(CrossbarConfig())
        storage = [s.name for s in arch.storage_levels]
        assert storage == ["DRAM", "GlobalBuffer", "WeightBank",
                           "AEIntegrator"]
        assert arch.peak_parallelism == 4096

    def test_weight_bank_holds_only_weights(self):
        arch = build_crossbar_architecture(CrossbarConfig())
        bank = arch.node_named("WeightBank")
        assert set(bank.dataspaces) == {W}

    def test_columns_broadcast_inputs(self):
        arch = build_crossbar_architecture(CrossbarConfig())
        columns = arch.node_named("columns")
        assert I in columns.multicast

    def test_rows_reduce_outputs(self):
        arch = build_crossbar_architecture(CrossbarConfig())
        rows = arch.node_named("rows")
        assert O in rows.reduction

    def test_energy_table_complete(self):
        config = CrossbarConfig()
        arch = build_crossbar_architecture(config)
        table = build_crossbar_energy_table(config)
        for component in arch.component_names():
            assert component in table


class TestWeightStationarity:
    """The defining property: weight conversions amortize over the sweep."""

    def test_weight_dac_events_near_tensor_size(self):
        from repro.mapping.analysis import analyze

        system = CrossbarSystem(CrossbarConfig())
        mapping = system.reference_mapping(CONV)
        counts = analyze(system.architecture, CONV, mapping)
        events = counts.converter_events("WeightDAC")
        # Weights converted once per residency; allow a few refetch
        # sweeps from buffer-capacity tiling, never per-MAC behaviour.
        assert events < 20 * CONV.weight_elements
        assert events < 0.01 * counts.padded_macs

    def test_weight_conversion_energy_beats_albireo(self):
        crossbar = CrossbarSystem(CrossbarConfig(scenario=AGGRESSIVE))
        albireo = AlbireoSystem(AlbireoConfig(scenario=AGGRESSIVE))
        xe = crossbar.evaluate_layer(CONV)
        ae = albireo.evaluate_layer(CONV)
        x_weight = xe.energy.component_total("WeightDAC")
        a_weight = (ae.energy.component_total("WeightDAC")
                    + ae.energy.component_total("WeightModulator"))
        assert x_weight < 0.05 * a_weight

    def test_bank_capacity_respected(self):
        from repro.mapping.analysis import analyze

        system = CrossbarSystem(CrossbarConfig())
        mapping = system.reference_mapping(CONV)
        counts = analyze(system.architecture, CONV, mapping)
        bank = system.architecture.node_named("WeightBank")
        assert counts.occupancy_bits["WeightBank"] <= bank.capacity_bits


class TestUtilizationContrast:
    def test_fc_fills_the_crossbar(self):
        system = CrossbarSystem(CrossbarConfig())
        evaluation = system.evaluate_layer(FC)
        assert evaluation.utilization == 1.0

    def test_fc_beats_albireo_utilization(self):
        crossbar = CrossbarSystem(CrossbarConfig())
        albireo = AlbireoSystem(AlbireoConfig())
        assert crossbar.evaluate_layer(FC).utilization \
            > 5 * albireo.evaluate_layer(FC).utilization

    def test_albireo_beats_crossbar_on_conv_utilization(self):
        crossbar = CrossbarSystem(CrossbarConfig())
        albireo = AlbireoSystem(AlbireoConfig())
        assert albireo.evaluate_layer(CONV).utilization \
            > crossbar.evaluate_layer(CONV).utilization


class TestReferenceMapping:
    @pytest.mark.parametrize("m,c,p,q,r,s", [
        (64, 3, 112, 112, 7, 7),
        (1000, 512, 1, 1, 1, 1),
        (512, 512, 7, 7, 3, 3),
        (13, 7, 5, 3, 2, 2),
    ])
    def test_valid_for_any_shape(self, m, c, p, q, r, s):
        config = CrossbarConfig()
        layer = ConvLayer(name="any", m=m, c=c, p=p, q=q, r=r, s=s)
        arch = build_crossbar_architecture(config)
        mapping = crossbar_reference_mapping(config, layer)
        mapping.validate(arch, layer)

    def test_search_not_worse_than_reference(self):
        system = CrossbarSystem(CrossbarConfig())
        layer = ConvLayer(name="c", m=64, c=64, p=14, q=14, r=3, s=3)
        reference = system.evaluate_layer(layer).energy_pj
        result = system.search_mapping(layer, max_evaluations=300, seed=1)
        assert result.cost <= reference * (1 + 1e-9)


class TestNetworkEvaluation:
    def test_network_totals(self):
        system = CrossbarSystem(CrossbarConfig())
        network = tiny_cnn()
        evaluation = system.evaluate_network(network)
        assert evaluation.total_macs == network.total_macs

    def test_fusion_reduces_energy(self):
        system = CrossbarSystem(CrossbarConfig())
        network = tiny_cnn()
        base = system.evaluate_network(network)
        fused = system.evaluate_network(network, fused=True)
        assert fused.energy_pj < base.energy_pj

    def test_scenario_ordering(self):
        energies = []
        for scenario in (CONSERVATIVE, AGGRESSIVE):
            system = CrossbarSystem(CrossbarConfig(scenario=scenario))
            energies.append(system.evaluate_layer(CONV).energy_per_mac_pj)
        assert energies[0] > energies[1]


class TestComparisonExperiment:
    def test_run_and_contrasts(self):
        from repro.experiments import system_comparison

        result = system_comparison.run(networks=(tiny_cnn(),))
        assert result.expected_contrasts_hold
        assert "crossbar" in result.table()

    def test_row_lookup(self):
        from repro.experiments import system_comparison

        result = system_comparison.run(networks=(tiny_cnn(),))
        row = result.row("albireo", "TinyCNN")
        assert row.energy_per_mac_pj > 0
        with pytest.raises(KeyError):
            result.row("albireo", "nope")
