"""Tests for the parallel sweep engine (jobs, cache, executor, planner,
sweeps)."""

import dataclasses
import json
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.engine import (
    EvaluationCache,
    build_plan,
    config_sweep_jobs,
    default_grid_jobs,
    job_system_key,
    make_job,
    memory_sweep_jobs,
    parameter_grid,
    pareto_frontier,
    reuse_sweep_jobs,
    run_job,
    run_jobs,
)
from repro.engine.codec import (
    content_hash,
    network_evaluation_from_dict,
    network_evaluation_to_dict,
    network_from_dict,
    network_to_dict,
)
from repro.systems import AlbireoConfig, AlbireoSystem
from repro.workloads import tiny_cnn


@pytest.fixture(scope="module")
def small_network():
    return tiny_cnn()


def _repeated_geometry_network():
    """A network whose layers repeat the same shape under several names
    (the ResNet18 pattern the planner's rename-dedup targets).

    Built from explicit entries: ``Network.from_layers`` would merge the
    consecutive same-shape layers into one counted repetition, which is
    exactly the collapse real model-zoo networks (distinct residual-block
    layer names, non-consecutive repeats) don't get for free.
    """
    from repro.workloads import ConvLayer
    from repro.workloads.network import LayerRepetition, Network

    shape = dict(m=8, c=8, p=16, q=16, r=3, s=3)
    entries = [LayerRepetition(
        layer=ConvLayer(name="conv0", **shape),
        consumes_previous_output=False)]
    entries.extend(
        LayerRepetition(layer=ConvLayer(name=f"conv{i}", **shape))
        for i in range(1, 4))
    entries.append(LayerRepetition(
        layer=ConvLayer(name="odd", m=16, c=8, p=8, q=8, r=3, s=3)))
    return Network(name="RepeatNet", entries=tuple(entries))


def _small_configs(count=4):
    return [replace(AlbireoConfig(), clusters=clusters,
                    output_reuse=output_reuse)
            for clusters in (4, 8)
            for output_reuse in (3, 9)][:count]


def _evaluations_identical(a, b):
    """Bit-exact equality of two network evaluations."""
    if (a.name != b.name or a.clock_ghz != b.clock_ghz
            or a.peak_parallelism != b.peak_parallelism
            or len(a.layers) != len(b.layers)):
        return False
    for (eval_a, count_a), (eval_b, count_b) in zip(a.layers, b.layers):
        if count_a != count_b or eval_a.cycles != eval_b.cycles:
            return False
        if eval_a.energy.entries() != eval_b.energy.entries():
            return False
    return True


class TestJobs:
    def test_key_is_deterministic(self, small_network):
        job_a = make_job(small_network, AlbireoConfig())
        job_b = make_job(small_network, AlbireoConfig())
        assert job_a.key == job_b.key

    def test_key_ignores_presentation_metadata(self, small_network):
        plain = make_job(small_network, AlbireoConfig())
        tagged = make_job(small_network, AlbireoConfig(),
                          label="point 3", tags={"clusters": 16})
        assert plain.key == tagged.key

    def test_key_tracks_config_changes(self, small_network):
        base = make_job(small_network, AlbireoConfig())
        bigger = make_job(small_network, AlbireoConfig(clusters=32))
        assert base.key != bigger.key

    def test_key_tracks_options(self, small_network):
        base = make_job(small_network, AlbireoConfig())
        fused = make_job(small_network, AlbireoConfig(), fused=True)
        mapped = make_job(small_network, AlbireoConfig(), use_mapper=True)
        assert len({base.key, fused.key, mapped.key}) == 3

    def test_key_matches_full_identity_hash(self, small_network):
        """The composed-fragment hash (memoized architecture/network
        JSON spliced into the identity text) must stay byte-identical
        to hashing the full canonical dict."""
        from repro.engine.codec import content_hash

        for options in ({}, {"fused": True}, {"use_mapper": True},
                        {"include_dram": False}):
            job = make_job(small_network, AlbireoConfig(clusters=8),
                           **options)
            assert job.key == content_hash(job.to_dict()), options

    def test_key_stable_across_processes(self, small_network):
        """The content hash must not depend on PYTHONHASHSEED."""
        job = make_job(small_network, AlbireoConfig())
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.engine import make_job\n"
            "from repro.systems import AlbireoConfig\n"
            "from repro.workloads import tiny_cnn\n"
            "print(make_job(tiny_cnn(), AlbireoConfig()).key)\n"
        )
        keys = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=120,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd=str(__import__("pathlib").Path(__file__).parent.parent),
            )
            assert result.returncode == 0, result.stderr[-2000:]
            keys.add(result.stdout.strip())
        keys.add(job.key)
        assert len(keys) == 1

    def test_unknown_system_rejected(self, small_network):
        from repro.exceptions import SpecError

        with pytest.raises(SpecError):
            make_job(small_network, AlbireoConfig(), system="tpu")

    def test_registry_delegates_to_systems_registry(self):
        from repro.engine.jobs import system_registry
        from repro.systems.registry import system_entries

        entries = system_registry()
        assert entries == system_entries()
        assert {"albireo", "crossbar", "wdm_delay"} <= set(entries)
        for tag, entry in entries.items():
            assert entry.name == tag

    def test_make_job_infers_crossbar(self, small_network):
        from repro.systems import CrossbarConfig

        assert make_job(small_network, CrossbarConfig()).system == "crossbar"

    def test_make_job_rejects_foreign_config(self, small_network):
        from repro.energy import CONSERVATIVE
        from repro.exceptions import SpecError

        with pytest.raises(SpecError, match="cannot infer system"):
            make_job(small_network, CONSERVATIVE)


class TestCodec:
    def test_network_round_trip(self, small_network):
        spec = network_to_dict(small_network)
        rebuilt = network_from_dict(json.loads(json.dumps(spec)))
        assert network_to_dict(rebuilt) == spec

    def test_evaluation_round_trip_is_exact(self, small_network):
        evaluation = AlbireoSystem(AlbireoConfig()).evaluate_network(
            small_network)
        spec = network_evaluation_to_dict(evaluation)
        rebuilt = network_evaluation_from_dict(json.loads(json.dumps(spec)))
        assert _evaluations_identical(evaluation, rebuilt)
        assert rebuilt.energy_pj == evaluation.energy_pj

    def test_content_hash_order_independent(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash(
            {"b": 2, "a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestCache:
    def test_round_trip_save_reload_hit(self, small_network, tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        cache = EvaluationCache(str(tmp_path))
        cold = run_jobs(jobs, cache=cache)
        assert cache.stats["results"].hits == 0
        assert (tmp_path / "store" / "index.json").exists()

        reloaded = EvaluationCache(str(tmp_path))
        warm = run_jobs(jobs, cache=reloaded)
        assert reloaded.stats["results"].hits == len(jobs)
        assert reloaded.stats["results"].misses == 0
        for a, b in zip(cold, warm):
            assert _evaluations_identical(a, b)

    def test_mapper_results_cached(self, small_network, tmp_path):
        job = make_job(small_network, AlbireoConfig(), use_mapper=True)
        cache = EvaluationCache(str(tmp_path))
        run_job(job, cache)
        assert cache.size("mappings") > 0
        mapper_misses = cache.stats["mappings"].misses

        # Same config, different option: new job, but mapper entries hit.
        sibling = make_job(small_network, AlbireoConfig(), use_mapper=True,
                           fused=True)
        run_job(sibling, cache)
        assert cache.stats["mappings"].hits > 0
        assert cache.stats["mappings"].misses == mapper_misses

    def test_mapper_counters_round_trip(self):
        """Search-efficiency counters survive the mapper-store round trip."""
        from repro.engine.cache import SystemStore
        from repro.mapping.mapper import MapperResult
        from repro.systems.albireo import albireo_reference_mapping
        from repro.workloads import ConvLayer

        mapping = albireo_reference_mapping(
            AlbireoConfig(), ConvLayer(name="l", m=8, c=8, p=4, q=4))
        cache = EvaluationCache()
        store = SystemStore(cache, "cfg")
        store.save_mapper_result(("k",), MapperResult(
            mapping=mapping, cost=1.5, evaluated=10, valid=7,
            deduplicated=3, pruned_early=2))
        loaded = store.load_mapper_result(("k",))
        assert loaded.deduplicated == 3
        assert loaded.pruned_early == 2
        stats = cache.mapper_search_stats()
        assert stats == {"searches": 1, "evaluated": 10, "valid": 7,
                         "deduplicated": 3, "pruned_early": 2}

    def test_pre_overhaul_mapper_entries_still_load(self):
        """Cache images written before the counters existed stay valid."""
        from repro.engine.cache import SystemStore
        from repro.mapping.serialize import mapping_to_dict
        from repro.systems.albireo import albireo_reference_mapping
        from repro.workloads import ConvLayer

        mapping = albireo_reference_mapping(
            AlbireoConfig(), ConvLayer(name="l", m=8, c=8, p=4, q=4))
        cache = EvaluationCache()
        store = SystemStore(cache, "cfg")
        # A legacy entry: no deduplicated / pruned_early keys.
        cache.put("mappings", store._key(("k",)), {
            "mapping": mapping_to_dict(mapping),
            "cost": 2.0, "evaluated": 5, "valid": 5,
        })
        loaded = store.load_mapper_result(("k",))
        assert loaded.valid == 5
        assert loaded.deduplicated == 0
        assert loaded.pruned_early == 0

    def test_corrupt_or_foreign_image_starts_fresh(self, tmp_path):
        (tmp_path / "cache.json").write_text(
            json.dumps({"version": 999, "entries": {"results": {"x": 1}}}))
        for backend in ("legacy", "sharded"):
            cache = EvaluationCache(str(tmp_path), backend=backend)
            assert len(cache) == 0
            assert cache.get("results", "x") is None

    def test_truncated_image_starts_fresh(self, tmp_path):
        (tmp_path / "cache.json").write_text('{"version": 1, "entries": {TR')
        for backend in ("legacy", "sharded"):
            cache = EvaluationCache(str(tmp_path), backend=backend)
            assert len(cache) == 0
            assert cache.get("results", "x") is None

    def test_in_memory_cache_needs_no_disk(self, small_network):
        cache = EvaluationCache()
        job = make_job(small_network, AlbireoConfig())
        run_job(job, cache)
        run_job(job, cache)
        assert cache.stats["results"].hits == 1
        assert cache.save() is None

    def test_atomic_save_leaves_single_image(self, small_network, tmp_path):
        cache = EvaluationCache(str(tmp_path), backend="legacy")
        run_job(make_job(small_network, AlbireoConfig()), cache)
        cache.save()
        cache.save()
        files = list(tmp_path.iterdir())
        assert [f.name for f in files] == ["cache.json"]

    def test_atomic_save_leaves_no_temp_files(self, small_network, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        run_job(make_job(small_network, AlbireoConfig()), cache)
        cache.save()
        cache.save()
        names = [p.name for p in (tmp_path / "store").iterdir()]
        assert "index.json" in names
        assert all(n == "locks" or n == "index.json"
                   or (n.startswith("shard-") and n.endswith(".jsonl"))
                   for n in names)

    def test_clean_run_skips_disk_rewrite(self, small_network, tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        run_jobs(jobs, cache=EvaluationCache(str(tmp_path),
                                             backend="legacy"))
        image = tmp_path / "cache.json"
        before = image.stat().st_mtime_ns

        warm = EvaluationCache(str(tmp_path), backend="legacy")
        run_jobs(jobs, cache=warm)  # 100% hits: nothing new to persist
        assert not warm.dirty
        assert image.stat().st_mtime_ns == before

    def test_clean_sharded_run_appends_no_entries(self, small_network,
                                                  tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        run_jobs(jobs, cache=EvaluationCache(str(tmp_path)))
        store_dir = tmp_path / "store"
        counts_before = json.loads(
            (store_dir / "index.json").read_text())["entries"]

        warm = EvaluationCache(str(tmp_path))
        run_jobs(jobs, cache=warm)  # 100% hits: only LRU touches persist
        assert not warm.dirty
        counts_after = json.loads(
            (store_dir / "index.json").read_text())["entries"]
        assert counts_after == counts_before
        assert warm.store.stats.flushed_entries == 0


class TestExecutor:
    def test_parallel_equals_serial(self, small_network):
        """workers=4 must return the same ordering and identical numbers."""
        jobs = reuse_sweep_jobs(
            small_network, AlbireoConfig(),
            output_reuse_values=(3, 9), input_reuse_values=(9, 27),
            weight_lane_variants=(("Original", 1),),
        )
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=4)
        assert len(serial) == len(parallel) == len(jobs)
        for a, b in zip(serial, parallel):
            assert _evaluations_identical(a, b)
            assert a.energy_pj == b.energy_pj

    def test_parallel_merges_worker_cache_entries(self, small_network,
                                                  tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(3))
        cache = EvaluationCache(str(tmp_path))
        run_jobs(jobs, workers=2, cache=cache)
        assert cache.size("results") == len(jobs)
        assert cache.size("layers") > 0

        warm = EvaluationCache(str(tmp_path))
        run_jobs(jobs, workers=2, cache=warm)
        assert warm.stats["results"].hits == len(jobs)

    def test_order_preserved_with_cache_hits_interleaved(self,
                                                         small_network):
        jobs = config_sweep_jobs(small_network, _small_configs(4))
        cache = EvaluationCache()
        # Pre-warm only the middle jobs so hits and misses interleave.
        run_jobs(jobs[1:3], cache=cache)
        mixed = run_jobs(jobs, cache=cache)
        uncached = run_jobs(jobs)
        for a, b in zip(mixed, uncached):
            assert _evaluations_identical(a, b)

    def test_progress_reports_every_job(self, small_network):
        jobs = config_sweep_jobs(small_network, _small_configs(3))
        seen = []
        run_jobs(jobs, progress=lambda done, total, job: seen.append(
            (done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_include_dram_false_strips_dram(self, small_network):
        job = make_job(small_network, AlbireoConfig(), include_dram=False)
        evaluation = run_job(job)
        entries = evaluation.total_energy.entries()
        assert entries
        assert all(component != "DRAM" for component, _ in entries)

    def test_strip_dram_round_trips_every_field(self, small_network):
        """``strip_dram`` must only touch the energy breakdown: every
        other ``LayerEvaluation`` field — including ones added after this
        test was written — survives byte-for-byte."""
        from repro.engine import strip_dram
        from repro.model.results import LayerEvaluation, NetworkEvaluation

        evaluation = run_job(make_job(small_network, AlbireoConfig()))
        # Make the optional fields non-default so silently dropping one
        # cannot hide behind its default value.
        tweaked = tuple(
            (dataclasses.replace(layer_eval,
                                 occupancy_bits={"GlobalBuffer": 17.5},
                                 compute_cycles=layer_eval.cycles + 3,
                                 bandwidth_bound_level="DRAM"),
             count)
            for layer_eval, count in evaluation.layers
        )
        evaluation = dataclasses.replace(evaluation, layers=tweaked)
        stripped = strip_dram(evaluation)

        for net_field in dataclasses.fields(NetworkEvaluation):
            if net_field.name == "layers":
                continue
            assert getattr(stripped, net_field.name) \
                == getattr(evaluation, net_field.name), net_field.name
        assert len(stripped.layers) == len(evaluation.layers)
        for (before, count_b), (after, count_a) in zip(evaluation.layers,
                                                       stripped.layers):
            assert count_b == count_a
            for layer_field in dataclasses.fields(LayerEvaluation):
                if layer_field.name == "energy":
                    continue
                assert getattr(after, layer_field.name) \
                    == getattr(before, layer_field.name), layer_field.name
            kept = after.energy.entries()
            assert kept
            assert all(component != "DRAM" for component, _ in kept)
            expected = {key: value
                        for key, value in before.energy.entries().items()
                        if key[0] != "DRAM"}
            assert kept == expected


class TestPlanner:
    def test_plan_dedups_repeated_geometry(self):
        """Same-shape layers under different names plan one task each."""
        network = _repeated_geometry_network()
        jobs = [make_job(network, config)
                for config in _small_configs(2)]
        cache = EvaluationCache()
        plan = build_plan(jobs, cache, workers=2)
        assert plan is not None
        # 5 entries per job but only 2 unique geometries per config.
        assert plan.planned == 10
        assert plan.deduplicated == 6
        assert plan.phase1_tasks == 4
        assert len(plan.aliases) == 6
        assert cache.planner.planned == 10
        assert cache.planner.phase1_tasks == 4

    def test_plan_dedups_against_warm_cache(self, small_network):
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        cache = EvaluationCache()
        run_jobs(jobs, cache=cache)  # warm every layer entry serially
        cache.reset_stats()
        plan = build_plan(jobs, cache, workers=2)
        assert plan.phase1_tasks == 0
        assert plan.cache_hits > 0
        assert not plan.batches

    def test_planned_parallel_identical_and_aliases_cached(self):
        """Rename-dedup still yields bit-identical results, and the
        derived sibling entries land in the cache for later replay."""
        network = _repeated_geometry_network()
        jobs = [make_job(network, config, include_dram=include_dram)
                for config in _small_configs(2)
                for include_dram in (True, False)]
        serial = run_jobs(jobs)
        cache = EvaluationCache()
        parallel = run_jobs(jobs, workers=2, cache=cache)
        assert cache.planner.deduplicated > 0
        for a, b in zip(serial, parallel):
            assert _evaluations_identical(a, b)
            assert a.energy_pj == b.energy_pj
        # Every distinct layer name is individually cached (aliases were
        # derived), so a warm run needs no evaluation at all.
        warm = EvaluationCache.from_snapshot(cache.snapshot())
        run_jobs(jobs, cache=warm)
        assert warm.stats["results"].hits == len(jobs)
        assert warm.stats["layers"].misses == 0

    def test_fig4_fig5_grids_have_cross_job_dedup(self):
        """The acceptance-criterion grids: planning them finds duplicate
        sub-tasks to eliminate (repeated ResNet18 shapes, shared arms)."""
        from repro.energy import AGGRESSIVE, CONSERVATIVE
        from repro.workloads import resnet18

        network = resnet18()
        fig4 = memory_sweep_jobs(network, AlbireoConfig(),
                                 scenarios=(CONSERVATIVE, AGGRESSIVE))
        plan4 = build_plan(fig4, EvaluationCache(), workers=4)
        assert plan4.deduplicated > 0
        fig5 = reuse_sweep_jobs(network, AlbireoConfig())
        plan5 = build_plan(fig5, EvaluationCache(), workers=4)
        assert plan5.deduplicated > 0

    def test_plan_false_forces_whole_job_path(self, small_network):
        jobs = config_sweep_jobs(small_network, _small_configs(3))
        cache = EvaluationCache()
        results = run_jobs(jobs, workers=2, cache=cache, plan=False)
        assert cache.planner.planned == 0
        uncached = run_jobs(jobs)
        for a, b in zip(results, uncached):
            assert _evaluations_identical(a, b)

    def test_batches_preserve_config_affinity(self, small_network):
        """Every task of one system_key ships in one batch segment."""
        jobs = config_sweep_jobs(small_network, _small_configs(4))
        plan = build_plan(jobs, EvaluationCache(), workers=2)
        seen_keys = set()
        for batch in plan.batches:
            for chunk in batch:
                assert chunk.system_key not in seen_keys
                seen_keys.add(chunk.system_key)
        assert len(seen_keys) == len({job_system_key(job) for job in jobs})

    def test_oversized_group_splits_at_cluster_boundaries(self):
        """One giant job is split for load balancing, but a use_mapper
        layer task always rides with the mapper search it consumes."""
        from repro.workloads import ConvLayer
        from repro.workloads.network import Network

        layers = [ConvLayer(name=f"c{i}", m=4 + i, c=3, p=8, q=8, r=3, s=3)
                  for i in range(24)]
        network = Network.from_layers("WideNet", layers)
        job = make_job(network, AlbireoConfig(), use_mapper=True)
        plan = build_plan([job], EvaluationCache(), workers=4)
        chunks = plan.chunks
        assert len(chunks) > 1  # actually split
        # Dependency closure: each chunk's use_mapper layer tasks only
        # consume searches scheduled in the same chunk.  (Shapes are all
        # distinct here, so matching by layer name is exact.)
        for chunk in chunks:
            produced = {task.layer.name for task in chunk.tasks
                        if task.kind == "mapper"}
            consumed = {task.layer.name for task in chunk.tasks
                        if task.kind == "layer" and task.use_mapper}
            assert consumed <= produced

    def test_phase1_ticks_progress(self, small_network):
        """A cold planned run shows liveness during phase 1 (finished
        count unchanged) before the per-job assembly ticks."""
        jobs = config_sweep_jobs(small_network, _small_configs(3))
        calls = []
        run_jobs(jobs, workers=2, cache=EvaluationCache(),
                 progress=lambda done, total, job: calls.append(
                     (done, total)))
        phase1_ticks = [call for call in calls if call == (0, 3)]
        assert phase1_ticks  # batches reported before any job finished
        assert calls[-1] == (3, 3)
        assert [call for call in calls if call[0] > 0] \
            == [(1, 3), (2, 3), (3, 3)]

    def test_reset_stats_clears_counters(self, small_network):
        cache = EvaluationCache()
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        run_jobs(jobs, workers=2, cache=cache)
        assert cache.stats["layers"].lookups > 0
        assert cache.planner.planned > 0
        entries_before = len(cache)
        cache.reset_stats()
        assert len(cache) == entries_before  # entries untouched
        assert cache.planner.planned == 0
        assert cache.planner.phase1_tasks == 0
        assert all(stats.hits == 0 and stats.misses == 0
                   for stats in cache.stats.values())

    def test_contains_and_peek_do_not_count(self, small_network):
        cache = EvaluationCache()
        run_job(make_job(small_network, AlbireoConfig()), cache)
        cache.reset_stats()
        key = next(iter(cache.snapshot()["layers"]))
        assert cache.contains("layers", key)
        assert cache.peek("layers", key) is not None
        assert not cache.contains("layers", "missing")
        assert cache.peek("layers", "missing") is None
        assert cache.stats["layers"].lookups == 0

    def test_default_grid_jobs_covers_registered_systems(self,
                                                         small_network):
        from repro.systems.registry import system_names

        jobs = default_grid_jobs(small_network)
        assert {job.system for job in jobs} == set(system_names())
        assert all(job.tag("system") == job.system for job in jobs)
        only = default_grid_jobs(small_network, systems=("albireo",))
        assert {job.system for job in only} == {"albireo"}


@dataclasses.dataclass(frozen=True)
class _FailingConfig(AlbireoConfig):
    """Config for the fault-injection system (module level: worker
    payloads pickle it by reference)."""


class _FailingSystem(AlbireoSystem):
    """Raises on every layer evaluation — exercises worker error paths."""

    name = "failing"
    config_type = _FailingConfig

    def evaluate_layer(self, *args, **kwargs):
        raise ValueError("injected failure")


@pytest.fixture
def failing_system():
    from repro.systems import registry
    from repro.systems.albireo import SYSTEM_BUCKETS

    entry = registry.SystemEntry(
        name="failing",
        config_type=_FailingConfig,
        system_type=_FailingSystem,
        build_architecture=_FailingSystem.build_architecture,
        build_energy_table=_FailingSystem.build_energy_table,
        buckets=SYSTEM_BUCKETS,
        description="test-only fault-injection system",
    )
    registry.register_system(entry)
    try:
        yield entry
    finally:
        registry._REGISTRY.pop("failing", None)


@pytest.mark.skipif(sys.platform == "win32",
                    reason="fault injection relies on fork inheritance")
class TestFailurePaths:
    """Satellite: run_jobs must fail loudly and leave caches valid."""

    def _failing_jobs(self, network, count=3):
        return [make_job(network, _FailingConfig(), system="failing",
                         label=f"fail{i}", tags={"i": i})
                for i in range(count)]

    def test_worker_error_propagates_in_planner_path(self, small_network,
                                                     failing_system):
        jobs = self._failing_jobs(small_network)
        with pytest.raises(ValueError, match="injected failure"):
            run_jobs(jobs, workers=2, cache=EvaluationCache())

    def test_worker_error_propagates_in_whole_job_path(self, small_network,
                                                       failing_system):
        jobs = self._failing_jobs(small_network)
        with pytest.raises(ValueError, match="injected failure"):
            run_jobs(jobs, workers=2, cache=EvaluationCache(), plan=False)
        with pytest.raises(ValueError, match="injected failure"):
            run_jobs(jobs, workers=2, plan=False)  # cache-less path too

    def test_serial_error_propagates(self, small_network, failing_system):
        with pytest.raises(ValueError, match="injected failure"):
            run_jobs(self._failing_jobs(small_network), workers=1)

    def test_keyboard_interrupt_tears_down_pool(self, small_network):
        import multiprocessing
        import time

        def interrupt(done, total, job):
            raise KeyboardInterrupt

        jobs = config_sweep_jobs(small_network, _small_configs(4))
        with pytest.raises(KeyboardInterrupt):
            run_jobs(jobs, workers=2, plan=False, progress=interrupt)
        # The ``with Pool`` exit terminates workers; give them a moment.
        deadline = time.time() + 10
        while multiprocessing.active_children() and time.time() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_planner_phase_failure_leaves_disk_image_valid(
            self, small_network, failing_system, tmp_path):
        good_job = make_job(small_network, AlbireoConfig())
        cache = EvaluationCache(str(tmp_path))
        run_job(good_job, cache)
        cache.save()
        store_dir = tmp_path / "store"
        snapshot = {p.name: p.read_bytes()
                    for p in store_dir.iterdir() if p.is_file()}

        batch = [make_job(small_network, AlbireoConfig(clusters=32))] \
            + self._failing_jobs(small_network)
        with pytest.raises(ValueError, match="injected failure"):
            run_jobs(batch, workers=2, cache=EvaluationCache(str(tmp_path)))
        # Atomic persistence: the failed run never touched the store.
        after = {p.name: p.read_bytes()
                 for p in store_dir.iterdir() if p.is_file()}
        assert after == snapshot
        reloaded = EvaluationCache(str(tmp_path))
        assert reloaded.get_result(good_job.key) is not None

    def test_no_silent_none_on_partial_failure(self, small_network,
                                               failing_system):
        """A batch mixing good and failing jobs raises rather than
        returning a results list with holes."""
        batch = [make_job(small_network, AlbireoConfig())] \
            + self._failing_jobs(small_network, count=2)
        with pytest.raises(ValueError, match="injected failure"):
            run_jobs(batch, workers=2, cache=EvaluationCache())


class TestSweepBuilders:
    def test_parameter_grid_order(self):
        grid = parameter_grid(a=(1, 2), b=("x", "y"))
        assert grid == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                        {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]

    def test_memory_sweep_sizes_fused_buffer(self, small_network):
        from repro.energy import AGGRESSIVE

        jobs = memory_sweep_jobs(small_network, AlbireoConfig(),
                                 scenarios=(AGGRESSIVE,), batch_sizes=(1,))
        by_fused = {job.tag("fused"): job for job in jobs}
        assert set(by_fused) == {False, True}
        assert (by_fused[True].config.global_buffer_kib
                >= by_fused[False].config.global_buffer_kib)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_reuse_jobs_match_dse_points(self, small_network):
        """The engine path returns the same grid the legacy loop produced."""
        from repro.systems import sweep_reuse_factors

        points = sweep_reuse_factors(
            small_network, AlbireoConfig(),
            output_reuse_values=(3, 9), input_reuse_values=(9,),
            weight_lane_variants=(("Original", 1),),
        )
        combos = [(p.output_reuse, p.input_reuse, p.variant) for p in points]
        assert combos == [(3, 9, "Original"), (9, 9, "Original")]


class TestParetoFrontier:
    def test_matches_brute_force_2d(self):
        import random

        rng = random.Random(7)
        points = [(rng.randrange(20), rng.randrange(20)) for _ in range(200)]
        assert pareto_frontier(points, lambda p: p) \
            == _brute_force(points, lambda p: p)

    def test_matches_brute_force_3d(self):
        import random

        rng = random.Random(11)
        points = [tuple(rng.randrange(8) for _ in range(3))
                  for _ in range(120)]
        assert pareto_frontier(points, lambda p: p) \
            == _brute_force(points, lambda p: p)

    def test_duplicates_all_survive(self):
        points = [(1, 1), (2, 0), (1, 1), (0, 2)]
        frontier = pareto_frontier(points, lambda p: p)
        assert frontier == points

    def test_input_order_preserved(self):
        points = [(3, 1), (1, 3), (2, 2)]
        assert pareto_frontier(points, lambda p: p) == points

    def test_mismatched_objective_width_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([(1, 2), (1,)], lambda p: p)


def _brute_force(points, objectives):
    costs = [tuple(objectives(p)) for p in points]
    keep = []
    for i, point in enumerate(points):
        dominated = any(
            all(o <= c for o, c in zip(other, costs[i]))
            and any(o < c for o, c in zip(other, costs[i]))
            for j, other in enumerate(costs) if j != i)
        if not dominated:
            keep.append(point)
    return keep


class TestOnRecordSeam:
    """run_jobs(on_record=...): exactly one call per job, at final-
    outcome time, on every execution path (the streaming seam the
    service and the CLI progress printer are built on)."""

    def _jobs(self):
        from repro.systems import CrossbarConfig

        return [make_job(tiny_cnn(),
                         CrossbarConfig(global_buffer_kib=kib))
                for kib in (256, 512, 1024)]

    def _collect(self, **kwargs):
        calls = []
        results = run_jobs(
            self._jobs(),
            on_record=lambda index, job, outcome:
                calls.append((index, job.key, outcome)),
            **kwargs)
        return calls, results

    def test_serial_fires_once_per_job_with_final_outcome(self):
        calls, results = self._collect()
        assert sorted(index for index, _, _ in calls) == [0, 1, 2]
        for index, key, outcome in calls:
            assert outcome is results[index]
            assert key == self._jobs()[index].key

    def test_cache_hits_still_fire(self, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        first, _ = self._collect(cache=cache)
        warm, results = self._collect(cache=cache)
        assert len(warm) == 3  # pure-hit run streams every record
        key = lambda call: call[0]
        assert [outcome.total_cycles
                for _, _, outcome in sorted(warm, key=key)] \
            == [outcome.total_cycles
                for _, _, outcome in sorted(first, key=key)]
        assert all(outcome is results[index]
                   for index, _, outcome in warm)

    def test_parallel_paths_fire_once_per_job(self):
        serial = run_jobs(self._jobs())
        for plan in (None, False):  # planner and whole-job dispatch
            calls, results = self._collect(workers=2, plan=plan)
            assert sorted(index for index, _, _ in calls) == [0, 1, 2]
            for a, b in zip(results, serial):
                assert _evaluations_identical(a, b)
            assert all(outcome is results[index]
                       for index, _, outcome in calls)

    def test_failures_fire_with_job_failure_outcome(self):
        from repro.engine import FailurePolicy, JobFailure

        jobs = self._jobs()
        calls = []
        results = run_jobs(
            jobs, failure_policy=FailurePolicy(on_error="skip"),
            inject=[{"match": "crossbar:*:job", "action": "raise",
                     "attempt": -1}],
            on_record=lambda index, job, outcome:
                calls.append((index, outcome)))
        assert len(calls) == len(jobs)
        assert all(isinstance(outcome, JobFailure)
                   for _, outcome in calls)
        assert all(outcome is results[index] for index, outcome in calls)

    def test_retry_fires_only_on_the_final_outcome(self):
        """Under retry, intermediate failed attempts do not stream; the
        single call per job carries the eventually-successful result."""
        from repro.engine import FailurePolicy, JobFailure

        calls = []
        results = run_jobs(
            self._jobs(),
            failure_policy=FailurePolicy(on_error="retry",
                                         max_retries=2, backoff=0.0),
            inject=[{"match": "crossbar:*:job", "action": "raise",
                     "attempt": 0}],  # first attempt only
            on_record=lambda index, job, outcome:
                calls.append((index, outcome)))
        assert len(calls) == 3
        assert not any(isinstance(outcome, JobFailure)
                       for _, outcome in calls)
        assert all(outcome is results[index] for index, outcome in calls)

    def test_on_record_exception_aborts_the_run(self):
        class StopStreaming(RuntimeError):
            pass

        def explode(index, job, outcome):
            raise StopStreaming("caller cancelled")

        with pytest.raises(StopStreaming):
            run_jobs(self._jobs(), on_record=explode)
