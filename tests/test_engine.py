"""Tests for the parallel sweep engine (jobs, cache, executor, sweeps)."""

import json
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.engine import (
    EvaluationCache,
    config_sweep_jobs,
    make_job,
    memory_sweep_jobs,
    parameter_grid,
    pareto_frontier,
    reuse_sweep_jobs,
    run_job,
    run_jobs,
)
from repro.engine.codec import (
    content_hash,
    network_evaluation_from_dict,
    network_evaluation_to_dict,
    network_from_dict,
    network_to_dict,
)
from repro.systems import AlbireoConfig, AlbireoSystem
from repro.workloads import tiny_cnn


@pytest.fixture(scope="module")
def small_network():
    return tiny_cnn()


def _small_configs(count=4):
    return [replace(AlbireoConfig(), clusters=clusters,
                    output_reuse=output_reuse)
            for clusters in (4, 8)
            for output_reuse in (3, 9)][:count]


def _evaluations_identical(a, b):
    """Bit-exact equality of two network evaluations."""
    if (a.name != b.name or a.clock_ghz != b.clock_ghz
            or a.peak_parallelism != b.peak_parallelism
            or len(a.layers) != len(b.layers)):
        return False
    for (eval_a, count_a), (eval_b, count_b) in zip(a.layers, b.layers):
        if count_a != count_b or eval_a.cycles != eval_b.cycles:
            return False
        if eval_a.energy.entries() != eval_b.energy.entries():
            return False
    return True


class TestJobs:
    def test_key_is_deterministic(self, small_network):
        job_a = make_job(small_network, AlbireoConfig())
        job_b = make_job(small_network, AlbireoConfig())
        assert job_a.key == job_b.key

    def test_key_ignores_presentation_metadata(self, small_network):
        plain = make_job(small_network, AlbireoConfig())
        tagged = make_job(small_network, AlbireoConfig(),
                          label="point 3", tags={"clusters": 16})
        assert plain.key == tagged.key

    def test_key_tracks_config_changes(self, small_network):
        base = make_job(small_network, AlbireoConfig())
        bigger = make_job(small_network, AlbireoConfig(clusters=32))
        assert base.key != bigger.key

    def test_key_tracks_options(self, small_network):
        base = make_job(small_network, AlbireoConfig())
        fused = make_job(small_network, AlbireoConfig(), fused=True)
        mapped = make_job(small_network, AlbireoConfig(), use_mapper=True)
        assert len({base.key, fused.key, mapped.key}) == 3

    def test_key_stable_across_processes(self, small_network):
        """The content hash must not depend on PYTHONHASHSEED."""
        job = make_job(small_network, AlbireoConfig())
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.engine import make_job\n"
            "from repro.systems import AlbireoConfig\n"
            "from repro.workloads import tiny_cnn\n"
            "print(make_job(tiny_cnn(), AlbireoConfig()).key)\n"
        )
        keys = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=120,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd=str(__import__("pathlib").Path(__file__).parent.parent),
            )
            assert result.returncode == 0, result.stderr[-2000:]
            keys.add(result.stdout.strip())
        keys.add(job.key)
        assert len(keys) == 1

    def test_unknown_system_rejected(self, small_network):
        from repro.exceptions import SpecError

        with pytest.raises(SpecError):
            make_job(small_network, AlbireoConfig(), system="tpu")

    def test_registry_delegates_to_systems_registry(self):
        from repro.engine.jobs import system_registry
        from repro.systems.registry import system_entries

        entries = system_registry()
        assert entries == system_entries()
        assert {"albireo", "crossbar", "wdm_delay"} <= set(entries)
        for tag, entry in entries.items():
            assert entry.name == tag

    def test_make_job_infers_crossbar(self, small_network):
        from repro.systems import CrossbarConfig

        assert make_job(small_network, CrossbarConfig()).system == "crossbar"

    def test_make_job_rejects_foreign_config(self, small_network):
        from repro.energy import CONSERVATIVE
        from repro.exceptions import SpecError

        with pytest.raises(SpecError, match="cannot infer system"):
            make_job(small_network, CONSERVATIVE)


class TestCodec:
    def test_network_round_trip(self, small_network):
        spec = network_to_dict(small_network)
        rebuilt = network_from_dict(json.loads(json.dumps(spec)))
        assert network_to_dict(rebuilt) == spec

    def test_evaluation_round_trip_is_exact(self, small_network):
        evaluation = AlbireoSystem(AlbireoConfig()).evaluate_network(
            small_network)
        spec = network_evaluation_to_dict(evaluation)
        rebuilt = network_evaluation_from_dict(json.loads(json.dumps(spec)))
        assert _evaluations_identical(evaluation, rebuilt)
        assert rebuilt.energy_pj == evaluation.energy_pj

    def test_content_hash_order_independent(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash(
            {"b": 2, "a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestCache:
    def test_round_trip_save_reload_hit(self, small_network, tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        cache = EvaluationCache(str(tmp_path))
        cold = run_jobs(jobs, cache=cache)
        assert cache.stats["results"].hits == 0
        assert (tmp_path / "cache.json").exists()

        reloaded = EvaluationCache(str(tmp_path))
        warm = run_jobs(jobs, cache=reloaded)
        assert reloaded.stats["results"].hits == len(jobs)
        assert reloaded.stats["results"].misses == 0
        for a, b in zip(cold, warm):
            assert _evaluations_identical(a, b)

    def test_mapper_results_cached(self, small_network, tmp_path):
        job = make_job(small_network, AlbireoConfig(), use_mapper=True)
        cache = EvaluationCache(str(tmp_path))
        run_job(job, cache)
        assert cache.size("mappings") > 0
        mapper_misses = cache.stats["mappings"].misses

        # Same config, different option: new job, but mapper entries hit.
        sibling = make_job(small_network, AlbireoConfig(), use_mapper=True,
                           fused=True)
        run_job(sibling, cache)
        assert cache.stats["mappings"].hits > 0
        assert cache.stats["mappings"].misses == mapper_misses

    def test_mapper_counters_round_trip(self):
        """Search-efficiency counters survive the mapper-store round trip."""
        from repro.engine.cache import SystemStore
        from repro.mapping.mapper import MapperResult
        from repro.systems.albireo import albireo_reference_mapping
        from repro.workloads import ConvLayer

        mapping = albireo_reference_mapping(
            AlbireoConfig(), ConvLayer(name="l", m=8, c=8, p=4, q=4))
        cache = EvaluationCache()
        store = SystemStore(cache, "cfg")
        store.save_mapper_result(("k",), MapperResult(
            mapping=mapping, cost=1.5, evaluated=10, valid=7,
            deduplicated=3, pruned_early=2))
        loaded = store.load_mapper_result(("k",))
        assert loaded.deduplicated == 3
        assert loaded.pruned_early == 2
        stats = cache.mapper_search_stats()
        assert stats == {"searches": 1, "evaluated": 10, "valid": 7,
                         "deduplicated": 3, "pruned_early": 2}

    def test_pre_overhaul_mapper_entries_still_load(self):
        """Cache images written before the counters existed stay valid."""
        from repro.engine.cache import SystemStore
        from repro.mapping.serialize import mapping_to_dict
        from repro.systems.albireo import albireo_reference_mapping
        from repro.workloads import ConvLayer

        mapping = albireo_reference_mapping(
            AlbireoConfig(), ConvLayer(name="l", m=8, c=8, p=4, q=4))
        cache = EvaluationCache()
        store = SystemStore(cache, "cfg")
        # A legacy entry: no deduplicated / pruned_early keys.
        cache.put("mappings", store._key(("k",)), {
            "mapping": mapping_to_dict(mapping),
            "cost": 2.0, "evaluated": 5, "valid": 5,
        })
        loaded = store.load_mapper_result(("k",))
        assert loaded.valid == 5
        assert loaded.deduplicated == 0
        assert loaded.pruned_early == 0

    def test_corrupt_or_foreign_image_starts_fresh(self, tmp_path):
        (tmp_path / "cache.json").write_text(
            json.dumps({"version": 999, "entries": {"results": {"x": 1}}}))
        cache = EvaluationCache(str(tmp_path))
        assert len(cache) == 0

    def test_truncated_image_starts_fresh(self, tmp_path):
        (tmp_path / "cache.json").write_text('{"version": 1, "entries": {TR')
        cache = EvaluationCache(str(tmp_path))
        assert len(cache) == 0

    def test_in_memory_cache_needs_no_disk(self, small_network):
        cache = EvaluationCache()
        job = make_job(small_network, AlbireoConfig())
        run_job(job, cache)
        run_job(job, cache)
        assert cache.stats["results"].hits == 1
        assert cache.save() is None

    def test_atomic_save_leaves_single_image(self, small_network, tmp_path):
        cache = EvaluationCache(str(tmp_path))
        run_job(make_job(small_network, AlbireoConfig()), cache)
        cache.save()
        cache.save()
        files = list(tmp_path.iterdir())
        assert [f.name for f in files] == ["cache.json"]

    def test_clean_run_skips_disk_rewrite(self, small_network, tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(2))
        run_jobs(jobs, cache=EvaluationCache(str(tmp_path)))
        image = tmp_path / "cache.json"
        before = image.stat().st_mtime_ns

        warm = EvaluationCache(str(tmp_path))
        run_jobs(jobs, cache=warm)  # 100% hits: nothing new to persist
        assert not warm.dirty
        assert image.stat().st_mtime_ns == before


class TestExecutor:
    def test_parallel_equals_serial(self, small_network):
        """workers=4 must return the same ordering and identical numbers."""
        jobs = reuse_sweep_jobs(
            small_network, AlbireoConfig(),
            output_reuse_values=(3, 9), input_reuse_values=(9, 27),
            weight_lane_variants=(("Original", 1),),
        )
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=4)
        assert len(serial) == len(parallel) == len(jobs)
        for a, b in zip(serial, parallel):
            assert _evaluations_identical(a, b)
            assert a.energy_pj == b.energy_pj

    def test_parallel_merges_worker_cache_entries(self, small_network,
                                                  tmp_path):
        jobs = config_sweep_jobs(small_network, _small_configs(3))
        cache = EvaluationCache(str(tmp_path))
        run_jobs(jobs, workers=2, cache=cache)
        assert cache.size("results") == len(jobs)
        assert cache.size("layers") > 0

        warm = EvaluationCache(str(tmp_path))
        run_jobs(jobs, workers=2, cache=warm)
        assert warm.stats["results"].hits == len(jobs)

    def test_order_preserved_with_cache_hits_interleaved(self,
                                                         small_network):
        jobs = config_sweep_jobs(small_network, _small_configs(4))
        cache = EvaluationCache()
        # Pre-warm only the middle jobs so hits and misses interleave.
        run_jobs(jobs[1:3], cache=cache)
        mixed = run_jobs(jobs, cache=cache)
        uncached = run_jobs(jobs)
        for a, b in zip(mixed, uncached):
            assert _evaluations_identical(a, b)

    def test_progress_reports_every_job(self, small_network):
        jobs = config_sweep_jobs(small_network, _small_configs(3))
        seen = []
        run_jobs(jobs, progress=lambda done, total, job: seen.append(
            (done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_include_dram_false_strips_dram(self, small_network):
        job = make_job(small_network, AlbireoConfig(), include_dram=False)
        evaluation = run_job(job)
        entries = evaluation.total_energy.entries()
        assert entries
        assert all(component != "DRAM" for component, _ in entries)


class TestSweepBuilders:
    def test_parameter_grid_order(self):
        grid = parameter_grid(a=(1, 2), b=("x", "y"))
        assert grid == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                        {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]

    def test_memory_sweep_sizes_fused_buffer(self, small_network):
        from repro.energy import AGGRESSIVE

        jobs = memory_sweep_jobs(small_network, AlbireoConfig(),
                                 scenarios=(AGGRESSIVE,), batch_sizes=(1,))
        by_fused = {job.tag("fused"): job for job in jobs}
        assert set(by_fused) == {False, True}
        assert (by_fused[True].config.global_buffer_kib
                >= by_fused[False].config.global_buffer_kib)

    def test_reuse_jobs_match_dse_points(self, small_network):
        """The engine path returns the same grid the legacy loop produced."""
        from repro.systems import sweep_reuse_factors

        points = sweep_reuse_factors(
            small_network, AlbireoConfig(),
            output_reuse_values=(3, 9), input_reuse_values=(9,),
            weight_lane_variants=(("Original", 1),),
        )
        combos = [(p.output_reuse, p.input_reuse, p.variant) for p in points]
        assert combos == [(3, 9, "Original"), (9, 9, "Original")]


class TestParetoFrontier:
    def test_matches_brute_force_2d(self):
        import random

        rng = random.Random(7)
        points = [(rng.randrange(20), rng.randrange(20)) for _ in range(200)]
        assert pareto_frontier(points, lambda p: p) \
            == _brute_force(points, lambda p: p)

    def test_matches_brute_force_3d(self):
        import random

        rng = random.Random(11)
        points = [tuple(rng.randrange(8) for _ in range(3))
                  for _ in range(120)]
        assert pareto_frontier(points, lambda p: p) \
            == _brute_force(points, lambda p: p)

    def test_duplicates_all_survive(self):
        points = [(1, 1), (2, 0), (1, 1), (0, 2)]
        frontier = pareto_frontier(points, lambda p: p)
        assert frontier == points

    def test_input_order_preserved(self):
        points = [(3, 1), (1, 3), (2, 2)]
        assert pareto_frontier(points, lambda p: p) == points

    def test_mismatched_objective_width_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([(1, 2), (1,)], lambda p: p)


def _brute_force(points, objectives):
    costs = [tuple(objectives(p)) for p in points]
    keep = []
    for i, point in enumerate(points):
        dominated = any(
            all(o <= c for o, c in zip(other, costs[i]))
            and any(o < c for o, c in zip(other, costs[i]))
            for j, other in enumerate(costs) if j != i)
        if not dominated:
            keep.append(point)
    return keep
