"""Unit tests for the per-repetition fusion traffic-flag logic."""

import pytest

from repro.model.accelerator import fusion_blocks
from repro.workloads import ConvLayer
from repro.workloads.network import LayerRepetition


def _entry(count=1, consumes_previous=True):
    return LayerRepetition(
        layer=ConvLayer(name="l", m=4, c=4),
        count=count,
        consumes_previous_output=consumes_previous,
    )


class TestUnfused:
    @pytest.mark.parametrize("count", [1, 3])
    def test_everything_round_trips_dram(self, count):
        blocks = fusion_blocks(_entry(count=count), is_last_entry=False,
                               fused=False)
        assert blocks == [(True, True, count)]


class TestFusedSingleRepetition:
    def test_first_layer_reads_dram_writes_onchip(self):
        blocks = fusion_blocks(_entry(consumes_previous=False),
                               is_last_entry=False, fused=True)
        assert blocks == [(True, False, 1)]

    def test_interior_layer_fully_onchip(self):
        blocks = fusion_blocks(_entry(), is_last_entry=False, fused=True)
        assert blocks == [(False, False, 1)]

    def test_last_layer_writes_dram(self):
        blocks = fusion_blocks(_entry(), is_last_entry=True, fused=True)
        assert blocks == [(False, True, 1)]

    def test_single_layer_network_round_trips(self):
        blocks = fusion_blocks(_entry(consumes_previous=False),
                               is_last_entry=True, fused=True)
        assert blocks == [(True, True, 1)]


class TestFusedRepetitions:
    def test_interior_block_all_onchip(self):
        blocks = fusion_blocks(_entry(count=4), is_last_entry=False,
                               fused=True)
        assert blocks == [(False, False, 4)]

    def test_first_block_splits_head(self):
        blocks = fusion_blocks(_entry(count=3, consumes_previous=False),
                               is_last_entry=False, fused=True)
        assert blocks == [(True, False, 1), (False, False, 2)]

    def test_last_block_splits_tail(self):
        blocks = fusion_blocks(_entry(count=3), is_last_entry=True,
                               fused=True)
        assert blocks == [(False, False, 2), (False, True, 1)]

    def test_first_and_last_block_splits_both(self):
        blocks = fusion_blocks(_entry(count=3, consumes_previous=False),
                               is_last_entry=True, fused=True)
        assert blocks == [(True, False, 1), (False, False, 1),
                          (False, True, 1)]


class TestConservation:
    @pytest.mark.parametrize("count", [1, 2, 5])
    @pytest.mark.parametrize("consumes", [True, False])
    @pytest.mark.parametrize("is_last", [True, False])
    def test_counts_always_sum_to_repetitions(self, count, consumes,
                                              is_last):
        entry = _entry(count=count, consumes_previous=consumes)
        blocks = fusion_blocks(entry, is_last, fused=True)
        assert sum(c for _, _, c in blocks) == count
        assert all(c > 0 for _, _, c in blocks)

    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_exactly_one_dram_write_when_last(self, count):
        blocks = fusion_blocks(_entry(count=count), is_last_entry=True,
                               fused=True)
        dram_writes = sum(c for _, out, c in blocks if out)
        assert dram_writes == 1

    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_at_most_one_dram_read(self, count):
        blocks = fusion_blocks(_entry(count=count, consumes_previous=False),
                               is_last_entry=False, fused=True)
        dram_reads = sum(c for inp, _, c in blocks if inp)
        assert dram_reads == 1
