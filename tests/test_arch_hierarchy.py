"""Tests for architecture nodes, validation, and queries."""

import pytest

from repro.arch import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    Conversion,
    ConverterStage,
    Domain,
    SpatialFanout,
    StorageLevel,
)
from repro.exceptions import SpecError
from repro.workloads import DataSpace
from repro.workloads.dims import Dim

W, I, O = DataSpace.WEIGHTS, DataSpace.INPUTS, DataSpace.OUTPUTS


def _storage(name="S", dataspaces=(W, I, O), **kwargs):
    return StorageLevel(name=name, component="sram", domain=Domain.DE,
                        dataspaces=frozenset(dataspaces), **kwargs)


def _compute(name="mac"):
    return ComputeLevel(name=name, component="mac", domain=Domain.DE)


class TestNodeValidation:
    def test_storage_requires_dataspaces(self):
        with pytest.raises(SpecError):
            _storage(dataspaces=())

    def test_storage_rejects_nonpositive_capacity(self):
        with pytest.raises(SpecError):
            _storage(capacity_bits=0)

    def test_storage_rejects_bad_accumulation_depth(self):
        with pytest.raises(SpecError):
            _storage(dataspaces=(O,), max_accumulation_depth=0.5)

    def test_unbounded_storage(self):
        assert _storage().is_unbounded
        assert not _storage(capacity_bits=8.0).is_unbounded

    def test_fanout_needs_dims_when_parallel(self):
        with pytest.raises(SpecError):
            SpatialFanout(name="f", size=4, allowed_dims=frozenset())

    def test_fanout_size_one_without_dims_ok(self):
        fanout = SpatialFanout(name="f", size=1, allowed_dims=frozenset())
        assert fanout.size == 1

    def test_fanout_rejects_zero_size(self):
        with pytest.raises(SpecError):
            SpatialFanout(name="f", size=0, allowed_dims={Dim.M})

    def test_fanout_rejects_bad_reduction_limit(self):
        with pytest.raises(SpecError):
            SpatialFanout(name="f", size=4, allowed_dims={Dim.M},
                          reduction_limit=0)

    def test_converter_requires_dataspaces(self):
        with pytest.raises(SpecError):
            ConverterStage(name="c", component="dac",
                           conversion=Conversion(Domain.DE, Domain.AE),
                           dataspaces=frozenset())

    def test_conversion_rejects_identity(self):
        with pytest.raises(SpecError):
            Conversion(Domain.DE, Domain.DE)

    def test_compute_action_rejects_negative_rate(self):
        with pytest.raises(SpecError):
            ComputeAction(component="laser", events_per_mac=-1.0)


class TestArchitectureValidation:
    def test_minimal_valid(self):
        arch = Architecture(name="a", nodes=(_storage(), _compute()))
        assert arch.peak_parallelism == 1

    def test_requires_compute_last(self):
        with pytest.raises(SpecError):
            Architecture(name="a", nodes=(_compute(), _storage()))

    def test_requires_exactly_one_compute(self):
        with pytest.raises(SpecError):
            Architecture(name="a",
                         nodes=(_storage(), _compute("m1"), _compute("m2")))

    def test_requires_storage(self):
        with pytest.raises(SpecError):
            Architecture(name="a", nodes=(_compute(),))

    def test_outermost_must_hold_all_dataspaces(self):
        with pytest.raises(SpecError):
            Architecture(name="a",
                         nodes=(_storage(dataspaces=(W,)), _compute()))

    def test_rejects_duplicate_names(self):
        with pytest.raises(SpecError):
            Architecture(name="a", nodes=(
                _storage("S"), _storage("S", capacity_bits=8), _compute()))

    def test_converter_needs_upstream_storage(self):
        converter = ConverterStage(
            name="c", component="dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={W})
        # Converter before any storage: invalid.
        with pytest.raises(SpecError):
            Architecture(name="a", nodes=(converter, _storage(), _compute()))

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(SpecError):
            Architecture(name="a", nodes=(_storage(), _compute()),
                         clock_ghz=0.0)


class TestQueries:
    @pytest.fixture
    def arch(self):
        return Architecture(name="q", nodes=(
            _storage("DRAM"),
            _storage("GB", capacity_bits=1e6),
            SpatialFanout(name="f1", size=4, allowed_dims={Dim.M},
                          multicast={I}),
            ConverterStage(name="dac", component="dac",
                           conversion=Conversion(Domain.DE, Domain.AE),
                           dataspaces={W}),
            SpatialFanout(name="f2", size=3, allowed_dims={Dim.C},
                          reduction={O}),
            _compute(),
        ))

    def test_peak_parallelism(self, arch):
        assert arch.peak_parallelism == 12

    def test_storage_levels_order(self, arch):
        assert [s.name for s in arch.storage_levels] == ["DRAM", "GB"]

    def test_fanouts(self, arch):
        assert [f.name for f in arch.fanouts] == ["f1", "f2"]

    def test_converters_for(self, arch):
        assert [c.name for c in arch.converters_for(W)] == ["dac"]
        assert arch.converters_for(I) == []

    def test_storage_for(self, arch):
        assert len(arch.storage_for(O)) == 2

    def test_node_named(self, arch):
        assert arch.node_named("GB").capacity_bits == 1e6
        with pytest.raises(SpecError):
            arch.node_named("nope")

    def test_index_of(self, arch):
        assert arch.index_of("DRAM") == 0
        with pytest.raises(SpecError):
            arch.index_of("nope")

    def test_fanouts_below(self, arch):
        assert [f.name for f in arch.fanouts_below("GB")] == ["f1", "f2"]
        assert [f.name for f in arch.fanouts_below("dac")] == ["f2"]

    def test_component_names_deduplicated(self, arch):
        names = arch.component_names()
        assert names.count("sram") == 1
        assert "dac" in names and "mac" in names

    def test_replace_node(self, arch):
        bigger = _storage("GB", capacity_bits=2e6)
        replaced = arch.replace_node("GB", bigger)
        assert replaced.node_named("GB").capacity_bits == 2e6
        # Original untouched.
        assert arch.node_named("GB").capacity_bits == 1e6

    def test_cycle_ns(self, arch):
        assert arch.cycle_ns == 1.0

    def test_describe_runs(self, arch):
        text = arch.describe()
        assert "DRAM" in text and "fanout" in text
