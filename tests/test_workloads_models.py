"""Tests for the model zoo: layer counts, MAC totals, tensor volumes.

Reference values are the community-standard numbers for 224x224 (227x227
for AlexNet) ImageNet inputs; they act as independent oracles for the
shape definitions.
"""

import pytest

from repro.workloads import alexnet, lenet5, resnet18, tiny_cnn, vgg16
from repro.workloads.network import Network


class TestVGG16:
    def test_total_macs(self):
        # 15.47 GMACs (13 convs + 3 FCs).
        assert vgg16().total_macs == pytest.approx(15.47e9, rel=0.01)

    def test_layer_count(self):
        assert len(vgg16()) == 16

    def test_weight_volume(self):
        # ~138M parameters at 8 bits.
        assert vgg16().total_weight_bits / 8 == pytest.approx(138e6,
                                                              rel=0.02)

    def test_all_convs_are_3x3_unstrided(self):
        for entry in vgg16():
            layer = entry.layer
            if layer.kind == "conv":
                assert (layer.r, layer.s) == (3, 3)
                assert not layer.is_strided

    def test_batch_scales_macs(self):
        assert vgg16(batch=4).total_macs == 4 * vgg16().total_macs


class TestAlexNet:
    def test_total_macs(self):
        # 0.72 GMACs with the historical grouped convolutions.
        assert alexnet().total_macs == pytest.approx(0.724e9, rel=0.01)

    def test_layer_count(self):
        assert len(alexnet()) == 8

    def test_first_layer_strided_11x11(self):
        first = alexnet().entries[0].layer
        assert (first.r, first.s) == (11, 11)
        assert first.stride_h == first.stride_w == 4

    def test_has_grouped_convolutions(self):
        grouped = [e.layer for e in alexnet() if e.layer.groups > 1]
        assert len(grouped) == 3

    def test_fc_macs_share(self):
        net = alexnet()
        fc_macs = sum(e.layer.macs * e.count for e in net
                      if e.layer.is_fully_connected)
        assert fc_macs == pytest.approx(58.6e6, rel=0.02)


class TestResNet18:
    def test_total_macs(self):
        # ~1.81 GMACs.
        assert resnet18().total_macs == pytest.approx(1.814e9, rel=0.01)

    def test_weight_volume(self):
        # ~11.7M parameters.
        assert resnet18().total_weight_bits / 8 == pytest.approx(11.7e6,
                                                                 rel=0.02)

    def test_has_downsample_projections(self):
        names = [e.layer.name for e in resnet18()]
        downsamples = [n for n in names if "downsample" in n]
        assert len(downsamples) == 3

    def test_first_layer_reads_dram(self):
        first = resnet18().entries[0]
        assert not first.consumes_previous_output

    def test_interior_layers_consume_previous(self):
        interior = resnet18().entries[1:-1]
        assert all(e.consumes_previous_output for e in interior)

    def test_residual_liveness_annotated(self):
        skip_bits = [e.resident_extra_bits for e in resnet18()]
        assert any(bits > 0 for bits in skip_bits)

    def test_max_activation_footprint_reasonable(self):
        # Largest layer footprint (in+out+skip) is conv1's: a 157 KB input
        # image plus its 803 KB output map — just under 1 MB at batch 1.
        footprint_mb = resnet18().max_activation_bits / 8 / 1e6
        assert 0.5 < footprint_mb < 4.0

    def test_batch_scales_residuals(self):
        b1 = resnet18().max_activation_bits
        b4 = resnet18(batch=4).max_activation_bits
        assert b4 == pytest.approx(4 * b1, rel=0.01)


class TestSmallNetworks:
    def test_lenet5_layers(self):
        assert len(lenet5()) == 5

    def test_lenet5_fc_sizes_chain(self):
        layers = [e.layer for e in lenet5()]
        assert layers[2].c == 400  # 16 * 5 * 5 after conv2 pooling

    def test_tiny_cnn_is_small(self):
        assert tiny_cnn().total_macs < 2_000_000

    def test_tiny_cnn_has_stride_and_fc(self):
        layers = [e.layer for e in tiny_cnn()]
        assert any(layer.is_strided for layer in layers)
        assert any(layer.is_fully_connected for layer in layers)


class TestNetworkInvariants:
    @pytest.mark.parametrize("factory", [vgg16, alexnet, resnet18, lenet5,
                                         tiny_cnn])
    def test_every_network_nonempty_and_positive(self, factory):
        network = factory()
        assert len(network) >= 3
        assert network.total_macs > 0
        assert network.total_weight_bits > 0

    @pytest.mark.parametrize("factory", [vgg16, alexnet, resnet18])
    def test_channel_chaining(self, factory):
        """Each conv layer's C matches the previous layer's M (where the
        topology is a simple chain and no pooling reshapes channels)."""
        network = factory()
        previous_m = None
        for entry in network:
            layer = entry.layer
            if previous_m is not None and entry.consumes_previous_output \
                    and not layer.is_fully_connected \
                    and "downsample" not in layer.name:
                assert layer.c in (previous_m, layer.c)
            if "downsample" not in layer.name:
                previous_m = layer.m
