"""Tests for the optical-device scaling scenarios."""

import dataclasses

import pytest

from repro.energy import (
    AGGRESSIVE,
    CONSERVATIVE,
    MODERATE,
    SCENARIOS,
    scenario_by_name,
)
from repro.exceptions import CalibrationError


class TestScenarios:
    def test_three_scenarios(self):
        assert len(SCENARIOS) == 3
        assert [s.name for s in SCENARIOS] == ["conservative", "moderate",
                                               "aggressive"]

    @pytest.mark.parametrize("field", [
        "mzm_pj", "mrr_drive_pj", "photodiode_pj", "dac_pj_at_8bit",
        "adc_fom_fj_per_step", "detector_fj",
    ])
    def test_monotone_improvement(self, field):
        """Every device parameter improves monotonically across scalings."""
        values = [getattr(s, field) for s in
                  (CONSERVATIVE, MODERATE, AGGRESSIVE)]
        assert values[0] > values[1] > values[2], field

    def test_efficiency_improves(self):
        assert (CONSERVATIVE.laser_wall_plug_efficiency
                < AGGRESSIVE.laser_wall_plug_efficiency)

    def test_losses_improve(self):
        assert CONSERVATIVE.fixed_loss_db > AGGRESSIVE.fixed_loss_db

    def test_lookup_by_name(self):
        assert scenario_by_name("moderate") is MODERATE
        assert scenario_by_name("AGGRESSIVE") is AGGRESSIVE

    def test_lookup_unknown(self):
        with pytest.raises(CalibrationError):
            scenario_by_name("futuristic")

    def test_validation_rejects_nonpositive_device(self):
        with pytest.raises(CalibrationError):
            dataclasses.replace(CONSERVATIVE, mzm_pj=0.0)

    def test_validation_rejects_bad_efficiency(self):
        with pytest.raises(CalibrationError):
            dataclasses.replace(CONSERVATIVE, laser_wall_plug_efficiency=2.0)

    def test_validation_rejects_negative_loss(self):
        with pytest.raises(CalibrationError):
            dataclasses.replace(CONSERVATIVE, fixed_loss_db=-1.0)
