"""Tests for the estimator plug-in registry."""

import pytest

from repro.energy import (
    ComponentSpec,
    available_estimators,
    build_table,
    estimate,
)
from repro.energy.estimator import register_estimator
from repro.energy.table import EnergyEntry
from repro.exceptions import EstimationError


class TestRegistry:
    def test_known_estimators_registered(self):
        names = available_estimators()
        for expected in ("sram", "dram", "adc", "dac", "mrr", "mzm",
                         "photodiode", "laser", "star_coupler", "register",
                         "adder", "multiplier", "wire", "constant",
                         "analog_integrator", "waveguide"):
            assert expected in names, expected

    def test_descriptions_nonempty(self):
        for name, description in available_estimators().items():
            assert description, f"{name} has no description"

    def test_unknown_class_raises(self):
        with pytest.raises(EstimationError) as excinfo:
            estimate("flux_capacitor", "f")
        assert "sram" in str(excinfo.value)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(EstimationError) as excinfo:
            estimate("sram", "s", {"capacity_bits": 1024, "typo_attr": 1})
        assert "typo_attr" in str(excinfo.value)

    def test_missing_required_attribute_rejected(self):
        with pytest.raises(EstimationError) as excinfo:
            estimate("sram", "s", {})
        assert "capacity_bits" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(EstimationError):
            @register_estimator("sram")
            def duplicate(name, attributes):  # pragma: no cover
                return EnergyEntry(component=name, energy_per_action_pj={})


class TestBuildTable:
    def test_builds_all_specs(self):
        table = build_table([
            ComponentSpec("buf", "sram", {"capacity_bits": 8 * 1024 * 8}),
            ComponentSpec("mem", "dram", {}),
        ])
        assert "buf" in table and "mem" in table

    def test_duplicate_names_rejected(self):
        specs = [
            ComponentSpec("buf", "sram", {"capacity_bits": 1024}),
            ComponentSpec("buf", "dram", {}),
        ]
        with pytest.raises(EstimationError):
            build_table(specs)

    def test_spec_attributes_are_copied(self):
        attributes = {"capacity_bits": 1024}
        spec = ComponentSpec("buf", "sram", attributes)
        attributes["capacity_bits"] = 0  # mutating the source dict is safe
        assert spec.attributes["capacity_bits"] == 1024
