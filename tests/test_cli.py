"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _COMMANDS, main


class TestCli:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "error" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "VGG16" in out and "AlexNet" in out

    def test_arch(self, capsys):
        assert main(["arch"]) == 0
        out = capsys.readouterr().out
        assert "GlobalBuffer" in out and "star_coupler" in out

    def test_arch_scenario_flag(self, capsys):
        assert main(["arch", "--scenario", "aggressive"]) == 0
        assert "aggressive" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "mm^2" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["warp"])

    def test_bad_scenario_rejected_at_parse(self, capsys):
        """--scenario choices come from the scaling registry, so an
        unknown name fails argparse validation with the options listed."""
        with pytest.raises(SystemExit):
            main(["arch", "--scenario", "optimistic"])
        err = capsys.readouterr().err
        assert "conservative" in err and "aggressive" in err


class TestSubcommands:
    def test_every_subcommand_has_help(self, capsys):
        """`repro <cmd> --help` exits 0 and prints usage for every
        registered subcommand (the satellite CI smoke, run in-process)."""
        for name, _, _, _ in _COMMANDS:
            with pytest.raises(SystemExit) as exit_info:
                main([name, "--help"])
            assert exit_info.value.code == 0
            out = capsys.readouterr().out
            assert f"repro {name}" in out

    def test_command_table_covers_legacy_commands(self):
        names = {name for name, _, _, _ in _COMMANDS}
        assert {"fig2", "fig3", "fig4", "fig5", "all", "compare",
                "sensitivity", "roofline", "sweep", "arch", "area",
                "run"} <= names

    def test_sweep_json_dump(self, capsys, tmp_path):
        out_path = tmp_path / "records.json"
        assert main(["sweep", "--system", "crossbar", "--network", "tiny",
                     "--workers", "2", "--json", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        records = payload["records"]
        assert records and all("energy_per_mac_pj" in row
                               for row in records)
        assert {row["system"] for row in records} == {"crossbar"}
        # The stats record carries cache and planner counters (the
        # planner runs only on the parallel path).
        stats = payload["stats"]
        assert set(stats) == {"cache", "planner", "mapper"}
        assert stats["planner"]["planned"] > 0
        assert stats["planner"]["batches"] >= 1
        assert "results" in stats["cache"]

    def test_compare_json_dump(self, capsys, tmp_path):
        out_path = tmp_path / "compare.json"
        assert main(["compare", "--system", "albireo", "--json",
                     str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        records = payload["records"]
        assert {row["system"] for row in records} == {"albireo"}
        assert all("weight_conversion_pj_per_mac" in row
                   for row in records)
        # Serial comparison: no planner, but cache stats are live.
        assert payload["stats"]["cache"]["results"]["misses"] > 0

    def test_run_spec_command(self, capsys, tmp_path):
        spec = {
            "name": "cli-spec",
            "systems": ["crossbar"],
            "networks": ["tiny"],
            "scenarios": ["conservative"],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        json_path = tmp_path / "out.json"
        assert main(["run", str(spec_path), "--json",
                     str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-spec" in out and "pJ/MAC" in out
        payload = json.loads(json_path.read_text())
        assert len(payload["records"]) == 1
        assert payload["records"][0]["system"] == "crossbar"

    def test_json_dash_keeps_stdout_parseable(self, capsys):
        """--json - claims stdout for the records; the table moves to
        stderr so piping into a JSON consumer works."""
        assert main(["sweep", "--system", "crossbar", "--network", "tiny",
                     "--json", "-"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert len(payload["records"]) == 24
        assert "pJ/MAC" in captured.err  # table still shown, on stderr

    def test_sweep_progress_lines_on_stderr(self, capsys):
        assert main(["sweep", "--system", "crossbar", "--network", "tiny",
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[24/24]" in captured.err
        assert "[" not in captured.out.split("Sweep")[0]

    def test_no_progress_by_default(self, capsys):
        assert main(["sweep", "--system", "crossbar",
                     "--network", "tiny"]) == 0
        assert "[24/24]" not in capsys.readouterr().err

    def test_sweep_trace_flags(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        assert main(["sweep", "--system", "crossbar", "--network", "tiny",
                     "--workers", "2",
                     "--trace", str(trace_path), "--trace-summary"]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.out  # summary table on stdout
        assert "run_jobs" in captured.out
        events = validate_chrome_trace(json.loads(trace_path.read_text()))
        names = {event["name"] for event in events}
        assert "repro.sweep" in names
        assert "planner.build_plan" in names
        assert "worker.batch" in names
        # Workers appear as lanes distinct from the parent.
        assert len({event["tid"] for event in events}) >= 2

    def test_run_spec_unknown_system_lists_options(self, tmp_path,
                                                   capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"systems": ["warpdrive"],
                                         "networks": ["tiny"]}))
        # Library errors map to exit code 2 with a one-line message
        # (the options listed), not a traceback.
        assert main(["run", str(spec_path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "albireo" in err

    def test_run_spec_error_debug_flag_reraises(self, tmp_path):
        from repro.exceptions import SpecError

        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"systems": ["warpdrive"],
                                         "networks": ["tiny"]}))
        with pytest.raises(SpecError, match="albireo"):
            main(["--debug", "run", str(spec_path)])


class TestRunMultiSpec:
    """Multi-spec `repro run` shares one cache (one store open) and,
    with --keep-pool, one warm worker pool across all specs."""

    def _write_specs(self, tmp_path):
        base = {"systems": ["crossbar"], "networks": ["tiny"],
                "scenarios": ["conservative"]}
        spec1 = dict(base, name="multi-1",
                     grid={"global_buffer_kib": [256, 512]})
        spec2 = dict(base, name="multi-2",
                     grid={"global_buffer_kib": [512, 1024]})
        paths = []
        for spec in (spec1, spec2):
            path = tmp_path / f"{spec['name']}.json"
            path.write_text(json.dumps(spec))
            paths.append(str(path))
        return paths

    def test_multi_spec_opens_the_store_exactly_once(self, capsys,
                                                     tmp_path,
                                                     monkeypatch):
        from repro.engine import store as store_module

        opens = []
        original = store_module.ShardedStore.__init__

        def counting(self, *args, **kwargs):
            opens.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(store_module.ShardedStore, "__init__",
                            counting)
        paths = self._write_specs(tmp_path)
        assert main(["run", *paths, "--cache",
                     str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        assert len(opens) == 1

    def test_multi_spec_overlap_hits_the_shared_cache(self, capsys,
                                                      tmp_path):
        """The 512 KiB point appears in both specs; sharing one cache
        means 4 evaluations but only 3 misses."""
        paths = self._write_specs(tmp_path)
        json_path = tmp_path / "out.json"
        assert main(["run", *paths, "--cache", str(tmp_path / "cache"),
                     "--json", str(json_path)]) == 0
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        assert len(payload["records"]) == 4
        results = payload["stats"]["cache"]["results"]
        assert results["misses"] == 3
        assert results["hits"] == 1

    def test_keep_pool_spawns_once_across_specs(self, capsys, tmp_path):
        """--keep-pool: one spawn for the whole command, later specs
        reach warm workers via delta sync, never an epoch reset."""
        paths = self._write_specs(tmp_path)
        json_path = tmp_path / "out.json"
        assert main(["run", *paths, "--cache", str(tmp_path / "cache"),
                     "--workers", "2", "--keep-pool",
                     "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "pool: 1 spawns" in out
        assert "0 epoch resets" in out
        pool_stats = json.loads(json_path.read_text())["stats"]["pool"]
        assert pool_stats["spawns"] == 1
        # Later specs may need no dispatch at all (their misses assemble
        # from warm phase-1 layer entries); what matters is that no
        # respawn or full-snapshot resync ever happened.
        assert pool_stats["dispatches"] >= 1
        assert pool_stats["epoch_resets"] == 0


class TestServeSubmitCli:
    def test_serve_and_submit_registered(self):
        names = {name for name, _, _, _ in _COMMANDS}
        assert {"serve", "submit"} <= names

    def test_submit_unreachable_server_exits_2(self, capsys, tmp_path):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"systems": ["crossbar"],
                                         "networks": ["tiny"]}))
        assert main(["submit", str(spec_path), "--server",
                     f"http://127.0.0.1:{port}"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot reach" in err

    def test_submit_trace_with_multiple_specs_rejected(self, capsys,
                                                       tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"systems": ["crossbar"],
                                         "networks": ["tiny"]}))
        assert main(["submit", str(spec_path), str(spec_path),
                     "--trace", str(tmp_path / "t.json")]) == 2
        assert "one spec per trace" in capsys.readouterr().err
