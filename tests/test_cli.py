"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _COMMANDS, main


class TestCli:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "error" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "VGG16" in out and "AlexNet" in out

    def test_arch(self, capsys):
        assert main(["arch"]) == 0
        out = capsys.readouterr().out
        assert "GlobalBuffer" in out and "star_coupler" in out

    def test_arch_scenario_flag(self, capsys):
        assert main(["arch", "--scenario", "aggressive"]) == 0
        assert "aggressive" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "mm^2" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["warp"])

    def test_bad_scenario_rejected_at_parse(self, capsys):
        """--scenario choices come from the scaling registry, so an
        unknown name fails argparse validation with the options listed."""
        with pytest.raises(SystemExit):
            main(["arch", "--scenario", "optimistic"])
        err = capsys.readouterr().err
        assert "conservative" in err and "aggressive" in err


class TestSubcommands:
    def test_every_subcommand_has_help(self, capsys):
        """`repro <cmd> --help` exits 0 and prints usage for every
        registered subcommand (the satellite CI smoke, run in-process)."""
        for name, _, _, _ in _COMMANDS:
            with pytest.raises(SystemExit) as exit_info:
                main([name, "--help"])
            assert exit_info.value.code == 0
            out = capsys.readouterr().out
            assert f"repro {name}" in out

    def test_command_table_covers_legacy_commands(self):
        names = {name for name, _, _, _ in _COMMANDS}
        assert {"fig2", "fig3", "fig4", "fig5", "all", "compare",
                "sensitivity", "roofline", "sweep", "arch", "area",
                "run"} <= names

    def test_sweep_json_dump(self, capsys, tmp_path):
        out_path = tmp_path / "records.json"
        assert main(["sweep", "--system", "crossbar", "--network", "tiny",
                     "--json", str(out_path)]) == 0
        capsys.readouterr()
        records = json.loads(out_path.read_text())
        assert records and all("energy_per_mac_pj" in row
                               for row in records)
        assert {row["system"] for row in records} == {"crossbar"}

    def test_compare_json_dump(self, capsys, tmp_path):
        out_path = tmp_path / "compare.json"
        assert main(["compare", "--system", "albireo", "--json",
                     str(out_path)]) == 0
        capsys.readouterr()
        records = json.loads(out_path.read_text())
        assert {row["system"] for row in records} == {"albireo"}
        assert all("weight_conversion_pj_per_mac" in row
                   for row in records)

    def test_run_spec_command(self, capsys, tmp_path):
        spec = {
            "name": "cli-spec",
            "systems": ["crossbar"],
            "networks": ["tiny"],
            "scenarios": ["conservative"],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        json_path = tmp_path / "out.json"
        assert main(["run", str(spec_path), "--json",
                     str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-spec" in out and "pJ/MAC" in out
        records = json.loads(json_path.read_text())
        assert len(records) == 1
        assert records[0]["system"] == "crossbar"

    def test_json_dash_keeps_stdout_parseable(self, capsys):
        """--json - claims stdout for the records; the table moves to
        stderr so piping into a JSON consumer works."""
        assert main(["sweep", "--system", "crossbar", "--network", "tiny",
                     "--json", "-"]) == 0
        captured = capsys.readouterr()
        records = json.loads(captured.out)
        assert len(records) == 24
        assert "pJ/MAC" in captured.err  # table still shown, on stderr

    def test_run_spec_unknown_system_lists_options(self, tmp_path):
        from repro.exceptions import SpecError

        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({"systems": ["warpdrive"],
                                         "networks": ["tiny"]}))
        with pytest.raises(SpecError, match="albireo"):
            main(["run", str(spec_path)])
