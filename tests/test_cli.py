"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "error" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "VGG16" in out and "AlexNet" in out

    def test_arch(self, capsys):
        assert main(["arch"]) == 0
        out = capsys.readouterr().out
        assert "GlobalBuffer" in out and "star_coupler" in out

    def test_arch_scenario_flag(self, capsys):
        assert main(["arch", "--scenario", "aggressive"]) == 0
        assert "aggressive" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "mm^2" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["warp"])

    def test_bad_scenario_raises(self):
        from repro.exceptions import CalibrationError

        with pytest.raises(CalibrationError):
            main(["arch", "--scenario", "optimistic"])
