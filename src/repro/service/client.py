"""urllib client for the evaluation daemon: submit, stream, rebuild.

:class:`ServiceClient` speaks :mod:`repro.service.protocol` over plain
``urllib`` (stdlib ``http.client`` decodes the chunked NDJSON stream
transparently), so a caller three lines deep gets the daemon's warm
pool and shared cache::

    client = ServiceClient("http://127.0.0.1:8100")
    handle = client.submit(study)            # Study, spec dict, or
    results = handle.result()                # SubmitRequest
    assert results == study.run()            # bit-identical records

Failure mapping mirrors the CLI contract: an unreachable / draining /
full daemon raises :class:`~repro.exceptions.ServiceUnavailable`; any
structured error body the server answers with (bad spec, unknown job,
server-side failure) raises :class:`~repro.exceptions.ServiceError`
carrying the server's own type name and one-line message.  Neither ever
surfaces raw HTML or a traceback.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional, Union

from repro.api.results import Record, ResultSet
from repro.api.study import Study
from repro.engine.executor import FailurePolicy
from repro.exceptions import ServiceError, ServiceUnavailable
from repro.service import protocol
from repro.service.protocol import SubmitRequest

#: Submission forms :meth:`ServiceClient.submit` accepts.
StudyLike = Union[Study, Dict[str, Any], SubmitRequest]


class JobHandle:
    """One submitted job, client-side: stream its events, collect its
    records, poll its status, cancel it, fetch its trace."""

    def __init__(self, client: "ServiceClient", job_id: str) -> None:
        self.client = client
        self.id = job_id

    # -- streaming -----------------------------------------------------
    def events(self, since: int = 0,
               heartbeat: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield the job's protocol events (``queued`` … ``done``) as
        the server streams them; late calls replay from ``since``.
        The iterator ends after the terminal ``done`` event."""
        path = f"/v1/studies/{self.id}/events?since={int(since)}"
        if heartbeat is not None:
            path += f"&heartbeat={heartbeat}"
        response = self.client._request("GET", path, stream=True)
        try:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line:
                    yield protocol.decode_event(line)
        finally:
            response.close()

    def records(self) -> Iterator[Record]:
        """Yield each completed point as a rebuilt
        :class:`~repro.api.results.Record` / ``FailedRecord`` — the
        streaming analogue of iterating a local ``study.run()`` result.

        Raises :class:`ServiceError` if the job ends ``failed`` or
        ``cancelled`` (records already yielded stand — the partial
        prefix is real data).
        """
        failure: Optional[Dict[str, Any]] = None
        for body in self.events():
            kind = body.get("event")
            if kind == "record":
                # One-row rebuild through the same inverse the local
                # report path uses, so streamed == local, bit for bit.
                yield next(iter(ResultSet.from_records(
                    [body["record"]])))
            elif kind == "error":
                failure = body
            elif kind == "done" and body.get("status") != protocol.DONE:
                status = body.get("status")
                detail = (f": {failure['error']}: {failure['message']}"
                          if failure else "")
                raise ServiceError(
                    f"job {self.id} ended {status}{detail}")

    def result(self) -> ResultSet:
        """Block until the job completes; returns the full
        :class:`ResultSet` (equal to the local run's)."""
        return ResultSet(self.records())

    # -- point queries -------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The ``GET /v1/studies/<id>`` snapshot."""
        return self.client._request("GET", f"/v1/studies/{self.id}")

    def cancel(self) -> bool:
        """Request cancellation; False when the job already finished."""
        try:
            body = self.client._request(
                "DELETE", f"/v1/studies/{self.id}")
        except ServiceError as error:
            if getattr(error, "status_code", None) == 409:
                return False
            raise
        return bool(body.get("cancelled"))

    def trace(self) -> str:
        """The job's Chrome-trace JSON (``trace=True`` submissions,
        after completion)."""
        response = self.client._request(
            "GET", f"/v1/studies/{self.id}/trace", stream=True)
        try:
            return response.read().decode("utf-8")
        finally:
            response.close()


class ServiceClient:
    """Thin, dependency-free client for one daemon ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- protocol ------------------------------------------------------
    def submit(self, study: StudyLike, workers: Optional[int] = None,
               failure_policy: Optional[FailurePolicy] = None,
               trace: bool = False) -> JobHandle:
        """Submit a study (a :class:`Study`, its spec dict, or a
        prebuilt :class:`SubmitRequest`); returns immediately with a
        :class:`JobHandle` while the daemon queues and runs it."""
        if isinstance(study, SubmitRequest):
            request = study
        else:
            spec = study.to_dict() if isinstance(study, Study) else study
            request = SubmitRequest(spec=dict(spec), workers=workers,
                                    failure_policy=failure_policy,
                                    trace=trace)
        body = self._request("POST", "/v1/studies",
                             body=request.to_dict())
        return JobHandle(self, body["job"])

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def studies(self) -> Any:
        return self._request("GET", "/v1/studies")["studies"]

    def handle(self, job_id: str) -> JobHandle:
        """Re-attach to an existing job by id (e.g. across client
        restarts — the daemon keeps completed jobs' event buffers)."""
        return JobHandle(self, job_id)

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 stream: bool = False) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            response = urllib.request.urlopen(request,
                                              timeout=self.timeout)
        except urllib.error.HTTPError as error:
            raise self._decode_error(error, path) from None
        except urllib.error.URLError as error:
            raise ServiceUnavailable(
                f"cannot reach evaluation service at {self.base_url}: "
                f"{error.reason}") from None
        if stream:
            return response
        payload = json.loads(response.read().decode("utf-8"))
        if isinstance(payload, dict):
            protocol.check_protocol(payload, f"{method} {path}")
        return payload

    def _decode_error(self, error: urllib.error.HTTPError,
                      path: str) -> ServiceError:
        """Fold the server's structured JSON error body into the local
        exception hierarchy (503 and server-declared ``ServiceUnavailable``
        stay retryable)."""
        try:
            body = json.loads(error.read().decode("utf-8"))
            kind = body["error"]
            message = body["message"]
        except Exception:
            kind, message = "HTTPError", f"status {error.code}"
        text = (f"service request {path} failed ({error.code}): "
                f"{kind}: {message}")
        if error.code == 503 or kind == "ServiceUnavailable":
            mapped: ServiceError = ServiceUnavailable(text)
        else:
            mapped = ServiceError(text)
        mapped.status_code = error.code
        mapped.server_error = kind
        return mapped
