"""Bounded FIFO job queue with a single executor thread.

The daemon owns exactly one :class:`~repro.engine.pool.WorkerPool` and
one shared :class:`~repro.engine.cache.EvaluationCache`; neither is safe
to drive from several threads at once.  The queue is what makes the
HTTP layer's concurrency safe anyway: any number of submitter threads
append to a bounded FIFO (full queue -> :class:`~repro.exceptions.
ServiceUnavailable`, never silent corruption), and one executor thread
drains it strictly in submission order, so pool and cache only ever see
serialized access while submitters and event-stream readers stay fully
concurrent.

Each submission becomes a :class:`ServiceJob`: status lifecycle
(``queued -> running -> done|failed|cancelled``), an append-only event
buffer every reader can stream independently (late subscribers replay
from the start, then follow live), cooperative cancellation, and an
optional per-job :mod:`repro.obs` trace captured by the executor.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.service import protocol
from repro.service.protocol import SubmitRequest
from repro.exceptions import ServiceUnavailable


class JobCancelled(Exception):
    """Internal control flow: a running job observed its cancel flag
    (raised from the streaming callback to unwind the evaluation)."""


class ServiceJob:
    """One submitted study: status, event buffer, outcome counters.

    Thread model: the executor thread is the only writer of ``status``
    after the job leaves the queue and the only caller of :meth:`emit`;
    any number of reader threads iterate :meth:`stream` concurrently.
    All shared state is guarded by the job's condition variable.
    """

    def __init__(self, job_id: str, request: SubmitRequest,
                 seq: int) -> None:
        self.id = job_id
        self.request = request
        self.seq = seq
        self.status = protocol.QUEUED
        #: Set once the study compiles server-side (the ``started``
        #: event's ``total``); ``None`` while queued.
        self.total: Optional[int] = None
        self.records = 0
        self.failures = 0
        #: ``(error type, one-line message)`` when ``status == failed``.
        self.error: Optional[tuple] = None
        #: The per-job :class:`~repro.obs.Trace` (``trace: true``
        #: submissions only), set by the executor on completion.
        self.trace: Any = None
        self._events: List[Dict[str, Any]] = []
        self._cond = threading.Condition()
        self._cancel = threading.Event()

    # ------------------------------------------------------------------
    # Written by the executor / queue
    # ------------------------------------------------------------------
    def emit(self, body: Dict[str, Any]) -> None:
        """Append one event and wake every streaming reader."""
        with self._cond:
            self._events.append(body)
            self._cond.notify_all()

    def finish(self, status: str) -> None:
        """Enter a terminal status and emit the ``done`` event (always
        the buffer's last entry, so streams know where to stop)."""
        with self._cond:
            self.status = status
            self._events.append(protocol.done_event(
                self.id, status, self.records, self.failures))
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def cancel(self) -> bool:
        """Request cancellation; returns False once the job is already
        terminal.  A queued job is skipped when the executor reaches
        it; a running one unwinds at its next record completion."""
        with self._cond:
            if self.status in protocol.TERMINAL_STATUSES:
                return False
            self._cancel.set()
            return True

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.status in protocol.TERMINAL_STATUSES

    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /v1/studies/<id>`` body."""
        with self._cond:
            body = {
                "job": self.id,
                "status": self.status,
                "events": len(self._events),
                "records": self.records,
                "failures": self.failures,
                "protocol": protocol.PROTOCOL_VERSION,
            }
            if self.total is not None:
                body["total"] = self.total
            if self.error is not None:
                body["error"], body["message"] = self.error
            body["trace"] = self.trace is not None
            return body

    def stream(self, since: int = 0,
               heartbeat: Optional[float] = None) -> Iterator[Dict[str, Any]]:
        """Yield events from index ``since``: buffered history first,
        then live events as they land, ending after the terminal
        ``done`` event.  While caught up and waiting, a ``heartbeat``
        event is yielded every ``heartbeat`` seconds (not buffered —
        each reader gets its own), keeping slow jobs' connections
        visibly alive.
        """
        index = max(0, since)
        while True:
            with self._cond:
                while index >= len(self._events):
                    if self.status in protocol.TERMINAL_STATUSES:
                        return
                    if not self._cond.wait(timeout=heartbeat):
                        break  # heartbeat tick (outside the lock)
                batch = self._events[index:]
                index += len(batch)
            if not batch:
                yield protocol.event("heartbeat", job=self.id,
                                     status=self.status)
                continue
            for body in batch:
                yield body


class JobQueue:
    """The daemon's scheduler: bounded FIFO + one executor thread.

    ``execute(job)`` is the service's evaluation hook, called on the
    executor thread with the job already in ``running`` state; it emits
    ``started``/``record``/``progress`` events and maintains the job's
    outcome counters.  The queue handles everything around it: ordering,
    status transitions, the terminal event, cancellation, failure
    capture (an exception out of ``execute`` becomes a structured
    ``error`` event + ``failed`` status — the daemon never dies with a
    job), and drain-for-shutdown.
    """

    def __init__(self, execute: Callable[[ServiceJob], None],
                 limit: int = 32) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self._execute = execute
        self.limit = limit
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, ServiceJob] = {}
        self._pending: deque = deque()
        self._running: Optional[ServiceJob] = None
        self._accepting = True
        self._stopping = False
        self._seq = itertools.count(1)
        #: Terminal job ids in completion order (drives the in-order
        #: execution guarantee's tests and the stats endpoint).
        self.finished: List[str] = []
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-service-executor",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Submit side (any thread)
    # ------------------------------------------------------------------
    def submit(self, request: SubmitRequest) -> ServiceJob:
        """Enqueue; raises :class:`ServiceUnavailable` when the daemon
        is draining or the FIFO is at its bound."""
        with self._wake:
            if not self._accepting:
                raise ServiceUnavailable(
                    "service is draining for shutdown; not accepting "
                    "new studies")
            if len(self._pending) >= self.limit:
                raise ServiceUnavailable(
                    f"job queue is full ({self.limit} queued studies); "
                    f"retry after some complete")
            seq = next(self._seq)
            job = ServiceJob(f"job-{seq}", request, seq)
            position = len(self._pending)
            self._jobs[job.id] = job
            self._pending.append(job)
            self._wake.notify_all()
        job.emit(protocol.event(
            "queued", job=job.id, position=position,
            protocol=protocol.PROTOCOL_VERSION))
        return job

    def get(self, job_id: str) -> Optional[ServiceJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[ServiceJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (the health/stats summaries)."""
        counts = {protocol.QUEUED: 0, protocol.RUNNING: 0,
                  protocol.DONE: 0, protocol.FAILED: 0,
                  protocol.CANCELLED: 0}
        for job in self.jobs():
            counts[job.status] += 1
        return counts

    def cancel(self, job_id: str) -> bool:
        job = self.get(job_id)
        return job.cancel() if job is not None else False

    # ------------------------------------------------------------------
    # Shutdown (main / signal-handler thread)
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting and wait for queued + running jobs to finish.

        Returns True when the queue emptied (False on timeout — jobs
        keep running; call again or :meth:`close` without drain).
        """
        with self._wake:
            self._accepting = False
            return self._wake.wait_for(
                lambda: not self._pending and self._running is None,
                timeout=timeout)

    def close(self, drain: bool = False,
              timeout: Optional[float] = None) -> None:
        """Shut the executor down.  ``drain=True`` finishes all accepted
        work first; otherwise still-queued jobs finalize as cancelled
        (the running one, if any, is flagged and unwinds at its next
        record).  Idempotent."""
        if drain:
            self.drain(timeout=timeout)
        with self._wake:
            self._accepting = False
            self._stopping = True
            if not drain:
                for job in self._pending:
                    job.cancel()
                if self._running is not None:
                    self._running.cancel()
            self._wake.notify_all()
        self._thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Executor thread
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._stopping:
                    self._wake.wait()
                if not self._pending and self._stopping:
                    return
                job = self._pending.popleft()
                self._running = job
            try:
                if job.cancelled:
                    job.finish(protocol.CANCELLED)
                    continue
                job.status = protocol.RUNNING
                try:
                    self._execute(job)
                except JobCancelled:
                    job.finish(protocol.CANCELLED)
                except Exception as error:  # job fails, daemon survives
                    job.error = tuple(
                        protocol.error_body(error).values())
                    job.emit(protocol.event(
                        "error", **protocol.error_body(error)))
                    job.finish(protocol.FAILED)
                else:
                    job.finish(protocol.DONE)
            finally:
                self.finished.append(job.id)
                with self._wake:
                    self._running = None
                    self._wake.notify_all()
