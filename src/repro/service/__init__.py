"""repro.service — the long-lived evaluation daemon and its client.

The package turns the engine's warm state (persistent
:class:`~repro.engine.pool.WorkerPool`, shared sharded
:class:`~repro.engine.cache.EvaluationCache`) into something many
callers can share: a daemon (``repro serve``) that accepts study specs
over HTTP or stdin and streams results back as NDJSON events while the
evaluation runs.

Layout::

    protocol.py   versioned JSON request/event schema (both sides)
    queue.py      bounded FIFO + single executor thread + job lifecycle
    server.py     ReproService core, HTTP transport, stdio transport
    client.py     urllib ServiceClient (``repro submit`` is built on it)

Quick start::

    from repro.service import ReproService, make_server, ServiceClient

    service = ReproService(cache="runs/cache", workers=4)
    httpd = make_server(service)          # port 0 -> ephemeral
    threading.Thread(target=httpd.serve_forever, daemon=True).start()

    client = ServiceClient(httpd.url)
    handle = client.submit({"systems": ["albireo_base"],
                            "networks": ["alexnet"]})
    for record in handle.records():       # streams as they complete
        print(record.tags, record.get("energy_total_mJ"))
"""

from repro.service.client import JobHandle, ServiceClient
from repro.service.protocol import PROTOCOL_VERSION, SubmitRequest
from repro.service.queue import JobQueue, ServiceJob
from repro.service.server import (
    ReproService,
    ServiceHTTPServer,
    make_server,
    serve,
    serve_stdio,
)

__all__ = [
    "JobHandle",
    "JobQueue",
    "PROTOCOL_VERSION",
    "ReproService",
    "ServiceClient",
    "ServiceHTTPServer",
    "ServiceJob",
    "SubmitRequest",
    "make_server",
    "serve",
    "serve_stdio",
]
