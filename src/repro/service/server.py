"""The evaluation daemon: one warm pool + one shared cache, serving
study specs over HTTP (or stdin) and streaming results back as NDJSON.

Every evaluation today pays full process startup — interpreter boot,
imports, architecture builds, cache open, worker-pool spawn.  The
daemon pays them once: a :class:`ReproService` owns one persistent
:class:`~repro.engine.pool.WorkerPool` and one shared sharded
:class:`~repro.engine.cache.EvaluationCache` for its lifetime, and a
bounded FIFO (:mod:`repro.service.queue`) serializes studies onto
them.  A second submission of a spec the cache has seen completes
without a single phase-1 task — the amortization lever a fleet of
callers shares.

Transports (both speak :mod:`repro.service.protocol`):

* **HTTP** — stdlib ``ThreadingHTTPServer``, no dependencies.
  ``POST /v1/studies`` submits (202 + job id), ``GET
  /v1/studies/<id>/events`` streams NDJSON events chunked as they
  complete (late subscribers replay from the start), plus
  ``/v1/health``, ``/v1/stats``, per-job status/trace, and ``DELETE``
  cancellation.  Errors are structured JSON bodies — never HTML.
* **stdio** — one JSON op per stdin line, events on stdout; the
  single-user form of the same protocol (``repro serve --stdio``),
  also the supervisor-friendly embedding (no port to allocate).

Shutdown is graceful: SIGTERM (and SIGINT) stop intake, drain the
queue — accepted studies finish and their streams complete — then stop
the listener and close the pool.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, TextIO, Tuple
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.api.study import Study
from repro.engine.cache import EvaluationCache
from repro.engine.executor import CacheLike
from repro.engine.pool import WorkerPool
from repro.exceptions import ReproError, ServiceUnavailable
from repro.service import protocol
from repro.service.protocol import PROTOCOL_VERSION, SubmitRequest
from repro.service.queue import JobCancelled, JobQueue, ServiceJob


class ReproService:
    """The daemon's core, transport-agnostic: warm state + job queue.

    ``cache`` is the shared :class:`EvaluationCache` (or a directory
    path opened as a sharded store; ``None`` for in-memory).  With
    ``workers > 1`` a persistent :class:`WorkerPool` is spawned lazily
    on the first parallel study and reused — with delta cache sync —
    for every study after it.
    """

    def __init__(self, cache: CacheLike = None, workers: int = 1,
                 queue_limit: int = 32) -> None:
        self.cache = (cache if isinstance(cache, EvaluationCache)
                      else EvaluationCache(cache))
        self.workers = max(1, int(workers))
        self.pool = WorkerPool(self.workers) if self.workers > 1 else None
        self.queue = JobQueue(self._execute, limit=queue_limit)
        self.draining = False
        self.submitted = 0
        self.records_streamed = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def validate(self, request: SubmitRequest) -> Study:
        """Compile-check the request's study spec (raising the precise
        :class:`~repro.exceptions.SpecError` on bad specs) so a bad
        submission fails at submit time, not minutes later in queue."""
        study = Study.from_dict(request.spec)
        study.compile()
        return study

    def submit(self, request: SubmitRequest) -> ServiceJob:
        """Validate and enqueue one study (any thread)."""
        self.validate(request)
        job = self.queue.submit(request)
        self.submitted += 1
        return job

    # ------------------------------------------------------------------
    # Execution (queue's executor thread only)
    # ------------------------------------------------------------------
    def _execute(self, job: ServiceJob) -> None:
        request = job.request
        study = Study.from_dict(request.spec)
        jobs = study.compile()
        job.total = len(jobs)
        job.emit(protocol.event("started", job=job.id, study=study.name,
                                total=job.total))
        workers = min(request.workers or self.workers, self.workers)
        pool = self.pool if workers > 1 else None

        # A record event per completed point; progress events only for
        # the liveness ticks between them (phase-1 batch completions),
        # deduplicated via the completion flag — the engine fires
        # on_record then progress at every completion site.
        just_completed = [False]

        def on_record(record, done: int, total: int) -> None:
            if job.cancelled:
                raise JobCancelled()
            job.records += 1
            if record.failed:
                job.failures += 1
            self.records_streamed += 1
            just_completed[0] = True
            job.emit(protocol.record_event(record.to_dict(), done, total))

        def on_progress(done: int, total: int, engine_job) -> None:
            if just_completed[0]:
                just_completed[0] = False
                return
            job.emit(protocol.progress_event(done, total,
                                             engine_job.describe()))

        tracer = obs.Tracer() if request.trace else None
        results = study.run(
            workers=workers, cache=self.cache, pool=pool,
            failure_policy=request.failure_policy,
            on_record=on_record, progress=on_progress,
            trace=tracer)
        if tracer is not None:
            job.trace = results.trace

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "workers": self.workers,
            "cache": self.cache.directory,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "jobs": self.queue.counts(),
        }

    def stats(self) -> Dict[str, Any]:
        """Cache + planner + pool + resilience counters, service-lifetime
        cumulative — the warm-replay acceptance check reads these."""
        body = {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "jobs": self.queue.counts(),
            "finished": list(self.queue.finished),
            "service": {
                "submitted": self.submitted,
                "records_streamed": self.records_streamed,
            },
            "cache": self.cache.stats_snapshot(),
            "planner": self.cache.planner.to_dict(),
            "mapper": self.cache.mapper_search_stats(),
            "pool": (self.pool.stats.to_dict()
                     if self.pool is not None else None),
        }
        return body

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop intake and wait for accepted studies to finish."""
        self.draining = True
        return self.queue.drain(timeout=timeout)

    def close(self, drain: bool = False,
              timeout: Optional[float] = None) -> None:
        """Stop the queue (draining first when asked), close the pool,
        and flush the cache.  Idempotent."""
        self.draining = True
        self.queue.close(drain=drain, timeout=timeout)
        if self.pool is not None:
            self.pool.close()
        if self.cache.directory is not None and self.cache.needs_flush:
            self.cache.save()


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded stdlib server bound to one :class:`ReproService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: ReproService,
                 heartbeat: float = 10.0) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.heartbeat = heartbeat

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` onto the service; every response is JSON."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{PROTOCOL_VERSION}"

    @property
    def service(self) -> ReproService:
        return self.server.service

    # -- plumbing ------------------------------------------------------
    def _send_json(self, code: int, body: Dict[str, Any]) -> None:
        data = (json.dumps(body, indent=2, sort_keys=True) + "\n") \
            .encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, code: int, error: BaseException) -> None:
        self._send_json(code, protocol.error_body(error))

    def send_error(self, code, message=None, explain=None):
        # BaseHTTPRequestHandler's default error page is HTML; the
        # protocol promises structured JSON errors everywhere, including
        # malformed-request paths handled inside http.server itself.
        self._send_json(code, {"error": "HTTPError",
                               "message": message or self.responses
                               .get(code, ("", ""))[0] or str(code)})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ReproError("request body is empty; expected JSON")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ReproError(f"request body is not valid JSON: {error}") \
                from None

    def log_message(self, format: str, *args: Any) -> None:
        # One access-log line per request on stderr (the CLI can
        # redirect it to a file; CI keeps it as an artifact).
        sys.stderr.write("%s - - %s\n" % (self.address_string(),
                                          format % args))

    # -- routing -------------------------------------------------------
    def _route(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts[:1] != ["v1"]:
                raise LookupError(self.path)
            if method == "POST" and parts == ["v1", "studies"]:
                return self._post_study()
            if method == "GET" and parts == ["v1", "health"]:
                return self._send_json(200, self.service.health())
            if method == "GET" and parts == ["v1", "stats"]:
                return self._send_json(200, self.service.stats())
            if method == "GET" and parts == ["v1", "studies"]:
                return self._send_json(200, {
                    "protocol": PROTOCOL_VERSION,
                    "studies": [job.snapshot()
                                for job in self.service.queue.jobs()],
                })
            if len(parts) >= 3 and parts[:2] == ["v1", "studies"]:
                job = self.service.queue.get(parts[2])
                if job is None:
                    raise LookupError(parts[2])
                if method == "GET" and len(parts) == 3:
                    return self._send_json(200, job.snapshot())
                if method == "DELETE" and len(parts) == 3:
                    cancelled = job.cancel()
                    return self._send_json(200 if cancelled else 409, {
                        "job": job.id, "cancelled": cancelled,
                        "status": job.status,
                    })
                if method == "GET" and parts[3:] == ["events"]:
                    return self._stream_events(job,
                                               parse_qs(parsed.query))
                if method == "GET" and parts[3:] == ["trace"]:
                    return self._send_trace(job)
            raise LookupError(self.path)
        except LookupError as missing:
            self._send_json(404, {"error": "NotFound",
                                  "message": f"no such resource: "
                                             f"{missing}"})
        except ServiceUnavailable as error:
            self._send_error(503, error)
        except ReproError as error:
            self._send_error(400, error)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer
        except Exception as error:  # never an HTML traceback
            self._send_error(500, error)

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    # -- endpoints -----------------------------------------------------
    def _post_study(self) -> None:
        request = SubmitRequest.from_dict(self._read_body())
        job = self.service.submit(request)
        self._send_json(202, {
            "protocol": PROTOCOL_VERSION,
            "job": job.id,
            "status": job.status,
            "events": f"/v1/studies/{job.id}/events",
        })

    def _stream_events(self, job: ServiceJob,
                       query: Dict[str, Any]) -> None:
        since = int(query.get("since", ["0"])[0])
        heartbeat = float(query.get("heartbeat",
                                    [str(self.server.heartbeat)])[0])
        heartbeat = max(0.05, heartbeat)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for body in job.stream(since=since, heartbeat=heartbeat):
                self._write_chunk(protocol.encode_event(body))
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _write_chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _send_trace(self, job: ServiceJob) -> None:
        if job.trace is None:
            raise LookupError(
                f"{job.id} has no trace (submit with \"trace\": true "
                f"and wait for completion)")
        data = (job.trace.to_chrome_json() + "\n").encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


def make_server(service: ReproService, host: str = "127.0.0.1",
                port: int = 0,
                heartbeat: float = 10.0) -> ServiceHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without serving yet —
    callers drive ``serve_forever`` themselves (tests run it on a
    thread; :func:`serve` runs it in the foreground)."""
    return ServiceHTTPServer((host, port), service, heartbeat=heartbeat)


def serve(service: ReproService, host: str = "127.0.0.1", port: int = 0,
          heartbeat: float = 10.0, banner: Optional[TextIO] = None,
          install_signal_handlers: bool = True) -> int:
    """Foreground daemon loop with graceful drain.

    Prints one parseable banner line (``repro-service listening on
    <url> ...``) to ``banner`` (default stdout) once bound, then serves
    until SIGTERM/SIGINT: intake stops (submits answer 503), accepted
    studies finish and their event streams complete, then the listener
    closes.  Returns the process exit code.
    """
    httpd = make_server(service, host=host, port=port, heartbeat=heartbeat)
    out = banner if banner is not None else sys.stdout
    out.write(f"repro-service listening on {httpd.url} "
              f"(workers={service.workers}, "
              f"cache={service.cache.directory or 'memory'})\n")
    out.flush()

    def _drain_and_stop() -> None:
        service.drain()
        httpd.shutdown()

    def _on_signal(signum, frame) -> None:
        # Drain can take as long as the queue is deep — never block the
        # signal handler; a second signal is idempotent (drain and
        # shutdown both tolerate repeats).
        threading.Thread(target=_drain_and_stop, daemon=True).start()

    if install_signal_handlers:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()
        service.close(drain=False)
    return 0


# ---------------------------------------------------------------------------
# stdio transport
# ---------------------------------------------------------------------------

#: stdio ops (one JSON object per line): ``{"op": "submit", ...}``
#: streams the job's events inline and blocks until its ``done`` event;
#: ``health``/``stats`` answer one event line; ``shutdown`` drains and
#: exits the loop.
STDIO_OPS = ("submit", "health", "stats", "shutdown")


def serve_stdio(service: ReproService, stdin: Optional[TextIO] = None,
                stdout: Optional[TextIO] = None) -> int:
    """The single-caller transport: requests on stdin, NDJSON on stdout.

    Serialized by construction (ops are handled one line at a time),
    which makes it the deterministic round-trip harness for the whole
    protocol — and a way to embed the daemon under a supervisor without
    allocating a port.  EOF on stdin behaves like ``shutdown``.
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout

    def reply(body: Dict[str, Any]) -> None:
        stdout.write(protocol.encode_event(body))
        stdout.flush()

    reply(protocol.event("ready", protocol=PROTOCOL_VERSION,
                         workers=service.workers,
                         cache=service.cache.directory))
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            reply(protocol.event("error", error="ServiceError",
                                 message=f"bad request line: {error}"))
            continue
        op = payload.get("op") if isinstance(payload, dict) else None
        if op == "shutdown":
            break
        if op == "health":
            reply(protocol.event("health", **service.health()))
            continue
        if op == "stats":
            reply(protocol.event("stats", **service.stats()))
            continue
        if op == "submit":
            body = {key: value for key, value in payload.items()
                    if key != "op"}
            try:
                job = service.submit(SubmitRequest.from_dict(body))
            except ReproError as error:
                reply(protocol.event("error",
                                     **protocol.error_body(error)))
                continue
            for event_body in job.stream():
                reply(event_body)
            continue
        reply(protocol.event(
            "error", error="ServiceError",
            message=f"unknown op {op!r}; options: {list(STDIO_OPS)}"))
    service.drain()
    reply(protocol.event("bye", **service.queue.counts()))
    service.close(drain=False)
    return 0
