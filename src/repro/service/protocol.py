"""The service wire protocol: versioned JSON requests, NDJSON events.

Everything the daemon and its clients exchange is defined here, so the
two sides (and the stdio transport) can never drift:

* :class:`SubmitRequest` — the body of ``POST /v1/studies`` (and the
  stdio ``submit`` op): a plain :meth:`~repro.api.Study.from_dict`
  study spec, either bare or wrapped as ``{"spec": ..., "workers": N,
  "failure_policy": {...}, "trace": true}``.
* Event constructors/codecs — each line of a ``/v1/studies/<id>/events``
  stream is one JSON object with an ``"event"`` discriminator
  (``queued``, ``started``, ``record``, ``progress``, ``heartbeat``,
  ``error``, ``done``), newline-terminated (NDJSON).  ``record`` events
  embed the exact flat row :meth:`~repro.api.results.Record.to_dict`
  produces, so a client that collects them holds data bit-identical to
  a local :meth:`~repro.api.Study.run`.
* :func:`error_body` — the structured JSON error shape every non-2xx
  response carries (``{"error": <type>, "message": <one line>}``);
  the server never answers with an HTML traceback.

The protocol is versioned: responses and ``queued`` events carry
``"protocol": 1``; a client seeing a higher major version should
refuse rather than misparse.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.engine.executor import FailurePolicy
from repro.exceptions import ServiceError

#: Bumped on breaking changes to request or event shapes.
PROTOCOL_VERSION = 1

#: Job lifecycle states (``GET /v1/studies/<id>`` ``status`` field).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves; an event stream ends at the first
#: ``done`` event, whose ``status`` field is one of these.
TERMINAL_STATUSES = (DONE, FAILED, CANCELLED)

#: Valid keys of a wrapped submit body.
SUBMIT_KEYS = ("spec", "workers", "failure_policy", "trace")
#: Valid keys of the ``failure_policy`` object (mirrors
#: :class:`~repro.engine.executor.FailurePolicy`).
FAILURE_POLICY_KEYS = ("on_error", "max_retries", "backoff",
                      "task_timeout")


@dataclasses.dataclass(frozen=True)
class SubmitRequest:
    """One study submission: the spec plus per-job execution options.

    ``workers`` requests an execution width (clamped server-side to the
    daemon's pool; ``None`` means the daemon's default), ``failure_policy``
    makes the job fault-tolerant exactly as :meth:`Study.run` would, and
    ``trace`` captures a per-job :mod:`repro.obs` span timeline served
    at ``GET /v1/studies/<id>/trace``.
    """

    spec: Dict[str, Any]
    workers: Optional[int] = None
    failure_policy: Optional[FailurePolicy] = None
    trace: bool = False

    @classmethod
    def from_dict(cls, payload: Any) -> "SubmitRequest":
        """Decode a submit body — bare study spec or wrapped envelope.

        A dict without a ``"spec"`` key is treated as a bare study spec
        (every option at its default).  Unknown envelope keys, bad
        option types, and malformed failure policies raise
        :class:`~repro.exceptions.ServiceError`; the *study spec* itself
        is validated by the server via :meth:`Study.from_dict` (so spec
        errors keep their precise messages).
        """
        if not isinstance(payload, Mapping):
            raise ServiceError(
                f"submit body must be a JSON object, got "
                f"{type(payload).__name__}")
        if "spec" not in payload:
            return cls(spec=dict(payload))
        unknown = sorted(set(payload) - set(SUBMIT_KEYS))
        if unknown:
            raise ServiceError(
                f"unknown submit keys {unknown}; "
                f"options: {sorted(SUBMIT_KEYS)}")
        spec = payload["spec"]
        if not isinstance(spec, Mapping):
            raise ServiceError(
                f"submit 'spec' must be a study spec object, got "
                f"{type(spec).__name__}")
        workers = payload.get("workers")
        if workers is not None:
            if not isinstance(workers, int) or isinstance(workers, bool) \
                    or workers < 1:
                raise ServiceError(
                    f"submit 'workers' must be a positive integer, got "
                    f"{workers!r}")
        trace = payload.get("trace", False)
        if not isinstance(trace, bool):
            raise ServiceError(
                f"submit 'trace' must be a boolean, got {trace!r}")
        return cls(spec=dict(spec), workers=workers,
                   failure_policy=_failure_policy_from_dict(
                       payload.get("failure_policy")),
                   trace=trace)

    def to_dict(self) -> Dict[str, Any]:
        """The wire form (inverse of :meth:`from_dict`)."""
        body: Dict[str, Any] = {"spec": self.spec}
        if self.workers is not None:
            body["workers"] = self.workers
        if self.failure_policy is not None:
            policy = self.failure_policy
            body["failure_policy"] = {
                "on_error": policy.on_error,
                "max_retries": policy.max_retries,
                "backoff": policy.backoff,
                "task_timeout": policy.task_timeout,
            }
        if self.trace:
            body["trace"] = True
        return body


def _failure_policy_from_dict(payload: Any) -> Optional[FailurePolicy]:
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise ServiceError(
            f"submit 'failure_policy' must be an object, got "
            f"{type(payload).__name__}")
    unknown = sorted(set(payload) - set(FAILURE_POLICY_KEYS))
    if unknown:
        raise ServiceError(
            f"unknown failure_policy keys {unknown}; "
            f"options: {sorted(FAILURE_POLICY_KEYS)}")
    try:
        return FailurePolicy(**{key: payload[key]
                                for key in FAILURE_POLICY_KEYS
                                if key in payload})
    except (TypeError, ValueError) as error:
        raise ServiceError(f"bad failure_policy: {error}") from None


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


def event(kind: str, **fields: Any) -> Dict[str, Any]:
    """One stream event: the ``"event"`` discriminator plus fields."""
    body = {"event": kind}
    body.update(fields)
    return body


def record_event(row: Mapping[str, Any], done: int,
                 total: int) -> Dict[str, Any]:
    """A completed study point: the record's flat row (exactly
    :meth:`Record.to_dict` — tags then metrics, or tags then failure
    facts) plus stream progress counters."""
    return event("record", done=done, total=total, record=dict(row))


def progress_event(done: int, total: int, label: str) -> Dict[str, Any]:
    """Liveness between records (phase-1 batch completions and cache
    hits tick this even when no new record is ready)."""
    return event("progress", done=done, total=total, label=label)


def done_event(job_id: str, status: str, records: int,
               failures: int) -> Dict[str, Any]:
    """The stream terminator; ``status`` is a :data:`TERMINAL_STATUSES`
    member and ``records``/``failures`` summarize the outcome."""
    return event("done", job=job_id, status=status, records=records,
                 failures=failures)


def encode_event(body: Mapping[str, Any]) -> str:
    """One NDJSON line (compact separators, trailing newline).

    Floats round-trip exactly through ``json`` (repr-based), which is
    what keeps streamed records bit-identical to local results.
    """
    return json.dumps(body, separators=(",", ":"), sort_keys=True) + "\n"


def decode_event(line: str) -> Dict[str, Any]:
    """Parse one stream line; raises :class:`ServiceError` on garbage
    (truncated JSON, or a JSON value that is not an event object)."""
    try:
        body = json.loads(line)
    except json.JSONDecodeError as error:
        raise ServiceError(
            f"bad event line from server: {error}") from None
    if not isinstance(body, dict) or "event" not in body:
        raise ServiceError(
            f"bad event line from server (no 'event' key): {line!r}")
    return body


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------


def error_body(error: BaseException) -> Dict[str, str]:
    """The structured JSON body every error response carries: the
    exception type name plus its first message line — never a
    traceback, never HTML."""
    message = str(error) or type(error).__name__
    return {"error": type(error).__name__,
            "message": message.splitlines()[0] if message else ""}


def check_protocol(payload: Mapping[str, Any], context: str) -> None:
    """Client-side version gate: refuse payloads stamped with a newer
    protocol than this client speaks (missing stamps pass — older
    servers predate stamping)."""
    version = payload.get("protocol")
    if version is not None and version > PROTOCOL_VERSION:
        raise ServiceError(
            f"{context}: server speaks protocol {version}, this client "
            f"speaks {PROTOCOL_VERSION}; upgrade the client")
