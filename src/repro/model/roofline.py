"""Roofline analysis: compute-bound vs memory-bound placement per layer.

Given a system's peak throughput and DRAM bandwidth, each layer lands on
the classic roofline: attainable throughput is the lesser of the compute
peak and ``arithmetic intensity x memory bandwidth``.  This complements
the paper's utilization analysis (Fig. 3 explains the gap *below* the
compute roof) by also explaining when the roof itself is the memory slope
— which the bandwidth-extended model can now place layers against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.hierarchy import Architecture
from repro.mapping.analysis import analyze
from repro.mapping.mapping import Mapping
from repro.report.ascii import format_table
from repro.workloads.layer import ConvLayer


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position against the roofline."""

    layer: str
    #: MACs per byte of DRAM traffic (arithmetic intensity).
    intensity: float
    #: min(compute peak, intensity x bandwidth), in MACs/cycle.
    attainable_macs_per_cycle: float
    #: What the mapped schedule actually achieves.
    achieved_macs_per_cycle: float
    #: "compute" or "memory" — which roof caps this layer.
    bound: str

    @property
    def roof_efficiency(self) -> float:
        """Achieved as a fraction of attainable (mapping quality)."""
        if self.attainable_macs_per_cycle == 0:
            return 0.0
        return (self.achieved_macs_per_cycle
                / self.attainable_macs_per_cycle)


@dataclass(frozen=True)
class RooflineResult:
    points: Tuple[RooflinePoint, ...]
    peak_macs_per_cycle: int
    bandwidth_bytes_per_cycle: Optional[float]

    @property
    def memory_bound_layers(self) -> List[str]:
        return [p.layer for p in self.points if p.bound == "memory"]

    def table(self) -> str:
        rows = []
        for point in self.points:
            rows.append((
                point.layer,
                f"{point.intensity:.1f}",
                f"{point.attainable_macs_per_cycle:.0f}",
                f"{point.achieved_macs_per_cycle:.0f}",
                point.bound,
                f"{point.roof_efficiency:.0%}",
            ))
        header = (f"Roofline: peak {self.peak_macs_per_cycle} MACs/cycle"
                  + (f", {self.bandwidth_bytes_per_cycle:.1f} B/cycle DRAM"
                     if self.bandwidth_bytes_per_cycle else
                     ", unbounded DRAM"))
        return header + "\n" + format_table(
            ("layer", "MACs/byte", "attainable", "achieved", "bound",
             "roof eff."),
            rows, align_right=[False, True, True, True, False, True])


def layer_roofline(
    architecture: Architecture,
    layer: ConvLayer,
    mapping: Mapping,
) -> RooflinePoint:
    """Place one mapped layer against its architecture's roofline."""
    counts = analyze(architecture, layer, mapping, check_capacity=False)
    outer = architecture.storage_levels[0]
    dram_bytes = counts.traffic_bits.get(outer.name, 0.0) / 8.0
    intensity = counts.padded_macs / dram_bytes if dram_bytes else float("inf")
    peak = float(architecture.peak_parallelism)
    if outer.bandwidth_bits_per_cycle is not None:
        bandwidth_bytes = outer.bandwidth_bits_per_cycle / 8.0
        memory_roof = intensity * bandwidth_bytes
    else:
        memory_roof = float("inf")
    attainable = min(peak, memory_roof)
    achieved = counts.real_macs / counts.effective_cycles
    return RooflinePoint(
        layer=layer.name,
        intensity=intensity,
        attainable_macs_per_cycle=attainable,
        achieved_macs_per_cycle=achieved,
        bound="memory" if memory_roof < peak else "compute",
    )


def network_roofline(system, network) -> RooflineResult:
    """Roofline placement for every unique layer of a network.

    ``system`` is any object with ``architecture`` and
    ``reference_mapping`` (AlbireoSystem, CrossbarSystem, or a custom
    bundle); strided-workload transforms are honored when the system
    provides ``analysis_layer``.
    """
    architecture = system.architecture
    outer = architecture.storage_levels[0]
    points = []
    for entry in network:
        layer = entry.layer
        target = layer
        if hasattr(system, "analysis_layer"):
            target = system.analysis_layer(layer)
        mapping = system.reference_mapping(layer)
        points.append(layer_roofline(architecture, target, mapping))
    bandwidth = (outer.bandwidth_bits_per_cycle / 8.0
                 if outer.bandwidth_bits_per_cycle is not None else None)
    return RooflineResult(
        points=tuple(points),
        peak_macs_per_cycle=architecture.peak_parallelism,
        bandwidth_bytes_per_cycle=bandwidth,
    )
