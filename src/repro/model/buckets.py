"""Grouping energy entries into the paper's figure buckets.

The paper reports energy under two different groupings:

* **Fig. 2** (component view): MRR, MZM, Laser, AO/AE, DE/AE, AE/DE, Cache.
* **Figs. 4-5** (dataspace-conversion view): "Weight DE/AE, AE/AO",
  "Input DE/AE, AE/AO", "Output AO/AE, AE/DE", "Other AO", "On-Chip
  Buffer", "DRAM".

A :class:`BucketScheme` is an ordered list of rules mapping (component
instance, dataspace) pairs to bucket labels; first match wins, with an
explicit default for anything unmatched so new components can never vanish
silently from a figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.workloads.dataspace import DataSpace


@dataclass(frozen=True)
class BucketRule:
    """One matching rule.

    ``component`` matches the instance name exactly, or any instance when
    set to ``"*"``.  ``dataspace`` matches exactly, or any (including none)
    when ``None``.
    """

    component: str
    dataspace: Optional[DataSpace]
    bucket: str
    match_any_dataspace: bool = False

    def matches(self, component: str,
                dataspace: Optional[DataSpace]) -> bool:
        if self.component != "*" and self.component != component:
            return False
        if self.match_any_dataspace:
            return True
        return self.dataspace == dataspace


@dataclass(frozen=True)
class BucketScheme:
    """An ordered rule list with a default bucket."""

    name: str
    rules: Tuple[BucketRule, ...]
    default: str = "Other"
    #: Preferred display order of buckets (unlisted buckets go last).
    order: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "order", tuple(self.order))

    def bucket_of(self, component: str,
                  dataspace: Optional[DataSpace]) -> str:
        for rule in self.rules:
            if rule.matches(component, dataspace):
                return rule.bucket
        return self.default

    def sort_key(self, bucket: str) -> Tuple[int, str]:
        try:
            return (self.order.index(bucket), bucket)
        except ValueError:
            return (len(self.order), bucket)


def component_rule(component: str, bucket: str) -> BucketRule:
    """Rule matching one component for every dataspace."""
    return BucketRule(component=component, dataspace=None, bucket=bucket,
                      match_any_dataspace=True)


def dataspace_rule(component: str, dataspace: DataSpace,
                   bucket: str) -> BucketRule:
    """Rule matching one (component, dataspace) pair."""
    return BucketRule(component=component, dataspace=dataspace, bucket=bucket)
