"""Full-system evaluation (the CiMLoop-equivalent layer).

Ties together an architecture, an energy table, a workload, and mappings to
produce the paper's output quantities: per-component energy breakdowns
(groupable into the paper's figure buckets), throughput with utilization
losses, area, and whole-network results with the system-level options the
paper explores — batching and layer fusion.
"""

from repro.model.accelerator import AcceleratorModel, NetworkOptions
from repro.model.buckets import BucketRule, BucketScheme
from repro.model.results import (
    EnergyBreakdown,
    LayerEvaluation,
    NetworkEvaluation,
)

__all__ = [
    "AcceleratorModel",
    "BucketRule",
    "BucketScheme",
    "EnergyBreakdown",
    "LayerEvaluation",
    "NetworkEvaluation",
    "NetworkOptions",
]
