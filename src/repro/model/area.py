"""Chip area accounting with event-rate-aware instance counts.

The naive instance count for a node is the product of fanout sizes above
its list position.  That undercounts converter stages whose physical
replication is driven by *throughput*, not position: Albireo's output
ADCs sit above the analog summation fanout, but the hardware needs one
ADC per summation group to sustain one conversion per group per cycle.

:func:`area_report` therefore sizes each converter stage by its
steady-state event rate from a reference analysis: a stage firing E times
over C cycles needs ``ceil(E / C)`` converter instances (each doing one
conversion per cycle).  Storage and compute keep positional counts.
This removes the undercount documented in DESIGN.md for area purposes;
energy counts were never affected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.hierarchy import (
    Architecture,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.energy.table import EnergyTable
from repro.mapping.analysis import AccessCounts
from repro.report.ascii import format_table


@dataclass(frozen=True)
class AreaReport:
    """Per-node area with the instance counts used to compute it."""

    name: str
    entries: Tuple[Tuple[str, int, float], ...]  # (node, instances, um2)

    @property
    def total_um2(self) -> float:
        return sum(area for _, _, area in self.entries)

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def area_of(self, node: str) -> float:
        for entry_name, _, area in self.entries:
            if entry_name == node:
                return area
        raise KeyError(node)

    def instances_of(self, node: str) -> int:
        for entry_name, instances, _ in self.entries:
            if entry_name == node:
                return instances
        raise KeyError(node)

    def table(self) -> str:
        total = self.total_um2 or 1.0
        rows = [
            (node, instances, f"{area / 1e6:.4f}", f"{area / total:.1%}")
            for node, instances, area in sorted(
                self.entries, key=lambda entry: -entry[2])
        ]
        rows.append(("TOTAL", "", f"{self.total_mm2:.4f}", "100%"))
        return (f"Area report: {self.name}\n"
                + format_table(("node", "instances", "mm^2", "share"),
                               rows, align_right=[False, True, True, True]))


def area_report(
    architecture: Architecture,
    energy_table: EnergyTable,
    reference_counts: Optional[AccessCounts] = None,
) -> AreaReport:
    """Compute the chip area of ``architecture``.

    ``reference_counts`` (an analysis of a representative, well-utilizing
    workload) drives converter replication; without it, converters fall
    back to positional counts (the historical undercount).
    """
    entries = []
    positional = 1
    for node in architecture.nodes:
        if isinstance(node, SpatialFanout):
            positional *= node.size
            continue
        component = getattr(node, "component", None)
        if component is None:
            continue
        per_instance = energy_table.entry(component).area_um2
        if isinstance(node, ConverterStage) and reference_counts is not None:
            events = reference_counts.converter_events(node.name)
            instances = max(1, math.ceil(events / reference_counts.cycles))
        elif isinstance(node, ComputeLevel):
            instances = architecture.peak_parallelism
            # Compute's own area is usually folded into its modulator and
            # detector stages; count it anyway if priced.
        else:
            instances = positional
        entries.append((node.name, instances, per_instance * instances))
    return AreaReport(name=architecture.name, entries=tuple(entries))


def system_area_report(system, reference_layer=None) -> AreaReport:
    """Area report for a bundled system (Albireo, crossbar, custom).

    Uses the system's reference mapping on ``reference_layer`` (or a
    layer that fills the hardware, if the system provides a best-case
    constructor) to drive converter replication.
    """
    from repro.mapping.analysis import analyze

    counts = None
    layer = reference_layer
    if layer is None and hasattr(system, "config"):
        try:
            from repro.systems.albireo import albireo_best_case_layer

            layer = albireo_best_case_layer(system.config)
        except Exception:
            layer = None
    if layer is not None:
        target = layer
        if hasattr(system, "analysis_layer"):
            target = system.analysis_layer(layer)
        mapping = system.reference_mapping(layer)
        counts = analyze(system.architecture, target, mapping,
                         check_capacity=False)
    return area_report(system.architecture, system.energy_table, counts)
