"""Result containers: energy breakdowns and layer/network evaluations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping as TMapping, Optional, Sequence, Tuple

from repro.model.buckets import BucketScheme
from repro.units import format_count, format_energy
from repro.workloads.dataspace import DataSpace
from repro.workloads.layer import ConvLayer

#: Key of one energy entry: (component instance name, dataspace or None).
EnergyKey = Tuple[str, Optional[DataSpace]]


class EnergyBreakdown:
    """Energy (pJ) attributed to (component, dataspace) pairs.

    Dataspace is ``None`` for per-compute costs (laser, MAC logic) that
    belong to no single tensor.  Breakdowns support addition and scaling so
    whole-network totals compose from per-layer results.
    """

    def __init__(self, entries: Optional[TMapping[EnergyKey, float]] = None):
        self._entries: Dict[EnergyKey, float] = dict(entries or {})

    # ------------------------------------------------------------------
    # Construction and composition
    # ------------------------------------------------------------------
    def add(self, component: str, dataspace: Optional[DataSpace],
            energy_pj: float) -> None:
        if energy_pj < 0:
            raise ValueError(
                f"negative energy for {component!r}/{dataspace}: {energy_pj}"
            )
        key = (component, dataspace)
        self._entries[key] = self._entries.get(key, 0.0) + energy_pj

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        merged = dict(self._entries)
        for key, value in other._entries.items():
            merged[key] = merged.get(key, 0.0) + value
        return EnergyBreakdown(merged)

    def scaled(self, factor: float) -> "EnergyBreakdown":
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return EnergyBreakdown(
            {key: value * factor for key, value in self._entries.items()}
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_pj(self) -> float:
        return sum(self._entries.values())

    def entries(self) -> Dict[EnergyKey, float]:
        return dict(self._entries)

    def component_total(self, component: str) -> float:
        return sum(value for (name, _), value in self._entries.items()
                   if name == component)

    def dataspace_total(self, dataspace: Optional[DataSpace]) -> float:
        return sum(value for (_, ds), value in self._entries.items()
                   if ds == dataspace)

    def grouped(self, scheme: BucketScheme) -> Dict[str, float]:
        """Sum entries into the scheme's buckets, in display order."""
        buckets: Dict[str, float] = {}
        for (component, dataspace), value in self._entries.items():
            bucket = scheme.bucket_of(component, dataspace)
            buckets[bucket] = buckets.get(bucket, 0.0) + value
        return dict(sorted(buckets.items(),
                           key=lambda item: scheme.sort_key(item[0])))

    def per_mac(self, macs: int) -> "EnergyBreakdown":
        if macs <= 0:
            raise ValueError(f"macs must be positive, got {macs}")
        return self.scaled(1.0 / macs)

    def top_contributors(self, count: int = 5) -> List[Tuple[EnergyKey, float]]:
        ranked = sorted(self._entries.items(), key=lambda item: -item[1])
        return ranked[:count]

    def describe(self, scheme: Optional[BucketScheme] = None) -> str:
        """Aligned table of the breakdown (bucketed if a scheme is given)."""
        lines = []
        total = self.total_pj
        if scheme is not None:
            rows = self.grouped(scheme).items()
            for bucket, value in rows:
                share = value / total if total else 0.0
                lines.append(f"{bucket:28s} {format_energy(value):>12s} "
                             f"{share:6.1%}")
        else:
            for (component, dataspace), value in sorted(
                    self._entries.items(), key=lambda item: -item[1]):
                label = component if dataspace is None \
                    else f"{component} [{dataspace.value}]"
                share = value / total if total else 0.0
                lines.append(f"{label:28s} {format_energy(value):>12s} "
                             f"{share:6.1%}")
        lines.append(f"{'TOTAL':28s} {format_energy(total):>12s}")
        return "\n".join(lines)


@dataclass(frozen=True)
class LayerEvaluation:
    """Energy/performance of one layer under one mapping."""

    layer: ConvLayer
    energy: EnergyBreakdown
    #: Total cycles including memory-bandwidth stalls.
    cycles: int
    real_macs: int
    padded_macs: int
    peak_parallelism: int
    clock_ghz: float
    #: Per-storage occupancy (bits per instance), for capacity diagnostics.
    occupancy_bits: TMapping[str, float] = field(default_factory=dict)
    #: Cycles the compute alone needs (== cycles when compute-bound).
    compute_cycles: Optional[int] = None
    #: Storage level limiting throughput, or None when compute-bound.
    bandwidth_bound_level: Optional[str] = None

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    @property
    def energy_per_mac_pj(self) -> float:
        return self.energy.total_pj / self.real_macs

    @property
    def macs_per_cycle(self) -> float:
        return self.real_macs / self.cycles

    @property
    def utilization(self) -> float:
        """Fraction of peak compute throughput actually achieved."""
        return self.real_macs / (self.cycles * self.peak_parallelism)

    @property
    def latency_ns(self) -> float:
        return self.cycles / self.clock_ghz

    def describe(self) -> str:
        return (
            f"{self.layer.name}: {format_count(self.real_macs)} MACs, "
            f"{format_count(self.cycles)} cycles "
            f"({self.macs_per_cycle:.0f} MACs/cycle, "
            f"util {self.utilization:.1%}), "
            f"{self.energy_per_mac_pj:.3f} pJ/MAC"
        )


@dataclass(frozen=True)
class NetworkEvaluation:
    """Aggregate of per-layer evaluations over a whole network."""

    name: str
    layers: Tuple[Tuple[LayerEvaluation, int], ...]
    clock_ghz: float
    peak_parallelism: int

    @property
    def total_energy(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for evaluation, count in self.layers:
            total = total + evaluation.energy.scaled(count)
        return total

    @property
    def total_cycles(self) -> int:
        return sum(evaluation.cycles * count
                   for evaluation, count in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(evaluation.real_macs * count
                   for evaluation, count in self.layers)

    @property
    def energy_pj(self) -> float:
        return self.total_energy.total_pj

    @property
    def energy_per_mac_pj(self) -> float:
        return self.energy_pj / self.total_macs

    @property
    def macs_per_cycle(self) -> float:
        return self.total_macs / self.total_cycles

    @property
    def utilization(self) -> float:
        return self.total_macs / (self.total_cycles * self.peak_parallelism)

    @property
    def latency_ns(self) -> float:
        return self.total_cycles / self.clock_ghz

    def describe(self) -> str:
        lines = [
            f"{self.name}: {format_count(self.total_macs)} MACs, "
            f"{self.macs_per_cycle:.0f} MACs/cycle, "
            f"{self.energy_per_mac_pj:.3f} pJ/MAC, "
            f"latency {self.latency_ns / 1e6:.3f} ms"
        ]
        for evaluation, count in self.layers:
            prefix = f"  x{count} " if count > 1 else "     "
            lines.append(prefix + evaluation.describe())
        return "\n".join(lines)
