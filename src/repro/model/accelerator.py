"""The accelerator model: price mapped layers and whole networks.

:class:`AcceleratorModel` binds an :class:`~repro.arch.hierarchy.Architecture`
to an :class:`~repro.energy.table.EnergyTable` and evaluates workloads:

* :meth:`evaluate_layer` — run the access-count analysis for one mapping and
  price every storage access, conversion event, and compute action.
* :meth:`evaluate_network` — evaluate every (unique) layer of a network with
  caller-supplied mappings, applying the system-level options the paper's
  Fig. 4 explores: **batching** (amortize weight DRAM traffic over the
  batch; expressed in the workload via ``Network.with_batch``) and
  **fusion** (keep inter-layer activations in the global buffer instead of
  round-tripping DRAM, at the cost of buffer capacity).

Grouped convolutions are evaluated on the per-group problem and scaled by
the group count, which is exact for energy and cycles on architectures
without native group support.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.hierarchy import (
    Architecture,
    ComputeLevel,
    ConverterStage,
    StorageLevel,
)
from repro.energy.table import EnergyTable
from repro.exceptions import CapacityError, SpecError
from repro.mapping.analysis import (
    HAVE_NUMPY,
    AccessCounts,
    BatchNestAnalyzer,
    NestAnalyzer,
    SearchContext,
)
from repro.mapping.mapping import Mapping
from repro.model.results import (
    EnergyBreakdown,
    LayerEvaluation,
    NetworkEvaluation,
)
from repro.workloads.dataspace import DataSpace
from repro.workloads.layer import ConvLayer
from repro.workloads.network import Network

#: Produces a mapping for a layer (a reference-mapping generator or a
#: mapper-search closure).
MappingProvider = Callable[[ConvLayer], Mapping]


def fusion_blocks(entry, is_last_entry: bool, fused: bool):
    """DRAM-traffic flags for the repetitions of one network entry.

    Returns ``[(input_from_dram, output_to_dram, count), ...]`` covering
    the entry's ``count`` repetitions.  Unfused execution round-trips DRAM
    everywhere.  Under fusion, only the first repetition may read external
    input (and only if the entry itself does), and only the final
    repetition of the network's final entry writes its output to DRAM —
    chained repetitions pass activations through the on-chip buffer.
    """
    if not fused:
        return [(True, True, entry.count)]
    first_input = not entry.consumes_previous_output
    blocks = []
    remaining = entry.count
    if first_input and not (is_last_entry and entry.count == 1):
        blocks.append((True, False, 1))
        remaining -= 1
    elif first_input:  # single-repetition entry that is also last
        return [(True, True, 1)]
    middle = remaining - (1 if is_last_entry else 0)
    if middle > 0:
        blocks.append((False, False, middle))
        remaining -= middle
    if remaining > 0:
        blocks.append((False, True, remaining))
    return blocks


@dataclass(frozen=True)
class NetworkOptions:
    """System-level execution options for whole-network evaluation."""

    #: Keep inter-layer activations in the innermost DE buffer (global
    #: buffer) instead of spilling to DRAM.
    fused: bool = False
    #: Verify that the global buffer can actually hold the resident
    #: activations fusion requires (on by default; disable only for
    #: what-if studies).
    check_fusion_capacity: bool = True


class AcceleratorModel:
    """Evaluates workloads on one architecture with one energy table."""

    def __init__(self, architecture: Architecture,
                 energy_table: EnergyTable) -> None:
        missing = [name for name in architecture.component_names()
                   if name not in energy_table]
        if missing:
            raise SpecError(
                f"energy table lacks entries for components {missing}"
            )
        self.architecture = architecture
        self.energy_table = energy_table

    # ------------------------------------------------------------------
    # Layer evaluation
    # ------------------------------------------------------------------
    def evaluate_layer(
        self,
        layer: ConvLayer,
        mapping: Mapping,
        input_from_dram: bool = True,
        output_to_dram: bool = True,
        check_capacity: bool = True,
        analysis_layer: Optional[ConvLayer] = None,
        context: Optional[SearchContext] = None,
        validated: bool = False,
    ) -> LayerEvaluation:
        """Analyze and price one layer under ``mapping``.

        ``input_from_dram=False`` / ``output_to_dram=False`` implement
        fusion: the corresponding DRAM traffic (and the matching buffer
        fill/drain traffic) is removed because the tensor stays on chip.

        ``analysis_layer`` lets a system model evaluate a *transformed*
        workload (e.g. a strided convolution expanded to all unit-stride
        windows, most of which the hardware discards) while reporting
        per-MAC energy and utilization against the original layer's real
        work.

        ``context`` shares a :class:`~repro.mapping.analysis.SearchContext`
        (memoized nest geometry) across evaluations of the same
        architecture/layer geometry; ``validated=True`` additionally skips
        re-validating a mapping the caller has already validated against
        the analysis target (the mapper's validate-once protocol).
        """
        target = analysis_layer if analysis_layer is not None else layer
        analyzer = NestAnalyzer(self.architecture, target, mapping,
                                check_capacity=check_capacity,
                                context=context,
                                validate=not validated)
        counts = analyzer.analyze()
        counts = self._apply_dram_elision(counts, target, input_from_dram,
                                          output_to_dram)
        energy = self._price(counts)
        groups = layer.groups
        real_macs = layer.macs if analysis_layer is not None \
            else counts.real_macs * groups
        effective_cycles = int(-(-counts.effective_cycles // 1))
        return LayerEvaluation(
            layer=layer,
            energy=energy.scaled(groups),
            cycles=effective_cycles * groups,
            real_macs=real_macs,
            padded_macs=counts.padded_macs * groups,
            peak_parallelism=self.architecture.peak_parallelism,
            clock_ghz=self.architecture.clock_ghz,
            occupancy_bits=dict(counts.occupancy_bits),
            compute_cycles=counts.cycles * groups,
            bandwidth_bound_level=counts.bandwidth_bound_level,
        )

    def energy_cost_fn(
        self,
        layer: ConvLayer,
        input_from_dram: bool = True,
        output_to_dram: bool = True,
    ) -> Callable[..., float]:
        """Cost function (total energy, pJ) for the mapper.

        Participates in the mapper's shared-context protocol: when the
        search passes its :class:`SearchContext`, the candidate has been
        validated once already and analysis reuses the context's memoized
        geometry.
        """

        def cost(mapping: Mapping,
                 context: Optional[SearchContext] = None) -> float:
            return self.evaluate_layer(
                layer, mapping,
                input_from_dram=input_from_dram,
                output_to_dram=output_to_dram,
                context=context,
                validated=context is not None,
            ).energy_pj

        cost.supports_context = True
        if input_from_dram and output_to_dram and HAVE_NUMPY:
            # DRAM elision is the identity under both-True flags, so the
            # batched analyzer prices exactly what evaluate_layer would;
            # the mapper uses this to evaluate candidate blocks in one
            # vectorized pass.
            def batch(mappings, context):
                return self.batch_energy_pj(layer, mappings, context)

            cost.batch = batch
        return cost

    def batch_energy_pj(
        self,
        layer: ConvLayer,
        mappings,
        context: SearchContext,
    ) -> List[Optional[float]]:
        """Total energy (pJ) per candidate of a *validated* mapping block.

        Vectorized twin of pricing ``evaluate_layer(...).energy_pj`` for
        each mapping (with full DRAM round-trips — no elision): one
        batched nest analysis plus array pricing over the candidate axis.
        Candidates the scalar path would reject (capacity violation,
        structural inconsistency) yield ``None``.  Results are
        bit-identical to the scalar path: every integer is converted to
        float64 once and every energy entry is accumulated, scaled by the
        group count, and summed in exactly the scalar
        :class:`EnergyBreakdown` insertion order.
        """
        import numpy as np

        batch = BatchNestAnalyzer(self.architecture, layer, mappings,
                                  context=context,
                                  validate=False).analyze()
        n = batch.n
        if n == 0:
            return []
        # Ordered (component, dataspace) -> per-candidate pJ arrays,
        # mirroring EnergyBreakdown's insertion-ordered accumulation.
        entries: Dict[Tuple[str, Optional[DataSpace]], "np.ndarray"] = {}

        def add(component, dataspace, pj):
            key = (component, dataspace)
            held = entries.get(key)
            entries[key] = pj if held is None else held + pj

        energy = self.energy_table.energy
        padded_f = None
        for node in self.architecture.nodes:
            if isinstance(node, StorageLevel):
                read_pj = energy(node.component, "read")
                write_pj = energy(node.component, "write")
                for dataspace, reads in batch.reads_entries.get(
                        node.name, ()):
                    add(node.name, dataspace, reads * read_pj)
                for dataspace, writes in batch.writes_entries.get(
                        node.name, ()):
                    add(node.name, dataspace, writes * write_pj)
            elif isinstance(node, ConverterStage):
                for dataspace, events in batch.conv_entries[node.name]:
                    add(node.name, dataspace,
                        events * energy(node.component, "convert"))
            elif isinstance(node, ComputeLevel):
                for action in node.actions:
                    per_mac = action.events_per_mac
                    if isinstance(per_mac, int):
                        # Scalar computes an exact int product, then one
                        # int->float conversion at pricing time.
                        events = np.array(
                            [float(p * per_mac) for p in batch.padded_macs],
                            dtype=np.float64)
                    else:
                        if padded_f is None:
                            padded_f = np.array(
                                [float(p) for p in batch.padded_macs],
                                dtype=np.float64)
                        events = padded_f * per_mac
                    add(action.component, None,
                        events * energy(action.component, action.action))
        # scaled(groups).total_pj: scale each entry, then left-fold in
        # insertion order (sum() starts at 0; 0.0 + x == x).
        groups = layer.groups
        total = np.zeros(n, dtype=np.float64)
        for value in entries.values():
            total = total + value * groups
        return [float(total[i]) if batch.ok(i) else None for i in range(n)]

    def edp_cost_fn(self, layer: ConvLayer) -> Callable[..., float]:
        """Cost function (energy x delay) for the mapper."""

        def cost(mapping: Mapping,
                 context: Optional[SearchContext] = None) -> float:
            evaluation = self.evaluate_layer(
                layer, mapping, context=context,
                validated=context is not None)
            return evaluation.energy_pj * evaluation.latency_ns

        cost.supports_context = True
        return cost

    # ------------------------------------------------------------------
    # Network evaluation
    # ------------------------------------------------------------------
    def evaluate_network(
        self,
        network: Network,
        mapping_provider: MappingProvider,
        options: NetworkOptions = NetworkOptions(),
    ) -> NetworkEvaluation:
        """Evaluate a whole network.

        Under fusion, a layer's inputs are read from the on-chip buffer when
        they were produced by the previous layer, and its outputs go to DRAM
        only if it is the network's last layer.  Repeated layers (count > 1)
        chain into each other, so their intermediates stay on chip too.
        """
        if options.fused:
            self._check_fusion_capacity(network, options)
        evaluations: List[Tuple[LayerEvaluation, int]] = []
        entries = network.entries
        for index, entry in enumerate(entries):
            is_last = index == len(entries) - 1
            mapping = mapping_provider(entry.layer)
            for input_dram, output_dram, count in fusion_blocks(
                    entry, is_last, options.fused):
                evaluation = self.evaluate_layer(
                    entry.layer, mapping,
                    input_from_dram=input_dram,
                    output_to_dram=output_dram,
                )
                evaluations.append((evaluation, count))
        return NetworkEvaluation(
            name=network.name,
            layers=tuple(evaluations),
            clock_ghz=self.architecture.clock_ghz,
            peak_parallelism=self.architecture.peak_parallelism,
        )

    # ------------------------------------------------------------------
    # Area
    # ------------------------------------------------------------------
    def area_um2(self) -> Dict[str, float]:
        """Approximate per-component area, scaled by instance count.

        Instance counts derive from the fanout products above each node;
        converter stages below additional (unmapped) parallelism are counted
        at their architectural position, an undercount documented in
        DESIGN.md.
        """
        areas: Dict[str, float] = {}
        instances = 1
        for node in self.architecture.nodes:
            if hasattr(node, "size"):
                instances *= node.size  # SpatialFanout
                continue
            component = getattr(node, "component", None)
            if component is None:
                continue
            entry = self.energy_table.entry(component)
            areas[node.name] = entry.area_um2 * instances
            if isinstance(node, ComputeLevel):
                for action in node.actions:
                    action_entry = self.energy_table.entry(action.component)
                    areas[action.component] = areas.get(
                        action.component, 0.0) + action_entry.area_um2
        return areas

    def static_power_mw(self) -> Dict[str, float]:
        """Approximate per-component static power (leakage, ring tuning).

        Uses the same instance accounting as :meth:`area_um2`.  Static
        energy for a run is ``sum(static_power_mw) * latency_ns`` pJ
        (the unit system makes mW x ns = pJ directly).
        """
        powers: Dict[str, float] = {}
        instances = 1
        for node in self.architecture.nodes:
            if hasattr(node, "size"):
                instances *= node.size
                continue
            component = getattr(node, "component", None)
            if component is None:
                continue
            entry = self.energy_table.entry(component)
            if entry.static_power_mw:
                powers[node.name] = entry.static_power_mw * instances
        return powers

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _price(self, counts: AccessCounts) -> EnergyBreakdown:
        breakdown = EnergyBreakdown()
        for node in self.architecture.nodes:
            if isinstance(node, StorageLevel):
                storage_counts = counts.storage[node.name]
                for dataspace, reads in storage_counts.reads.items():
                    breakdown.add(
                        node.name, dataspace,
                        reads * self.energy_table.energy(node.component,
                                                         "read"))
                for dataspace, writes in storage_counts.writes.items():
                    breakdown.add(
                        node.name, dataspace,
                        writes * self.energy_table.energy(node.component,
                                                          "write"))
            elif isinstance(node, ConverterStage):
                for dataspace, events in counts.conversions[node.name].items():
                    breakdown.add(
                        node.name, dataspace,
                        events * self.energy_table.energy(node.component,
                                                          "convert"))
            elif isinstance(node, ComputeLevel):
                for action in node.actions:
                    events = counts.padded_macs * action.events_per_mac
                    breakdown.add(
                        action.component, None,
                        events * self.energy_table.energy(action.component,
                                                          action.action))
        return breakdown

    def _apply_dram_elision(
        self,
        counts: AccessCounts,
        layer: ConvLayer,
        input_from_dram: bool,
        output_to_dram: bool,
    ) -> AccessCounts:
        """Remove DRAM round-trips for on-chip inter-layer tensors.

        The elided traffic is symmetric: DRAM reads of inputs equal the
        buffer's input fills (they are the same transfers), and DRAM writes
        of outputs equal the buffer's outgoing writeback reads.
        """
        if input_from_dram and output_to_dram:
            return counts
        outer_name = self.architecture.storage_levels[0].name
        inner_de = self._innermost_de_buffer()
        outer = counts.storage[outer_name]
        buffer_counts = counts.storage[inner_de]
        if not input_from_dram:
            elided = outer.reads.pop(DataSpace.INPUTS, 0.0)
            fills = buffer_counts.writes.get(DataSpace.INPUTS, 0.0)
            buffer_counts.writes[DataSpace.INPUTS] = max(0.0, fills - elided)
            self._elide_interface_conversions(counts, inner_de,
                                              DataSpace.INPUTS)
        if not output_to_dram:
            elided = outer.writes.pop(DataSpace.OUTPUTS, 0.0)
            outer.reads.pop(DataSpace.OUTPUTS, None)
            drains = buffer_counts.reads.get(DataSpace.OUTPUTS, 0.0)
            buffer_counts.reads[DataSpace.OUTPUTS] = max(0.0, drains - elided)
            self._elide_interface_conversions(counts, inner_de,
                                              DataSpace.OUTPUTS)
        # Traffic changed; refresh the bandwidth picture.
        from repro.mapping.analysis import compute_traffic

        counts.traffic_bits, counts.bandwidth_cycles = compute_traffic(
            self.architecture, layer, counts.storage, counts.instances)
        return counts

    def _elide_interface_conversions(self, counts: AccessCounts,
                                     buffer_name: str,
                                     dataspace: DataSpace) -> None:
        """Zero converter events above the on-chip buffer for a dataspace.

        When fusion keeps a tensor on chip, memory-interface converters
        (e.g. digital-optical DRAM links) between the backing store and the
        buffer see no traffic for it either.
        """
        buffer_index = self.architecture.index_of(buffer_name)
        for index, node in enumerate(self.architecture.nodes):
            if index >= buffer_index:
                break
            if isinstance(node, ConverterStage) \
                    and dataspace in node.dataspaces:
                counts.conversions[node.name][dataspace] = 0.0

    def _innermost_de_buffer(self) -> str:
        """The buffer that holds fused inter-layer activations."""
        candidates = [
            level for level in self.architecture.storage_levels[1:]
            if DataSpace.INPUTS in level.dataspaces
            and DataSpace.OUTPUTS in level.dataspaces
        ]
        if not candidates:
            raise SpecError(
                "fusion requires an on-chip buffer holding both inputs and "
                "outputs"
            )
        return candidates[0].name

    def _check_fusion_capacity(self, network: Network,
                               options: NetworkOptions) -> None:
        if not options.check_fusion_capacity:
            return
        buffer_name = self._innermost_de_buffer()
        level = self.architecture.node_named(buffer_name)
        assert isinstance(level, StorageLevel)
        if level.capacity_bits is None:
            return
        required = network.max_activation_bits
        if required > level.capacity_bits:
            raise CapacityError(
                f"fusion needs {required:.0f} bits resident in "
                f"{buffer_name!r} but capacity is "
                f"{level.capacity_bits:.0f}; enlarge the buffer to fuse "
                f"this network"
            )
