"""Architecture hierarchy: the ordered node list the mapping engine consumes.

An :class:`Architecture` is a list of nodes ordered from the outermost level
(DRAM) to the innermost (the MAC units).  Node order is *spatial containment*
order, not dataflow direction: output dataspaces flow from inner to outer,
but their converter stages still appear at the list position matching their
physical location in the datapath.

The node kinds:

* :class:`StorageLevel` — holds tiles; the mapper may attach temporal loops
  here.  ``dataspaces`` says which tensors are stored (others bypass the
  level entirely).  ``capacity_bits=None`` means unbounded (DRAM).
* :class:`SpatialFanout` — the datapath splits into ``size`` parallel
  instances.  The mapper may map problem dimensions from ``allowed_dims``
  spatially here.  ``multicast`` lists dataspaces the boundary can broadcast
  (one copy crosses, the network replicates it to every instance that needs
  it); ``reduction`` lists dataspaces it can spatially reduce (partial sums
  from many instances merge into one value crossing upward).
  ``reduction_limit`` bounds the reduction fan-in (e.g. an analog summation
  block that can only merge OR partials before an ADC).
* :class:`ConverterStage` — a cross-domain converter for specific
  dataspaces.  Every element-copy crossing the stage's position costs one
  conversion; multicast boundaries *below* a stage therefore amortize it.
* :class:`ComputeLevel` — the MACs.  ``actions`` attaches per-MAC energy
  events (e.g. the laser photons that every photonic MAC consumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.arch.domains import Conversion, Domain
from repro.exceptions import SpecError
from repro.workloads.dataspace import ALL_DATASPACES, DataSpace
from repro.workloads.dims import Dim


def _dataspace_set(dataspaces: Iterable[DataSpace]) -> FrozenSet[DataSpace]:
    return frozenset(DataSpace(ds) for ds in dataspaces)


@dataclass(frozen=True)
class StorageLevel:
    """A buffer level in the hierarchy.

    ``component`` names the entry in the energy table that prices this
    level's read/write actions.  ``max_temporal_dims`` optionally restricts
    which problem dimensions the mapper may iterate temporally at this level
    (an analog integrator, for example, can only accumulate — i.e. iterate
    reduction dimensions).
    """

    name: str
    component: str
    domain: Domain
    dataspaces: FrozenSet[DataSpace]
    capacity_bits: Optional[float] = None
    bandwidth_bits_per_cycle: Optional[float] = None
    allowed_temporal_dims: Optional[FrozenSet[Dim]] = None
    #: For output-accumulating levels: the maximum number of partial-sum
    #: updates one resident element may absorb before it must be written
    #: back (an analog integrator's accumulation depth, limited by noise
    #: and droop).  None = unlimited (a digital buffer doing RMW).
    max_accumulation_depth: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataspaces", _dataspace_set(self.dataspaces))
        if self.allowed_temporal_dims is not None:
            object.__setattr__(
                self, "allowed_temporal_dims",
                frozenset(Dim(d) for d in self.allowed_temporal_dims),
            )
        if not self.dataspaces:
            raise SpecError(f"storage level {self.name!r} stores no dataspaces")
        if self.capacity_bits is not None and self.capacity_bits <= 0:
            raise SpecError(
                f"storage level {self.name!r}: capacity must be positive or "
                f"None (unbounded), got {self.capacity_bits!r}"
            )
        if (self.max_accumulation_depth is not None
                and self.max_accumulation_depth < 1):
            raise SpecError(
                f"storage level {self.name!r}: max_accumulation_depth must "
                f"be >= 1 or None"
            )

    @property
    def is_unbounded(self) -> bool:
        return self.capacity_bits is None


@dataclass(frozen=True)
class SpatialFanout:
    """A boundary where the datapath replicates into parallel instances."""

    name: str
    size: int
    allowed_dims: FrozenSet[Dim]
    multicast: FrozenSet[DataSpace] = frozenset()
    reduction: FrozenSet[DataSpace] = frozenset()
    #: Maximum fan-in of the reduction network (None = the full fanout).
    reduction_limit: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "allowed_dims", frozenset(Dim(d) for d in self.allowed_dims)
        )
        object.__setattr__(self, "multicast", _dataspace_set(self.multicast))
        object.__setattr__(self, "reduction", _dataspace_set(self.reduction))
        if self.size < 1:
            raise SpecError(f"fanout {self.name!r}: size must be >= 1")
        if not self.allowed_dims and self.size > 1:
            raise SpecError(
                f"fanout {self.name!r}: size {self.size} > 1 but no problem "
                f"dimensions may map to it"
            )
        if self.reduction_limit is not None and self.reduction_limit < 1:
            raise SpecError(
                f"fanout {self.name!r}: reduction_limit must be >= 1 or None"
            )


@dataclass(frozen=True)
class ConverterStage:
    """A cross-domain converter for specific dataspaces.

    ``per_element`` scaling: one conversion event per element-copy crossing
    this list position.  Placing a stage above a multicast boundary therefore
    models one shared converter whose output is distributed; placing it
    below models per-instance converters.
    """

    name: str
    component: str
    conversion: Conversion
    dataspaces: FrozenSet[DataSpace]

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataspaces", _dataspace_set(self.dataspaces))
        if not self.dataspaces:
            raise SpecError(f"converter {self.name!r} converts no dataspaces")


@dataclass(frozen=True)
class ComputeAction:
    """An energy-bearing event that accompanies every MAC.

    ``events_per_mac`` scales the count (e.g. 1.0 laser event per MAC);
    ``component`` names the energy-table entry that prices one event.
    """

    component: str
    action: str = "compute"
    events_per_mac: float = 1.0

    def __post_init__(self) -> None:
        if self.events_per_mac < 0:
            raise SpecError(
                f"compute action {self.component!r}: events_per_mac must be "
                f">= 0, got {self.events_per_mac}"
            )


@dataclass(frozen=True)
class ComputeLevel:
    """The innermost MAC units."""

    name: str
    component: str
    domain: Domain
    actions: Tuple[ComputeAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))


Node = Union[StorageLevel, SpatialFanout, ConverterStage, ComputeLevel]


@dataclass(frozen=True)
class Architecture:
    """An ordered accelerator description, outermost node first.

    Structural invariants (checked at construction):

    * exactly one :class:`ComputeLevel`, and it is last;
    * at least one :class:`StorageLevel` above the compute level;
    * the outermost storage level stores every dataspace (data ultimately
      comes from and returns to backing store);
    * every converter stage's dataspaces appear in some storage level above
      it (the data must exist upstream to be converted).
    """

    name: str
    nodes: Tuple[Node, ...]
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.clock_ghz <= 0:
            raise SpecError(f"{self.name!r}: clock must be positive")
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.nodes:
            raise SpecError(f"architecture {self.name!r} has no nodes")
        compute_nodes = [n for n in self.nodes if isinstance(n, ComputeLevel)]
        if len(compute_nodes) != 1 or not isinstance(self.nodes[-1], ComputeLevel):
            raise SpecError(
                f"architecture {self.name!r} must end with exactly one "
                f"ComputeLevel"
            )
        storage = self.storage_levels
        if not storage:
            raise SpecError(f"architecture {self.name!r} has no storage levels")
        outer = storage[0]
        missing = set(ALL_DATASPACES) - set(outer.dataspaces)
        if missing:
            raise SpecError(
                f"architecture {self.name!r}: outermost storage "
                f"{outer.name!r} must store all dataspaces; missing "
                f"{sorted(ds.value for ds in missing)}"
            )
        names = [self._node_name(n) for n in self.nodes]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SpecError(
                f"architecture {self.name!r}: duplicate node names "
                f"{sorted(duplicates)}"
            )
        seen_upstream: set = set()
        for node in self.nodes:
            if isinstance(node, StorageLevel):
                seen_upstream |= set(node.dataspaces)
            elif isinstance(node, ConverterStage):
                orphans = set(node.dataspaces) - seen_upstream
                if orphans:
                    raise SpecError(
                        f"architecture {self.name!r}: converter {node.name!r} "
                        f"handles {sorted(ds.value for ds in orphans)} with no "
                        f"storage level above it"
                    )

    @staticmethod
    def _node_name(node: Node) -> str:
        return node.name

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    # The node-kind views below are cached on first use: architectures are
    # immutable and the mapping hot path reads them once per candidate.
    # The cached lists are shared — callers must treat them as read-only.
    def _cached(self, attribute: str, build) -> list:
        cached = self.__dict__.get(attribute)
        if cached is None:
            cached = build()
            object.__setattr__(self, attribute, cached)
        return cached

    @property
    def storage_levels(self) -> List[StorageLevel]:
        """Storage levels in outer-to-inner order."""
        return self._cached("_storage_levels", lambda: [
            n for n in self.nodes if isinstance(n, StorageLevel)])

    @property
    def fanouts(self) -> List[SpatialFanout]:
        return self._cached("_fanouts", lambda: [
            n for n in self.nodes if isinstance(n, SpatialFanout)])

    @property
    def converters(self) -> List[ConverterStage]:
        return self._cached("_converters", lambda: [
            n for n in self.nodes if isinstance(n, ConverterStage)])

    @property
    def compute(self) -> ComputeLevel:
        node = self.nodes[-1]
        assert isinstance(node, ComputeLevel)
        return node

    @property
    def peak_parallelism(self) -> int:
        """Hardware MACs per cycle: the product of all fanout sizes."""
        product = 1
        for fanout in self.fanouts:
            product *= fanout.size
        return product

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.clock_ghz

    def node_named(self, name: str) -> Node:
        return self.nodes[self.index_of(name)]

    def index_of(self, name: str) -> int:
        index = self._cached("_name_index", lambda: {
            node.name: position
            for position, node in enumerate(self.nodes)}).get(name)
        if index is None:
            raise SpecError(
                f"architecture {self.name!r} has no node named {name!r}")
        return index

    def replace_node(self, name: str, replacement: Node) -> "Architecture":
        """Return a copy with the node called ``name`` swapped out."""
        index = self.index_of(name)
        nodes = list(self.nodes)
        nodes[index] = replacement
        return Architecture(name=self.name, nodes=tuple(nodes),
                            clock_ghz=self.clock_ghz)

    # ------------------------------------------------------------------
    # Queries used by the analysis engine
    # ------------------------------------------------------------------
    def fanouts_below(self, node_name: str) -> List[SpatialFanout]:
        """Fanout boundaries strictly below (after) the named node."""
        index = self.index_of(node_name)
        return [
            node for node in self.nodes[index + 1:]
            if isinstance(node, SpatialFanout)
        ]

    def storage_for(self, dataspace: DataSpace) -> List[StorageLevel]:
        """Storage levels that hold ``dataspace``, outer to inner."""
        return [
            level for level in self.storage_levels
            if dataspace in level.dataspaces
        ]

    def converters_for(self, dataspace: DataSpace) -> List[ConverterStage]:
        return [
            stage for stage in self.converters
            if dataspace in stage.dataspaces
        ]

    def component_names(self) -> List[str]:
        """Every energy-table component this architecture references."""
        names: List[str] = []
        for node in self.nodes:
            if isinstance(node, (StorageLevel, ConverterStage)):
                names.append(node.component)
            elif isinstance(node, ComputeLevel):
                names.append(node.component)
                names.extend(action.component for action in node.actions)
        # Preserve first-appearance order while deduplicating.
        seen: set = set()
        unique = []
        for name in names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def describe(self) -> str:
        """Multi-line, indentation-by-depth rendering of the hierarchy."""
        lines = [f"{self.name} @ {self.clock_ghz:g} GHz "
                 f"(peak {self.peak_parallelism} MACs/cycle)"]
        depth = 0
        for node in self.nodes:
            pad = "  " * (depth + 1)
            if isinstance(node, StorageLevel):
                size = ("unbounded" if node.is_unbounded
                        else f"{node.capacity_bits / 8192:.0f} KiB")
                held = ",".join(ds.value[0] for ds in sorted(node.dataspaces))
                lines.append(f"{pad}[{node.domain}] storage {node.name} "
                             f"({size}; holds {held})")
            elif isinstance(node, SpatialFanout):
                dims = "".join(sorted(d.value for d in node.allowed_dims))
                lines.append(f"{pad}fanout {node.name} x{node.size} "
                             f"(dims {dims})")
                depth += 1
            elif isinstance(node, ConverterStage):
                held = ",".join(ds.value[0] for ds in sorted(node.dataspaces))
                lines.append(f"{pad}[{node.conversion.label}] converter "
                             f"{node.name} ({held})")
            else:
                lines.append(f"{pad}[{node.domain}] compute {node.name}")
        return "\n".join(lines)
