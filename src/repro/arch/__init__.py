"""Architecture descriptions: domains, components, levels, and fanouts.

An :class:`~repro.arch.hierarchy.Architecture` is an ordered list of *nodes*
from the outermost level (typically DRAM) down to the compute units:

* :class:`~repro.arch.hierarchy.StorageLevel` — a buffer that holds tiles of
  one or more dataspaces and can exploit *temporal* reuse.
* :class:`~repro.arch.hierarchy.ConverterStage` — a cross-domain data
  converter (DAC, ADC, modulator, photodiode) that every element of its
  dataspaces pays to cross.
* :class:`~repro.arch.hierarchy.SpatialFanout` — a boundary where the
  datapath replicates into parallel instances; per-dataspace multicast and
  reduction capabilities determine whether crossing traffic is amortized.
* :class:`~repro.arch.hierarchy.ComputeLevel` — the innermost MAC units.

This mirrors how the paper's toolchain (CiMLoop on Timeloop/Accelergy)
describes accelerators, with the photonic extension that every node lives in
one of the four physical domains (DE / AE / AO / DO) and domain crossings
are explicit converter stages.
"""

from repro.arch.domains import (
    CONVERSION_NAMES,
    Conversion,
    Domain,
    conversion_name,
)
from repro.arch.hierarchy import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    ConverterStage,
    Node,
    SpatialFanout,
    StorageLevel,
)
from repro.arch.spec import architecture_from_dict, architecture_to_dict

__all__ = [
    "CONVERSION_NAMES",
    "Architecture",
    "ComputeAction",
    "ComputeLevel",
    "Conversion",
    "ConverterStage",
    "Domain",
    "Node",
    "SpatialFanout",
    "StorageLevel",
    "architecture_from_dict",
    "architecture_to_dict",
    "conversion_name",
]
