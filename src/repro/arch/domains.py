"""Physical domains and cross-domain conversions.

The paper's framing: a photonic system moves data through four domains —
digital-electrical (**DE**), analog-electrical (**AE**), analog-optical
(**AO**), and digital-optical (**DO**) — and every domain crossing pays a
converter.  The familiar converters get their familiar names:

=========  ==========================================================
Crossing   Device
=========  ==========================================================
DE -> AE   digital-to-analog converter (DAC)
AE -> DE   analog-to-digital converter (ADC)
AE -> AO   electro-optic modulator (Mach-Zehnder or microring drive)
AO -> AE   photodiode (+ transimpedance amplifier)
DE -> DO   optical transmitter (serializer + modulator)
DO -> DE   optical receiver
AO -> DO   (not used by the systems modeled here)
=========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro.exceptions import SpecError


class Domain(str, Enum):
    """One of the four physical domains data can occupy."""

    DE = "DE"  # digital-electrical
    AE = "AE"  # analog-electrical
    AO = "AO"  # analog-optical
    DO = "DO"  # digital-optical

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    def __repr__(self) -> str:
        return f"Domain.{self.value}"

    @property
    def is_analog(self) -> bool:
        return self in (Domain.AE, Domain.AO)

    @property
    def is_optical(self) -> bool:
        return self in (Domain.AO, Domain.DO)


@dataclass(frozen=True)
class Conversion:
    """A directed crossing from one domain to another."""

    source: Domain
    destination: Domain

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise SpecError(
                f"conversion must change domains, got {self.source} -> "
                f"{self.destination}"
            )

    @property
    def label(self) -> str:
        """The paper's X/Y notation, e.g. ``'DE/AE'``."""
        return f"{self.source.value}/{self.destination.value}"

    def __str__(self) -> str:
        return self.label


#: Device names for the conversions that have standard hardware realizations.
CONVERSION_NAMES: Dict[Tuple[Domain, Domain], str] = {
    (Domain.DE, Domain.AE): "DAC",
    (Domain.AE, Domain.DE): "ADC",
    (Domain.AE, Domain.AO): "electro-optic modulator",
    (Domain.AO, Domain.AE): "photodiode",
    (Domain.DE, Domain.DO): "optical transmitter",
    (Domain.DO, Domain.DE): "optical receiver",
    (Domain.DO, Domain.AO): "optical DAC",
    (Domain.AO, Domain.DO): "optical quantizer",
}


def conversion_name(conversion: Conversion) -> str:
    """Human-readable device name for a conversion (falls back to X/Y)."""
    key = (conversion.source, conversion.destination)
    return CONVERSION_NAMES.get(key, conversion.label)
