"""Serialization of architectures to and from plain dictionaries.

The paper's toolchain takes YAML specifications of components and
architecture; this module provides the equivalent declarative front end
using plain Python dicts (JSON-compatible), so architectures can be defined
in data files, generated programmatically, or round-tripped for tooling.

Spec format::

    {
      "name": "my-accelerator",
      "clock_ghz": 5.0,
      "nodes": [
        {"type": "storage", "name": "DRAM", "component": "dram",
         "domain": "DE", "dataspaces": ["Weights", "Inputs", "Outputs"]},
        {"type": "fanout", "name": "pe_array", "size": 64,
         "allowed_dims": ["M", "C"], "multicast": ["Inputs"]},
        {"type": "converter", "name": "adc", "component": "adc",
         "from": "AE", "to": "DE", "dataspaces": ["Outputs"]},
        {"type": "compute", "name": "mac", "component": "mac",
         "domain": "AO",
         "actions": [{"component": "laser", "events_per_mac": 1.0}]}
      ]
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.arch.domains import Conversion, Domain
from repro.arch.hierarchy import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    ConverterStage,
    Node,
    SpatialFanout,
    StorageLevel,
)
from repro.exceptions import SpecError
from repro.workloads.dataspace import DataSpace
from repro.workloads.dims import Dim

_REQUIRED_TOP_KEYS = ("name", "nodes")


def architecture_from_dict(spec: Mapping[str, Any]) -> Architecture:
    """Build an :class:`Architecture` from a declarative dict spec."""
    for key in _REQUIRED_TOP_KEYS:
        if key not in spec:
            raise SpecError(f"architecture spec missing required key {key!r}")
    nodes = [_node_from_dict(node_spec, index)
             for index, node_spec in enumerate(spec["nodes"])]
    return Architecture(
        name=str(spec["name"]),
        nodes=tuple(nodes),
        clock_ghz=float(spec.get("clock_ghz", 1.0)),
    )


def architecture_to_dict(architecture: Architecture) -> Dict[str, Any]:
    """Serialize an :class:`Architecture` back to its dict spec."""
    return {
        "name": architecture.name,
        "clock_ghz": architecture.clock_ghz,
        "nodes": [_node_to_dict(node) for node in architecture.nodes],
    }


# ---------------------------------------------------------------------------
# Node-level conversion helpers
# ---------------------------------------------------------------------------

def _node_from_dict(spec: Mapping[str, Any], index: int) -> Node:
    node_type = spec.get("type")
    if node_type is None:
        raise SpecError(f"node #{index}: missing 'type'")
    builders = {
        "storage": _storage_from_dict,
        "fanout": _fanout_from_dict,
        "converter": _converter_from_dict,
        "compute": _compute_from_dict,
    }
    builder = builders.get(node_type)
    if builder is None:
        raise SpecError(
            f"node #{index}: unknown type {node_type!r} "
            f"(expected one of {sorted(builders)})"
        )
    try:
        return builder(spec)
    except (KeyError, ValueError) as error:
        raise SpecError(f"node #{index} ({node_type}): {error}") from error


def _dataspaces(spec: Mapping[str, Any], key: str = "dataspaces"):
    return frozenset(DataSpace(ds) for ds in spec.get(key, ()))


def _dims(spec: Mapping[str, Any], key: str):
    return frozenset(Dim(d) for d in spec.get(key, ()))


def _storage_from_dict(spec: Mapping[str, Any]) -> StorageLevel:
    allowed = spec.get("allowed_temporal_dims")
    return StorageLevel(
        name=str(spec["name"]),
        component=str(spec["component"]),
        domain=Domain(spec.get("domain", "DE")),
        dataspaces=_dataspaces(spec),
        capacity_bits=(None if spec.get("capacity_bits") is None
                       else float(spec["capacity_bits"])),
        bandwidth_bits_per_cycle=(
            None if spec.get("bandwidth_bits_per_cycle") is None
            else float(spec["bandwidth_bits_per_cycle"])),
        allowed_temporal_dims=(
            None if allowed is None else frozenset(Dim(d) for d in allowed)),
        max_accumulation_depth=(
            None if spec.get("max_accumulation_depth") is None
            else float(spec["max_accumulation_depth"])),
    )


def _fanout_from_dict(spec: Mapping[str, Any]) -> SpatialFanout:
    return SpatialFanout(
        name=str(spec["name"]),
        size=int(spec["size"]),
        allowed_dims=_dims(spec, "allowed_dims"),
        multicast=_dataspaces(spec, "multicast"),
        reduction=_dataspaces(spec, "reduction"),
        reduction_limit=(None if spec.get("reduction_limit") is None
                         else int(spec["reduction_limit"])),
    )


def _converter_from_dict(spec: Mapping[str, Any]) -> ConverterStage:
    return ConverterStage(
        name=str(spec["name"]),
        component=str(spec["component"]),
        conversion=Conversion(Domain(spec["from"]), Domain(spec["to"])),
        dataspaces=_dataspaces(spec),
    )


def _compute_from_dict(spec: Mapping[str, Any]) -> ComputeLevel:
    actions = tuple(
        ComputeAction(
            component=str(action["component"]),
            action=str(action.get("action", "compute")),
            events_per_mac=float(action.get("events_per_mac", 1.0)),
        )
        for action in spec.get("actions", ())
    )
    return ComputeLevel(
        name=str(spec["name"]),
        component=str(spec["component"]),
        domain=Domain(spec.get("domain", "DE")),
        actions=actions,
    )


def _node_to_dict(node: Node) -> Dict[str, Any]:
    if isinstance(node, StorageLevel):
        result: Dict[str, Any] = {
            "type": "storage",
            "name": node.name,
            "component": node.component,
            "domain": node.domain.value,
            "dataspaces": sorted(ds.value for ds in node.dataspaces),
            "capacity_bits": node.capacity_bits,
        }
        if node.bandwidth_bits_per_cycle is not None:
            result["bandwidth_bits_per_cycle"] = node.bandwidth_bits_per_cycle
        if node.allowed_temporal_dims is not None:
            result["allowed_temporal_dims"] = sorted(
                d.value for d in node.allowed_temporal_dims)
        if node.max_accumulation_depth is not None:
            result["max_accumulation_depth"] = node.max_accumulation_depth
        return result
    if isinstance(node, SpatialFanout):
        result = {
            "type": "fanout",
            "name": node.name,
            "size": node.size,
            "allowed_dims": sorted(d.value for d in node.allowed_dims),
            "multicast": sorted(ds.value for ds in node.multicast),
            "reduction": sorted(ds.value for ds in node.reduction),
        }
        if node.reduction_limit is not None:
            result["reduction_limit"] = node.reduction_limit
        return result
    if isinstance(node, ConverterStage):
        return {
            "type": "converter",
            "name": node.name,
            "component": node.component,
            "from": node.conversion.source.value,
            "to": node.conversion.destination.value,
            "dataspaces": sorted(ds.value for ds in node.dataspaces),
        }
    if isinstance(node, ComputeLevel):
        return {
            "type": "compute",
            "name": node.name,
            "component": node.component,
            "domain": node.domain.value,
            "actions": [
                {
                    "component": action.component,
                    "action": action.action,
                    "events_per_mac": action.events_per_mac,
                }
                for action in node.actions
            ],
        }
    raise SpecError(f"cannot serialize unknown node type {type(node)!r}")
