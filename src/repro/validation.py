"""Internal consistency checking of analysis results.

Any correct Timeloop-style analysis must satisfy a set of conservation
laws — compute demand served exactly, fills bounded below by distinct
tensor volumes, output updates conserved level to level.
:func:`check_consistency` verifies them for one analyzed mapping and
returns human-readable violations (empty list = consistent).

This exists as a library feature (not just test code) because users
extending the architecture vocabulary — new fanout semantics, new storage
behaviours — need a cheap way to detect when an extension breaks the
bookkeeping.  The property-based test suite runs it across randomized
workloads and mappings.
"""

from __future__ import annotations

from typing import List

from repro.arch.hierarchy import Architecture
from repro.mapping.analysis import AccessCounts
from repro.workloads.dataspace import DataSpace
from repro.workloads.layer import ConvLayer

_TOLERANCE = 1e-6


def check_consistency(
    architecture: Architecture,
    layer: ConvLayer,
    counts: AccessCounts,
) -> List[str]:
    """Return conservation-law violations for one analysis result."""
    problems: List[str] = []
    problems.extend(_check_cycles(counts))
    problems.extend(_check_compute_demand(architecture, counts))
    problems.extend(_check_fill_lower_bounds(architecture, layer, counts))
    problems.extend(_check_output_conservation(architecture, layer, counts))
    problems.extend(_check_nonnegative(counts))
    return problems


def assert_consistent(architecture: Architecture, layer: ConvLayer,
                      counts: AccessCounts) -> None:
    """Raise ``AssertionError`` listing any conservation-law violations."""
    problems = check_consistency(architecture, layer, counts)
    if problems:
        raise AssertionError(
            "analysis inconsistencies:\n  " + "\n  ".join(problems))


# ---------------------------------------------------------------------------
# Individual laws
# ---------------------------------------------------------------------------

def _check_cycles(counts: AccessCounts) -> List[str]:
    problems = []
    if counts.cycles < 1:
        problems.append(f"cycles must be >= 1, got {counts.cycles}")
    if counts.padded_macs < counts.real_macs:
        problems.append(
            f"padded MACs {counts.padded_macs} below real "
            f"{counts.real_macs}")
    if not 0.0 < counts.padding_utilization <= 1.0 + _TOLERANCE:
        problems.append(
            f"padding utilization {counts.padding_utilization} out of "
            f"(0, 1]")
    if counts.effective_cycles + _TOLERANCE < counts.cycles:
        problems.append("effective cycles below compute cycles")
    return problems


def _check_compute_demand(architecture: Architecture,
                          counts: AccessCounts) -> List[str]:
    """The innermost storage of W and I serves >= one read per MAC
    divided by the total multicast capacity below it (and at most one
    per MAC)."""
    problems = []
    for dataspace in (DataSpace.WEIGHTS, DataSpace.INPUTS):
        inner = architecture.storage_for(dataspace)[-1]
        reads = counts.storage[inner.name].reads.get(dataspace, 0.0)
        if reads > counts.padded_macs * (1 + _TOLERANCE):
            problems.append(
                f"{inner.name} serves {reads} {dataspace.value} reads, "
                f"more than one per MAC")
        max_multicast = 1
        for fanout in architecture.fanouts_below(inner.name):
            if dataspace in fanout.multicast:
                max_multicast *= fanout.size
        if reads * max_multicast < counts.padded_macs * (1 - _TOLERANCE):
            problems.append(
                f"{inner.name} serves only {reads} {dataspace.value} "
                f"reads for {counts.padded_macs} MACs with multicast "
                f"capacity {max_multicast}")
    return problems


def _check_fill_lower_bounds(architecture: Architecture, layer: ConvLayer,
                             counts: AccessCounts) -> List[str]:
    """Backing-store reads cannot beat distinct-tensor volumes."""
    problems = []
    outer = architecture.storage_levels[0]
    outer_counts = counts.storage[outer.name]
    weight_elements = ((layer.m // layer.groups)
                       * (layer.c // layer.groups) * layer.r * layer.s)
    reads_w = outer_counts.reads.get(DataSpace.WEIGHTS, 0.0)
    if reads_w and reads_w < weight_elements * (1 - _TOLERANCE):
        problems.append(
            f"{outer.name} reads {reads_w} weights, below the distinct "
            f"volume {weight_elements}")
    return problems


def _check_output_conservation(architecture: Architecture, layer: ConvLayer,
                               counts: AccessCounts) -> List[str]:
    """Final output writebacks cover the output tensor; every level's
    output writes are at least its writebacks upstream."""
    problems = []
    output_elements = (layer.n * (layer.m // layer.groups)
                       * layer.p * layer.q)
    outer = architecture.storage_levels[0]
    writes = counts.storage[outer.name].writes.get(DataSpace.OUTPUTS, 0.0)
    if writes and writes < output_elements * (1 - _TOLERANCE):
        problems.append(
            f"{outer.name} receives {writes} output writes, below the "
            f"tensor volume {output_elements}")
    for level in architecture.storage_for(DataSpace.OUTPUTS):
        level_counts = counts.storage[level.name]
        reads = level_counts.reads.get(DataSpace.OUTPUTS, 0.0)
        level_writes = level_counts.writes.get(DataSpace.OUTPUTS, 0.0)
        if reads > level_writes * (1 + _TOLERANCE):
            problems.append(
                f"{level.name} reads more output elements ({reads}) than "
                f"were ever written ({level_writes})")
    return problems


def _check_nonnegative(counts: AccessCounts) -> List[str]:
    problems = []
    for name, storage in counts.storage.items():
        for kind, mapping in (("read", storage.reads),
                              ("write", storage.writes)):
            for dataspace, value in mapping.items():
                if value < -_TOLERANCE:
                    problems.append(
                        f"{name} has negative {dataspace.value} "
                        f"{kind}s: {value}")
    for converter, events in counts.conversions.items():
        for dataspace, value in events.items():
            if value < -_TOLERANCE:
                problems.append(
                    f"{converter} has negative {dataspace.value} "
                    f"conversions: {value}")
    return problems
