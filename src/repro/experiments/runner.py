"""Run every experiment and collect the results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments import (
    fig2_validation,
    fig3_throughput,
    fig4_memory,
    fig5_reuse,
)


@dataclass(frozen=True)
class AllResults:
    """Results of the paper's four evaluation experiments."""

    fig2: fig2_validation.Fig2Result
    fig3: fig3_throughput.Fig3Result
    fig4: fig4_memory.Fig4Result
    fig5: fig5_reuse.Fig5Result

    @property
    def claims(self) -> Dict[str, bool]:
        return {
            "fig2 (0.4% avg energy error)": self.fig2.meets_paper_claim,
            "fig3 (VGG16 near ideal; AlexNet degraded)":
                self.fig3.meets_paper_claims,
            "fig4 (DRAM dominant; batching+fusion ~3x)":
                self.fig4.meets_paper_claims,
            "fig5 (reuse cuts converter/accelerator energy)":
                self.fig5.meets_paper_claims,
        }

    def report(self) -> str:
        sections = [
            self.fig2.table(),
            self.fig3.table(),
            self.fig4.table(),
            self.fig5.table(),
            "Claim summary:",
        ]
        for claim, met in self.claims.items():
            sections.append(f"  [{'ok' if met else 'MISS'}] {claim}")
        return ("\n\n" + "=" * 72 + "\n\n").join(sections[:4]) \
            + "\n\n" + "\n".join(sections[4:])


def run_all(use_mapper: bool = False, workers: int = 1,
            cache=None, plan=None) -> AllResults:
    """Run the paper's full evaluation (a few seconds).

    ``workers``/``cache`` parallelize and memoize the sweep-shaped
    experiments (Figs. 4 and 5) through the engine.
    """
    return AllResults(
        fig2=fig2_validation.run(),
        fig3=fig3_throughput.run(use_mapper=use_mapper),
        fig4=fig4_memory.run(use_mapper=use_mapper, workers=workers,
                             cache=cache, plan=plan),
        fig5=fig5_reuse.run(use_mapper=use_mapper, workers=workers,
                            cache=cache, plan=plan),
    )
