"""Fig. 5 — architecture exploration: spatial reuse vs converter energy.

Sweeps the aggressively-scaled Albireo over output-reuse OR in {3, 9, 15},
input-reuse IR in {9, 27, 45}, and the Original / More-Weight-Reuse multiply
block variants, evaluating ResNet18 accelerator energy (DRAM excluded, as
in the figure).  The paper's finding: added reuse cuts data-converter
energy by 42% and accelerator energy by 31%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.studies import reuse_study
from repro.energy.scaling import AGGRESSIVE, ScalingScenario
from repro.experiments.reported import (
    FIG5_CLAIMS,
    FIG5_INPUT_REUSE,
    FIG5_OUTPUT_REUSE,
    FIG5_VARIANTS,
)
from repro.report.ascii import format_table, stacked_bar_chart
from repro.systems.albireo import AlbireoConfig, SYSTEM_BUCKETS
from repro.systems.dse import ReuseExplorationPoint, reuse_points
from repro.workloads.models import resnet18
from repro.workloads.network import Network

#: Buckets counted as "data converter energy" for the paper's claim.
CONVERTER_BUCKETS = (
    "Weight DE/AE, AE/AO",
    "Input DE/AE, AE/AO",
    "Output AO/AE, AE/DE",
)


@dataclass(frozen=True)
class Fig5Result:
    points: Tuple[ReuseExplorationPoint, ...]

    # ------------------------------------------------------------------
    # Metric extraction
    # ------------------------------------------------------------------
    def point(self, variant: str, output_reuse: int,
              input_reuse: int) -> ReuseExplorationPoint:
        for point in self.points:
            if (point.variant == variant
                    and point.output_reuse == output_reuse
                    and point.input_reuse == input_reuse):
                return point
        raise KeyError((variant, output_reuse, input_reuse))

    def buckets_per_mac(self,
                        point: ReuseExplorationPoint) -> Dict[str, float]:
        evaluation = point.evaluation
        return evaluation.total_energy.per_mac(
            evaluation.total_macs).grouped(SYSTEM_BUCKETS)

    def converter_energy(self, point: ReuseExplorationPoint) -> float:
        buckets = self.buckets_per_mac(point)
        return sum(buckets.get(name, 0.0) for name in CONVERTER_BUCKETS)

    @property
    def baseline(self) -> ReuseExplorationPoint:
        variants = [p.variant for p in self.points]
        first_variant = variants[0]
        return self.point(first_variant, min(p.output_reuse
                                             for p in self.points),
                          min(p.input_reuse for p in self.points))

    @property
    def best(self) -> ReuseExplorationPoint:
        return min(self.points, key=lambda p: p.energy_per_mac_pj)

    @property
    def converter_reduction(self) -> float:
        return 1.0 - (self.converter_energy(self.best)
                      / self.converter_energy(self.baseline))

    @property
    def accelerator_reduction(self) -> float:
        return 1.0 - (self.best.energy_per_mac_pj
                      / self.baseline.energy_per_mac_pj)

    @property
    def meets_paper_claims(self) -> bool:
        """Reuse must deliver reductions of the paper's order (42%/31%)."""
        return (self.converter_reduction
                >= 0.7 * FIG5_CLAIMS["converter_reduction"]
                and self.accelerator_reduction
                >= 0.7 * FIG5_CLAIMS["accelerator_reduction"])

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self) -> str:
        rows: List[Tuple] = []
        chart_rows = []
        for point in self.points:
            buckets = self.buckets_per_mac(point)
            rows.append((
                point.variant,
                point.output_reuse,
                point.input_reuse,
                round(point.energy_per_mac_pj, 4),
                round(self.converter_energy(point), 4),
            ))
            chart_rows.append((
                f"{'Orig' if point.weight_lanes == 1 else 'MWR '}"
                f" OR={point.output_reuse:<2d} IR={point.input_reuse:<2d}",
                buckets,
            ))
        table = format_table(
            ("variant", "OR", "IR", "pJ/MAC", "converter pJ/MAC"),
            rows, align_right=[False, True, True, True, True])
        chart = stacked_bar_chart(chart_rows, width=40)
        return (
            "Fig. 5 — ResNet18 accelerator energy vs reuse "
            "(aggressive scaling, DRAM excluded)\n" + table + "\n\n"
            + chart + "\n\n"
            + f"best point: {self.best.variant} OR={self.best.output_reuse} "
              f"IR={self.best.input_reuse}\n"
            + f"converter energy reduction: {self.converter_reduction:.0%} "
              f"(paper: 42%)\n"
            + f"accelerator energy reduction: "
              f"{self.accelerator_reduction:.0%} (paper: 31%)"
        )


def run(
    network: Optional[Network] = None,
    scenario: ScalingScenario = AGGRESSIVE,
    output_reuse_values: Sequence[int] = FIG5_OUTPUT_REUSE,
    input_reuse_values: Sequence[int] = FIG5_INPUT_REUSE,
    config: Optional[AlbireoConfig] = None,
    use_mapper: bool = False,
    workers: int = 1,
    cache=None,
    plan=None,
) -> Fig5Result:
    network = network or resnet18()
    config = (config or AlbireoConfig()).with_scenario(scenario)
    study = reuse_study(
        network, config,
        output_reuse_values=output_reuse_values,
        input_reuse_values=input_reuse_values,
        weight_lane_variants=FIG5_VARIANTS,
        include_dram=False,
        use_mapper=use_mapper,
    )
    results = study.run(workers=workers, cache=cache, plan=plan)
    return Fig5Result(points=tuple(reuse_points(results)))
