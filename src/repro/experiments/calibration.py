"""Executable calibration: derive device parameters from figure targets.

The scaling scenarios in :mod:`repro.energy.scaling` were fitted so the
modeled Fig. 2 breakdown matches the paper.  This module makes that
fitting *executable and testable* instead of a story in a comment: given
per-MAC bucket targets and an Albireo configuration, it inverts the
fabric's conversion-rate model to per-device energies, and a round-trip
test confirms the full pipeline reproduces the targets.

The inversion uses the closed-form best-case rates (per MAC):

====================  =======================================
bucket                composition
====================  =======================================
``MRR``               mrr_drive / WR
``MZM``               mzm / IR
``AO/AE``             photodiode / wavelengths
``DE/AE``             dac x (1/WR + 1/IR)
``AE/DE``             adc / (wavelengths x OR)
``Laser``             detector-driven link budget (inverted
                      for ``detector_fj`` at fixed losses)
====================  =======================================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

from repro.energy.photonic import link_loss_db
from repro.energy.scaling import ScalingScenario
from repro.exceptions import CalibrationError
from repro.systems.albireo import AlbireoConfig
from repro.units import db_to_linear

#: ADC estimator speed penalty at the Albireo symbol rate (see
#: repro.energy.converters: (rate / 1 GS/s) ** 0.5 above the corner).
def _adc_speed_penalty(clock_ghz: float) -> float:
    return max(1.0, clock_ghz ** 0.5)


def derive_scenario(
    name: str,
    bucket_targets: Mapping[str, float],
    config: AlbireoConfig,
    wall_plug_efficiency: float,
    fixed_loss_db: float,
) -> ScalingScenario:
    """Invert per-MAC bucket targets to a :class:`ScalingScenario`.

    ``bucket_targets`` uses the paper's Fig. 2 labels (MRR, MZM, Laser,
    AO/AE, DE/AE, AE/DE).  The laser's efficiency and fixed losses are
    free technology choices supplied by the caller; ``detector_fj`` is
    derived to hit the Laser bucket through the link budget.
    """
    required = {"MRR", "MZM", "Laser", "AO/AE", "DE/AE", "AE/DE"}
    missing = required - set(bucket_targets)
    if missing:
        raise CalibrationError(
            f"calibration targets missing buckets {sorted(missing)}")
    wr = config.weight_lanes
    ir = config.star_ports
    wavelengths = config.wavelengths

    mrr = bucket_targets["MRR"] * wr
    mzm = bucket_targets["MZM"] * ir
    photodiode = bucket_targets["AO/AE"] * wavelengths
    dac = bucket_targets["DE/AE"] / (1.0 / wr + 1.0 / ir)
    adc_pj = bucket_targets["AE/DE"] * wavelengths * config.output_reuse
    adc_fom = adc_pj * 1000.0 / (2 ** config.bits) \
        / _adc_speed_penalty(config.clock_ghz)
    loss = db_to_linear(link_loss_db(fixed_loss_db, ir))
    detector_fj = (bucket_targets["Laser"] * 1000.0
                   * wall_plug_efficiency / loss)
    return ScalingScenario(
        name=name,
        mzm_pj=mzm,
        mrr_drive_pj=mrr,
        photodiode_pj=photodiode,
        dac_pj_at_8bit=dac,
        adc_fom_fj_per_step=adc_fom,
        detector_fj=detector_fj,
        laser_wall_plug_efficiency=wall_plug_efficiency,
        fixed_loss_db=fixed_loss_db,
    )


def modeled_buckets(scenario: ScalingScenario,
                    config: AlbireoConfig) -> Dict[str, float]:
    """Run the full pipeline and return the Fig. 2 buckets per MAC."""
    from repro.systems.albireo import (
        AlbireoSystem,
        FIG2_BUCKETS,
        albireo_best_case_layer,
    )

    system = AlbireoSystem(dataclasses.replace(config, scenario=scenario))
    layer = albireo_best_case_layer(system.config)
    evaluation = system.evaluate_layer(layer)
    grouped = evaluation.energy.per_mac(
        evaluation.real_macs).grouped(FIG2_BUCKETS)
    return {bucket: grouped.get(bucket, 0.0)
            for bucket in ("MRR", "MZM", "Laser", "AO/AE", "DE/AE",
                           "AE/DE", "Cache")}


def calibration_error(
    targets: Mapping[str, float],
    scenario: ScalingScenario,
    config: AlbireoConfig,
) -> float:
    """Worst-case relative bucket error of a derived scenario."""
    modeled = modeled_buckets(scenario, config)
    worst = 0.0
    for bucket, target in targets.items():
        if bucket not in modeled or target == 0:
            continue
        worst = max(worst, abs(modeled[bucket] - target) / target)
    return worst
