"""Sensitivity analysis: which device parameters move the answer?

One-at-a-time perturbation of every optical-device parameter in a scaling
scenario (default +-20%), measuring the change in best-case accelerator
energy.  The resulting tornado table shows which calibration inputs the
paper's conclusions actually depend on — the analysis reviewers ask for
when a model is calibrated rather than measured (see EXPERIMENTS.md's
threats-to-validity section).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy.scaling import CONSERVATIVE, ScalingScenario
from repro.report.ascii import bar, format_table
from repro.systems.albireo import (
    AlbireoConfig,
    AlbireoSystem,
    albireo_best_case_layer,
)

#: The scenario fields perturbed (all device energies/efficiencies).
PERTURBED_FIELDS: Tuple[str, ...] = (
    "mzm_pj",
    "mrr_drive_pj",
    "photodiode_pj",
    "dac_pj_at_8bit",
    "adc_fom_fj_per_step",
    "detector_fj",
    "laser_wall_plug_efficiency",
    "fixed_loss_db",
)


@dataclass(frozen=True)
class SensitivityEntry:
    """Energy response to one parameter's perturbation."""

    field: str
    baseline_pj_per_mac: float
    low_pj_per_mac: float   # parameter scaled down
    high_pj_per_mac: float  # parameter scaled up

    @property
    def swing(self) -> float:
        """Total relative energy swing across the perturbation range."""
        return (self.high_pj_per_mac - self.low_pj_per_mac) \
            / self.baseline_pj_per_mac

    @property
    def magnitude(self) -> float:
        return abs(self.swing)


@dataclass(frozen=True)
class SensitivityResult:
    scenario: str
    entries: Tuple[SensitivityEntry, ...]

    @property
    def ranked(self) -> List[SensitivityEntry]:
        return sorted(self.entries, key=lambda e: -e.magnitude)

    @property
    def most_sensitive(self) -> str:
        return self.ranked[0].field

    def table(self) -> str:
        maximum = max(entry.magnitude for entry in self.entries) or 1.0
        rows = []
        for entry in self.ranked:
            rows.append((
                entry.field,
                f"{entry.low_pj_per_mac:.4f}",
                f"{entry.high_pj_per_mac:.4f}",
                f"{entry.swing:+.1%}",
                bar(entry.magnitude, maximum, width=24),
            ))
        return (
            f"Sensitivity of best-case energy to +-20% device "
            f"perturbations ({self.scenario} scaling)\n"
            + format_table(
                ("parameter", "-20%", "+20%", "swing", ""),
                rows, align_right=[False, True, True, True, False])
        )


def _perturbed(scenario: ScalingScenario, field: str,
               factor: float) -> ScalingScenario:
    value = getattr(scenario, field) * factor
    if field == "laser_wall_plug_efficiency":
        value = min(value, 1.0)
    return dataclasses.replace(scenario, **{field: value})


def _best_case_energy(scenario: ScalingScenario) -> float:
    system = AlbireoSystem(AlbireoConfig(scenario=scenario))
    layer = albireo_best_case_layer(system.config)
    evaluation = system.evaluate_layer(layer)
    # Accelerator-side energy (DRAM excluded, as in the paper's Fig. 2).
    dram = evaluation.energy.component_total("DRAM")
    return (evaluation.energy_pj - dram) / evaluation.real_macs


def run(
    scenario: ScalingScenario = CONSERVATIVE,
    perturbation: float = 0.2,
    fields: Sequence[str] = PERTURBED_FIELDS,
) -> SensitivityResult:
    """Perturb each device field by +-``perturbation`` and measure."""
    baseline = _best_case_energy(scenario)
    entries = []
    for field in fields:
        low = _best_case_energy(
            _perturbed(scenario, field, 1.0 - perturbation))
        high = _best_case_energy(
            _perturbed(scenario, field, 1.0 + perturbation))
        entries.append(SensitivityEntry(
            field=field,
            baseline_pj_per_mac=baseline,
            low_pj_per_mac=low,
            high_pj_per_mac=high,
        ))
    return SensitivityResult(scenario=scenario.name,
                             entries=tuple(entries))
