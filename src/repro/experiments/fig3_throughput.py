"""Fig. 3 — throughput for VGG16 and AlexNet.

Compares three series per network: *ideal* (100% compute utilization),
*reported* (Albireo's near-ideal published numbers), and *modeled* (this
tool, capturing under-utilization).  The paper's finding: VGG16 runs near
ideal, while AlexNet's fully-connected and strided convolutional layers
severely under-utilize Albireo's compute units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.reported import FIG3_CLAIMS, FIG3_REPORTED
from repro.model.results import NetworkEvaluation
from repro.report.ascii import bar, format_table
from repro.systems.albireo import AlbireoConfig, AlbireoSystem
from repro.workloads.models import alexnet, vgg16
from repro.workloads.network import Network


@dataclass(frozen=True)
class NetworkThroughput:
    """Ideal / reported / modeled MACs-per-cycle for one network."""

    network: str
    ideal: float
    reported: float
    modeled: float
    evaluation: NetworkEvaluation

    @property
    def modeled_over_ideal(self) -> float:
        return self.modeled / self.ideal

    @property
    def modeled_over_reported(self) -> float:
        return self.modeled / self.reported


@dataclass(frozen=True)
class Fig3Result:
    throughputs: Tuple[NetworkThroughput, ...]

    def for_network(self, name: str) -> NetworkThroughput:
        for throughput in self.throughputs:
            if throughput.network == name:
                return throughput
        raise KeyError(name)

    @property
    def meets_paper_claims(self) -> bool:
        """VGG16 near ideal; AlexNet far below reported."""
        vgg = self.for_network("VGG16")
        alex = self.for_network("AlexNet")
        return (
            vgg.modeled_over_ideal
            >= FIG3_CLAIMS["vgg16_modeled_over_ideal_min"]
            and alex.modeled_over_reported
            <= FIG3_CLAIMS["alexnet_modeled_over_reported_max"]
        )

    def table(self) -> str:
        maximum = max(t.ideal for t in self.throughputs)
        rows: List[Tuple] = []
        chart_lines: List[str] = []
        for throughput in self.throughputs:
            rows.append((
                throughput.network,
                round(throughput.ideal),
                round(throughput.reported),
                round(throughput.modeled),
                f"{throughput.modeled_over_ideal:.0%}",
            ))
            for label, value in (("ideal", throughput.ideal),
                                 ("reported", throughput.reported),
                                 ("modeled", throughput.modeled)):
                chart_lines.append(
                    f"{throughput.network:8s} {label:9s} "
                    f"|{bar(value, maximum, 44):44s}| {value:6.0f}"
                )
        table = format_table(
            ("network", "ideal", "reported(paper)", "modeled(this tool)",
             "modeled/ideal"),
            rows, align_right=[False, True, True, True, True])
        per_layer = []
        for throughput in self.throughputs:
            per_layer.append(f"\n{throughput.network} per-layer:")
            for evaluation, count in throughput.evaluation.layers:
                prefix = f"  x{count}" if count > 1 else "    "
                per_layer.append(
                    f"{prefix} {evaluation.layer.name:22s} "
                    f"{evaluation.macs_per_cycle:7.0f} MACs/cycle "
                    f"(util {evaluation.utilization:5.1%})"
                )
        return (
            "Fig. 3 — Throughput (MACs/cycle)\n"
            + table + "\n\n" + "\n".join(chart_lines)
            + "\n" + "\n".join(per_layer)
        )


def run(
    networks: Optional[Tuple[Network, ...]] = None,
    config: Optional[AlbireoConfig] = None,
    use_mapper: bool = False,
) -> Fig3Result:
    """Evaluate throughput for the paper's two networks (or custom ones)."""
    config = config or AlbireoConfig()
    system = AlbireoSystem(config)
    networks = networks or (vgg16(), alexnet())
    throughputs = []
    for network in networks:
        evaluation = system.evaluate_network(network, use_mapper=use_mapper)
        reported = FIG3_REPORTED.get(network.name, {})
        throughputs.append(NetworkThroughput(
            network=network.name,
            ideal=float(reported.get("ideal", config.peak_macs_per_cycle)),
            reported=float(reported.get("reported",
                                        config.peak_macs_per_cycle)),
            modeled=evaluation.macs_per_cycle,
            evaluation=evaluation,
        ))
    return Fig3Result(throughputs=tuple(throughputs))
