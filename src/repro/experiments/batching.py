"""Batching study: the energy-latency trade the paper notes in passing.

Paper §III.3: batching amortizes weight movement energy but "increases
latency."  This experiment quantifies both sides on ResNet18: per-inference
energy falls toward an asymptote (the batch-independent activation and
compute terms) while a request's latency grows linearly with the batch it
waits for.  The knee of the curve is the useful operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.energy.scaling import AGGRESSIVE, ScalingScenario
from repro.report.ascii import bar, format_table
from repro.systems.albireo import AlbireoConfig, AlbireoSystem, \
    SYSTEM_BUCKETS
from repro.workloads.models import resnet18


@dataclass(frozen=True)
class BatchPoint:
    batch: int
    energy_uj_per_inference: float
    latency_ms_per_request: float
    weight_dram_pj_per_mac: float


@dataclass(frozen=True)
class BatchingResult:
    scenario: str
    points: Tuple[BatchPoint, ...]

    @property
    def energy_floor_uj(self) -> float:
        """Per-inference energy at the largest evaluated batch."""
        return self.points[-1].energy_uj_per_inference

    @property
    def amortization_saturated(self) -> bool:
        """True once doubling the batch saves < 5% more energy."""
        if len(self.points) < 2:
            return False
        last, prev = self.points[-1], self.points[-2]
        return (prev.energy_uj_per_inference
                - last.energy_uj_per_inference) \
            < 0.05 * prev.energy_uj_per_inference

    def table(self) -> str:
        max_energy = max(p.energy_uj_per_inference for p in self.points)
        rows = []
        for point in self.points:
            rows.append((
                point.batch,
                f"{point.energy_uj_per_inference:.1f}",
                f"{point.latency_ms_per_request:.2f}",
                f"{point.weight_dram_pj_per_mac:.4f}",
                bar(point.energy_uj_per_inference, max_energy, width=24),
            ))
        return (
            f"Batching on ResNet18 ({self.scenario} scaling): energy "
            f"amortizes, latency compounds\n"
            + format_table(
                ("batch", "energy uJ/inf", "latency ms/req",
                 "weight-DRAM pJ/MAC", ""),
                rows, align_right=[True, True, True, True, False])
        )


def run(
    scenario: ScalingScenario = AGGRESSIVE,
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16, 32),
    config: Optional[AlbireoConfig] = None,
) -> BatchingResult:
    config = (config or AlbireoConfig()).with_scenario(scenario)
    system = AlbireoSystem(config)
    points: List[BatchPoint] = []
    for batch in batch_sizes:
        network = resnet18(batch=batch)
        evaluation = system.evaluate_network(network)
        weight_dram = sum(
            value for (component, dataspace), value
            in evaluation.total_energy.entries().items()
            if component == "DRAM"
            and dataspace is not None and dataspace.value == "Weights")
        points.append(BatchPoint(
            batch=batch,
            energy_uj_per_inference=evaluation.energy_pj / 1e6 / batch,
            latency_ms_per_request=evaluation.latency_ns / 1e6,
            weight_dram_pj_per_mac=weight_dram / evaluation.total_macs,
        ))
    return BatchingResult(scenario=scenario.name, points=tuple(points))
