"""Fig. 2 — energy-breakdown validation.

Models the best-case (fully utilized, unstrided) Albireo workload under the
three device-scaling scenarios and compares the per-MAC component breakdown
{MRR, MZM, Laser, AO/AE, DE/AE, AE/DE, Cache} against the reported values.
The paper's headline: average overall energy error of 0.4%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.energy.scaling import SCENARIOS, ScalingScenario
from repro.experiments.reported import FIG2_CLAIMS, FIG2_REPORTED
from repro.report.ascii import format_table, stacked_bar_chart
from repro.systems.albireo import (
    AlbireoConfig,
    AlbireoSystem,
    FIG2_BUCKETS,
    albireo_best_case_layer,
)

#: The accelerator-side buckets the figure shows (DRAM is excluded: the
#: figure validates the accelerator + laser, DRAM enters in Fig. 4).
BUCKET_ORDER = ("MRR", "MZM", "Laser", "AO/AE", "DE/AE", "AE/DE", "Cache")


@dataclass(frozen=True)
class ScenarioValidation:
    """Modeled vs reported breakdown for one scaling scenario."""

    scenario: str
    modeled: Dict[str, float]
    reported: Dict[str, float]

    @property
    def modeled_total(self) -> float:
        return sum(self.modeled.values())

    @property
    def reported_total(self) -> float:
        return sum(self.reported.values())

    @property
    def total_error(self) -> float:
        """Relative error of the overall pJ/MAC."""
        return abs(self.modeled_total - self.reported_total) \
            / self.reported_total


@dataclass(frozen=True)
class Fig2Result:
    """All three scenario validations plus the headline error metric."""

    validations: Tuple[ScenarioValidation, ...]

    @property
    def average_error(self) -> float:
        return sum(v.total_error for v in self.validations) \
            / len(self.validations)

    @property
    def meets_paper_claim(self) -> bool:
        """Paper: 0.4% average error.  Allow transcription headroom (1%)."""
        return self.average_error <= max(
            0.01, 2.5 * FIG2_CLAIMS["average_error_max"])

    def table(self) -> str:
        rows: List[Tuple] = []
        for validation in self.validations:
            for source, values in (("reported", validation.reported),
                                   ("modeled", validation.modeled)):
                rows.append(
                    (validation.scenario, source)
                    + tuple(round(values.get(bucket, 0.0), 4)
                            for bucket in BUCKET_ORDER)
                    + (round(sum(values.values()), 4),)
                )
        headers = ("scaling", "source") + BUCKET_ORDER + ("total",)
        table = format_table(headers, rows,
                             align_right=[False, False] + [True] * 8)
        chart_rows = []
        for validation in self.validations:
            chart_rows.append((f"{validation.scenario[:7]}/rep",
                               validation.reported))
            chart_rows.append((f"{validation.scenario[:7]}/mod",
                               validation.modeled))
        chart = stacked_bar_chart(chart_rows, width=46)
        return (
            f"Fig. 2 — Best-case energy breakdown (pJ/MAC)\n{table}\n\n"
            f"{chart}\n\n"
            f"average overall energy error: {self.average_error:.2%} "
            f"(paper: 0.4%)"
        )


def run(scenarios: Optional[Tuple[ScalingScenario, ...]] = None) -> Fig2Result:
    """Run the validation for all (or the given) scaling scenarios."""
    scenarios = scenarios or SCENARIOS
    validations = []
    for scenario in scenarios:
        system = AlbireoSystem(AlbireoConfig(scenario=scenario))
        layer = albireo_best_case_layer(system.config)
        evaluation = system.evaluate_layer(layer)
        grouped = evaluation.energy.per_mac(
            evaluation.real_macs).grouped(FIG2_BUCKETS)
        modeled = {bucket: grouped.get(bucket, 0.0)
                   for bucket in BUCKET_ORDER}
        # Fold rounding residue (integrator "Other") into no bucket; it is
        # reported separately by the full breakdown if needed.
        validations.append(ScenarioValidation(
            scenario=scenario.name,
            modeled=modeled,
            reported=dict(FIG2_REPORTED[scenario.name]),
        ))
    return Fig2Result(validations=tuple(validations))
