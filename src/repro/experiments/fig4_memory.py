"""Fig. 4 — full-system (accelerator + DRAM) memory exploration.

ResNet18 energy under {conservative, aggressive} scaling x {non-batched,
batched} x {not fused, fused}, with per-bucket breakdowns normalized within
each scaling (the figure's presentation).  The paper's findings:

* conservatively-scaled Albireo: DRAM is a small share of system energy;
* aggressively-scaled Albireo: DRAM consumes ~75% of system energy;
* batching + fusion together cut aggressive-system energy by 67% (3x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.studies import memory_study
from repro.energy.scaling import AGGRESSIVE, CONSERVATIVE, ScalingScenario
from repro.experiments.reported import FIG4_CLAIMS
from repro.report.ascii import format_table, stacked_bar_chart
from repro.systems.albireo import AlbireoConfig, SYSTEM_BUCKETS
from repro.systems.dse import MemoryExplorationPoint, memory_points
from repro.workloads.models import resnet18
from repro.workloads.network import Network


@dataclass(frozen=True)
class Fig4Result:
    points: Tuple[MemoryExplorationPoint, ...]

    # ------------------------------------------------------------------
    # Metric extraction
    # ------------------------------------------------------------------
    def point(self, scenario: str, batch: int,
              fused: bool) -> MemoryExplorationPoint:
        for point in self.points:
            if (point.scenario.name == scenario
                    and point.batch == batch and point.fused == fused):
                return point
        raise KeyError((scenario, batch, fused))

    def buckets_per_mac(self,
                        point: MemoryExplorationPoint) -> Dict[str, float]:
        evaluation = point.evaluation
        return evaluation.total_energy.per_mac(
            evaluation.total_macs).grouped(SYSTEM_BUCKETS)

    def dram_share(self, scenario: str, batch: int = 1,
                   fused: bool = False) -> float:
        buckets = self.buckets_per_mac(self.point(scenario, batch, fused))
        total = sum(buckets.values())
        return buckets.get("DRAM", 0.0) / total

    def combined_reduction(self, scenario: str = "aggressive") -> float:
        """Energy saved by batching + fusion together vs the baseline."""
        baseline = self.point(scenario, batch=1, fused=False)
        optimized = self.point(scenario,
                               batch=max(p.batch for p in self.points),
                               fused=True)
        return 1.0 - (optimized.energy_per_mac_pj
                      / baseline.energy_per_mac_pj)

    @property
    def meets_paper_claims(self) -> bool:
        """Shape targets: dominant aggressive DRAM, small conservative
        DRAM, and a combined optimization factor near 3x."""
        scenarios = {p.scenario.name for p in self.points}
        checks = []
        if "aggressive" in scenarios:
            checks.append(self.dram_share("aggressive") >= 0.5)
            checks.append(self.combined_reduction("aggressive") >= 0.5)
        if "conservative" in scenarios:
            checks.append(
                self.dram_share("conservative")
                <= FIG4_CLAIMS["conservative_dram_share_max"])
        return all(checks) and bool(checks)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def table(self) -> str:
        rows: List[Tuple] = []
        chart_rows = []
        scenario_max: Dict[str, float] = {}
        for point in self.points:
            scenario_max.setdefault(point.scenario.name, 0.0)
            scenario_max[point.scenario.name] = max(
                scenario_max[point.scenario.name], point.energy_per_mac_pj)
        for point in self.points:
            buckets = self.buckets_per_mac(point)
            total = sum(buckets.values())
            normalizer = scenario_max[point.scenario.name]
            rows.append((
                point.scenario.name,
                "fused" if point.fused else "not-fused",
                f"N={point.batch}",
                round(total, 4),
                round(total / normalizer, 3),
                f"{buckets.get('DRAM', 0.0) / total:.0%}",
            ))
            chart_rows.append((
                f"{point.scenario.name[:4]}/"
                f"{'F' if point.fused else 'nf'}/N{point.batch}",
                {name: value / normalizer
                 for name, value in buckets.items()},
            ))
        table = format_table(
            ("scaling", "fusion", "batch", "pJ/MAC",
             "normalized", "DRAM share"),
            rows, align_right=[False, False, False, True, True, True])
        chart = stacked_bar_chart(chart_rows, width=44)
        claims = []
        for scenario in sorted({p.scenario.name for p in self.points}):
            claims.append(
                f"{scenario}: DRAM share (baseline) = "
                f"{self.dram_share(scenario):.0%}, combined batching+fusion "
                f"reduction = {self.combined_reduction(scenario):.0%}"
            )
        return (
            "Fig. 4 — ResNet18 full-system energy "
            "(normalized per scaling)\n" + table + "\n\n" + chart + "\n\n"
            + "\n".join(claims)
            + "\n(paper: aggressive DRAM share 75%; batching+fusion "
              "reduce aggressive energy 67% = 3x)"
        )


def run(
    network: Optional[Network] = None,
    scenarios: Sequence[ScalingScenario] = (CONSERVATIVE, AGGRESSIVE),
    batch_sizes: Sequence[int] = (1, 8),
    config: Optional[AlbireoConfig] = None,
    use_mapper: bool = False,
    workers: int = 1,
    cache=None,
    plan=None,
) -> Fig4Result:
    network = network or resnet18()
    config = config or AlbireoConfig()
    study = memory_study(
        network, config, scenarios,
        batch_sizes=batch_sizes,
        fusion_options=(False, True),
        use_mapper=use_mapper,
    )
    results = study.run(workers=workers, cache=cache, plan=plan)
    return Fig4Result(points=tuple(memory_points(results)))
