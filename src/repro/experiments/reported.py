"""Values reported by the papers, transcribed for comparison.

Provenance and caveats
----------------------

The ISPASS'24 paper publishes its results as figures only (no
machine-readable artifact is bundled with the arXiv source), and its
"Reported" series in turn transcribes the Albireo paper's (ISCA'21)
projections.  Working offline, we therefore keep two kinds of reference
numbers, clearly separated:

* ``FIG*_CLAIMS`` — quantitative statements made in the paper's *text*
  (exact, quotable): 0.4% average Fig. 2 error; DRAM consuming 75% of the
  aggressively-scaled system; 67% (3x) energy reduction from batching +
  fusion; 42% converter / 31% accelerator energy reduction from added
  reuse.  These are the reproduction targets.

* ``FIG*_REPORTED`` — per-bar values for figure-shaped comparisons.  The
  component-level bars are calibration-derived: our device library
  (:mod:`repro.energy.scaling`) was fitted so the modeled baseline matches
  the figure's reported magnitudes, exactly as the paper fitted CiMLoop's
  component library to Albireo's published projections; the bars are then
  rounded to transcription precision.  They validate that the *pipeline*
  (mapping analysis x component energies) reproduces the totals, not that
  we independently re-measured Albireo.  Treat absolute pJ values with
  ~10% uncertainty; shapes (ratios between bars) are the meaningful part.
"""

from __future__ import annotations

from typing import Dict

# ---------------------------------------------------------------------------
# Fig. 2 — accelerator energy breakdown validation (pJ/MAC, best case)
# ---------------------------------------------------------------------------

FIG2_REPORTED: Dict[str, Dict[str, float]] = {
    "conservative": {
        "MRR": 0.600, "MZM": 0.444, "Laser": 0.860, "AO/AE": 0.180,
        "DE/AE": 0.889, "AE/DE": 0.267, "Cache": 0.055,
    },
    "moderate": {
        "MRR": 0.250, "MZM": 0.133, "Laser": 0.364, "AO/AE": 0.070,
        "DE/AE": 0.356, "AE/DE": 0.107, "Cache": 0.055,
    },
    "aggressive": {
        "MRR": 0.080, "MZM": 0.033, "Laser": 0.100, "AO/AE": 0.024,
        "DE/AE": 0.111, "AE/DE": 0.033, "Cache": 0.055,
    },
}

FIG2_CLAIMS = {
    #: "The average overall energy error is 0.4%."
    "average_error_max": 0.004,
}

# ---------------------------------------------------------------------------
# Fig. 3 — throughput (MACs/cycle)
# ---------------------------------------------------------------------------

#: Ideal = 100% utilization of the 6480-MAC/cycle Albireo configuration.
#: "Reported" transcribes Albireo's near-ideal claims; "modeled" is the
#: ISPASS paper's bar (transcribed from the figure, +-10%).
FIG3_REPORTED: Dict[str, Dict[str, float]] = {
    "VGG16": {"ideal": 6480.0, "reported": 6000.0, "modeled": 5300.0},
    "AlexNet": {"ideal": 6480.0, "reported": 6200.0, "modeled": 1900.0},
}

FIG3_CLAIMS = {
    #: VGG16 runs near ideal; AlexNet is "significantly lower" than
    #: reported once under-utilization is modeled.  We encode the claims
    #: as ratio bounds for shape checks.
    "vgg16_modeled_over_ideal_min": 0.70,
    "alexnet_modeled_over_reported_max": 0.50,
}

# ---------------------------------------------------------------------------
# Fig. 4 — full-system (accelerator + DRAM) memory exploration, ResNet18
# ---------------------------------------------------------------------------

FIG4_CLAIMS = {
    #: "for the aggressively-scaled Albireo, DRAM consumes 75% of overall
    #: system energy"
    "aggressive_dram_share": 0.75,
    #: conservative: "DRAM consumes little overall energy"
    "conservative_dram_share_max": 0.30,
    #: "Using both of these strategies together, we can reduce
    #: aggressively-scaled system energy by 67% (3x improvement)."
    "combined_reduction": 0.67,
}

#: Normalized stacked-bar shares transcribed from the figure for the two
#: corner points of the aggressive-scaling sweep (baseline and fully
#: optimized), used for coarse shape comparison only.
FIG4_REPORTED_SHARES: Dict[str, Dict[str, float]] = {
    "aggressive/baseline": {"DRAM": 0.75, "accelerator": 0.25},
    "aggressive/batched+fused": {"DRAM": 0.15, "accelerator": 0.85},
}

# ---------------------------------------------------------------------------
# Fig. 5 — architecture (reuse) exploration, aggressively-scaled ResNet18
# ---------------------------------------------------------------------------

FIG5_CLAIMS = {
    #: "increasing reuse can reduce data converter energy by 42% and can
    #: reduce accelerator energy by 31%"
    "converter_reduction": 0.42,
    "accelerator_reduction": 0.31,
}

#: The grid the figure sweeps.
FIG5_OUTPUT_REUSE = (3, 9, 15)
FIG5_INPUT_REUSE = (9, 27, 45)
FIG5_VARIANTS = (("Original", 1), ("More Weight Reuse", 3))
