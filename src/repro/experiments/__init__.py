"""The paper's evaluation experiments, one module per figure.

Each module exposes ``run()`` returning a result object with the modeled
numbers, the paper's reported numbers (from
:mod:`repro.experiments.reported`), comparison metrics, and a ``table()``
rendering.  The benchmark suite calls these; so can users::

    from repro.experiments import fig2_validation
    print(fig2_validation.run().table())
"""

from repro.experiments import (
    batching,
    calibration,
    fig2_validation,
    fig3_throughput,
    fig4_memory,
    fig5_reuse,
    reported,
    sensitivity,
    system_comparison,
)
from repro.experiments.runner import run_all

__all__ = [
    "batching",
    "calibration",
    "sensitivity",
    "fig2_validation",
    "fig3_throughput",
    "fig4_memory",
    "fig5_reuse",
    "reported",
    "system_comparison",
    "run_all",
]
