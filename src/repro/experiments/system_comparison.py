"""Cross-system comparison over every registered photonic accelerator.

The paper's stated third use case for the modeling tool: "compare
photonic systems across a range of DNN workloads."  This experiment runs
the registered systems (resolved through
:mod:`repro.systems.registry` — by default all of them) over the
workload suite with one shared component library, so every difference
traces to *architecture* — where the converters sit relative to the
reuse structures — rather than device assumptions.

The expected (and reproduced) contrasts:

* analog weight banks (crossbar, WDM delay-buffer) all but eliminate
  weight-conversion energy, where streamed-weight Albireo pays per MAC;
* Albireo's locally-connected window fabric wins utilization on unstrided
  3x3 convolutions; the crossbar wins on fully-connected layers, which
  leave 8 of 9 Albireo window sites dark;
* all are at the mercy of DRAM for batch-1 FC weights — architecture
  cannot amortize single-use data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.studies import comparison_study
from repro.energy.scaling import AGGRESSIVE, ScalingScenario
from repro.model.results import NetworkEvaluation
from repro.report.ascii import format_table
from repro.systems.registry import get_system, system_names
from repro.workloads.models import alexnet, resnet18, vgg16
from repro.workloads.network import Network


@dataclass(frozen=True)
class SystemComparisonRow:
    """One (system, network) evaluation."""

    system: str
    network: str
    evaluation: NetworkEvaluation
    weight_conversion_pj_per_mac: float

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj

    @property
    def macs_per_cycle(self) -> float:
        return self.evaluation.macs_per_cycle

    @property
    def utilization(self) -> float:
        return self.evaluation.utilization


@dataclass(frozen=True)
class ComparisonResult:
    rows: Tuple[SystemComparisonRow, ...]

    def row(self, system: str, network: str) -> SystemComparisonRow:
        for row in self.rows:
            if row.system == system and row.network == network:
                return row
        raise KeyError((system, network))

    @property
    def systems(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for row in self.rows:
            if row.system not in seen:
                seen.append(row.system)
        return tuple(seen)

    @property
    def expected_contrasts_hold(self) -> bool:
        """The architecture-level contrasts described above: every
        weight-stationary system beats streamed-weight Albireo's
        weight-conversion energy by at least 4x (checked for whichever
        systems are present)."""
        stationary = [name for name in self.systems
                      if name in ("crossbar", "wdm_delay")]
        if "albireo" not in self.systems or not stationary:
            return True
        checks = []
        for network in {row.network for row in self.rows}:
            albireo = self.row("albireo", network)
            for name in stationary:
                other = self.row(name, network)
                checks.append(other.weight_conversion_pj_per_mac
                              < 0.25 * albireo.weight_conversion_pj_per_mac)
        return all(checks)

    def to_records(self) -> List[Dict[str, Any]]:
        """Flat rows (for ``repro compare --json`` and downstream tools)."""
        return [
            {
                "system": row.system,
                "network": row.network,
                "energy_per_mac_pj": row.energy_per_mac_pj,
                "weight_conversion_pj_per_mac":
                    row.weight_conversion_pj_per_mac,
                "macs_per_cycle": row.macs_per_cycle,
                "utilization": row.utilization,
            }
            for row in self.rows
        ]

    def table(self) -> str:
        rows = []
        for row in self.rows:
            rows.append((
                row.network, row.system,
                f"{row.energy_per_mac_pj:.4f}",
                f"{row.weight_conversion_pj_per_mac:.4f}",
                f"{row.macs_per_cycle:.0f}",
                f"{row.utilization:.0%}",
            ))
        return (
            "System comparison (shared component library, aggressive "
            "scaling)\n"
            + format_table(
                ("network", "system", "pJ/MAC", "weight-conv pJ/MAC",
                 "MACs/cycle", "util"),
                rows,
                align_right=[False, False, True, True, True, True])
        )


def run(
    networks: Optional[Sequence[Network]] = None,
    scenario: ScalingScenario = AGGRESSIVE,
    use_mapper: bool = False,
    systems: Optional[Sequence[str]] = None,
    workers: int = 1,
    cache=None,
    plan: Optional[bool] = None,
) -> ComparisonResult:
    """Compare ``systems`` (registry names; default: every registered
    system) over ``networks`` under one scaling scenario.

    A thin shell over :func:`repro.api.studies.comparison_study`, so the
    comparison gains ``workers``/``cache``/``plan`` (the engine's pool,
    persistent memoization, and two-phase scheduler) for free; rows keep
    the historical network-major order.
    """
    networks = networks or (resnet18(), vgg16(), alexnet())
    names = list(systems) if systems else system_names()
    study = comparison_study(networks, names, scenario,
                             use_mapper=use_mapper)
    results = study.run(workers=workers, cache=cache, plan=plan)
    # Records arrive in the study's lattice order — system-major,
    # network-inner — while rows keep the historical network-major order.
    # Positional indexing (rather than tag lookup) pairs every record
    # with its (system, network) even when names repeat in either list.
    rows: List[SystemComparisonRow] = []
    for network_index, network in enumerate(networks):
        for system_index, name in enumerate(names):
            record = results[system_index * len(networks) + network_index]
            assert record.tags["system"] == name, record.tags
            evaluation = record.evaluation
            grouped = evaluation.total_energy.per_mac(
                evaluation.total_macs).grouped(get_system(name).buckets)
            rows.append(SystemComparisonRow(
                system=name,
                network=network.name,
                evaluation=evaluation,
                weight_conversion_pj_per_mac=grouped.get(
                    "Weight DE/AE, AE/AO", 0.0),
            ))
    return ComparisonResult(rows=tuple(rows))
