"""Cross-system comparison over every registered photonic accelerator.

The paper's stated third use case for the modeling tool: "compare
photonic systems across a range of DNN workloads."  This experiment runs
the registered systems (resolved through
:mod:`repro.systems.registry` — by default all of them) over the
workload suite with one shared component library, so every difference
traces to *architecture* — where the converters sit relative to the
reuse structures — rather than device assumptions.

The expected (and reproduced) contrasts:

* analog weight banks (crossbar, WDM delay-buffer) all but eliminate
  weight-conversion energy, where streamed-weight Albireo pays per MAC;
* Albireo's locally-connected window fabric wins utilization on unstrided
  3x3 convolutions; the crossbar wins on fully-connected layers, which
  leave 8 of 9 Albireo window sites dark;
* all are at the mercy of DRAM for batch-1 FC weights — architecture
  cannot amortize single-use data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.energy.scaling import AGGRESSIVE, ScalingScenario
from repro.model.results import NetworkEvaluation
from repro.report.ascii import format_table
from repro.systems.registry import get_system, system_names
from repro.workloads.models import alexnet, resnet18, vgg16
from repro.workloads.network import Network


@dataclass(frozen=True)
class SystemComparisonRow:
    """One (system, network) evaluation."""

    system: str
    network: str
    evaluation: NetworkEvaluation
    weight_conversion_pj_per_mac: float

    @property
    def energy_per_mac_pj(self) -> float:
        return self.evaluation.energy_per_mac_pj

    @property
    def macs_per_cycle(self) -> float:
        return self.evaluation.macs_per_cycle

    @property
    def utilization(self) -> float:
        return self.evaluation.utilization


@dataclass(frozen=True)
class ComparisonResult:
    rows: Tuple[SystemComparisonRow, ...]

    def row(self, system: str, network: str) -> SystemComparisonRow:
        for row in self.rows:
            if row.system == system and row.network == network:
                return row
        raise KeyError((system, network))

    @property
    def systems(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for row in self.rows:
            if row.system not in seen:
                seen.append(row.system)
        return tuple(seen)

    @property
    def expected_contrasts_hold(self) -> bool:
        """The architecture-level contrasts described above: every
        weight-stationary system beats streamed-weight Albireo's
        weight-conversion energy by at least 4x (checked for whichever
        systems are present)."""
        stationary = [name for name in self.systems
                      if name in ("crossbar", "wdm_delay")]
        if "albireo" not in self.systems or not stationary:
            return True
        checks = []
        for network in {row.network for row in self.rows}:
            albireo = self.row("albireo", network)
            for name in stationary:
                other = self.row(name, network)
                checks.append(other.weight_conversion_pj_per_mac
                              < 0.25 * albireo.weight_conversion_pj_per_mac)
        return all(checks)

    def table(self) -> str:
        rows = []
        for row in self.rows:
            rows.append((
                row.network, row.system,
                f"{row.energy_per_mac_pj:.4f}",
                f"{row.weight_conversion_pj_per_mac:.4f}",
                f"{row.macs_per_cycle:.0f}",
                f"{row.utilization:.0%}",
            ))
        return (
            "System comparison (shared component library, aggressive "
            "scaling)\n"
            + format_table(
                ("network", "system", "pJ/MAC", "weight-conv pJ/MAC",
                 "MACs/cycle", "util"),
                rows,
                align_right=[False, False, True, True, True, True])
        )


def run(
    networks: Optional[Sequence[Network]] = None,
    scenario: ScalingScenario = AGGRESSIVE,
    use_mapper: bool = False,
    systems: Optional[Sequence[str]] = None,
) -> ComparisonResult:
    """Compare ``systems`` (registry names; default: every registered
    system) over ``networks`` under one scaling scenario."""
    networks = networks or (resnet18(), vgg16(), alexnet())
    names = list(systems) if systems else system_names()
    instances = []
    for name in names:
        entry = get_system(name)
        instances.append((
            name,
            entry.system_type(entry.config_type(scenario=scenario)),
            entry.buckets,
        ))
    rows: List[SystemComparisonRow] = []
    for network in networks:
        for name, system, buckets in instances:
            evaluation = system.evaluate_network(network,
                                                 use_mapper=use_mapper)
            grouped = evaluation.total_energy.per_mac(
                evaluation.total_macs).grouped(buckets)
            rows.append(SystemComparisonRow(
                system=name,
                network=network.name,
                evaluation=evaluation,
                weight_conversion_pj_per_mac=grouped.get(
                    "Weight DE/AE, AE/AO", 0.0),
            ))
    return ComparisonResult(rows=tuple(rows))
