"""repro — architecture-level modeling of photonic DNN accelerators.

A from-scratch Python reproduction of *"Architecture-Level Modeling of
Photonic Deep Neural Network Accelerators"* (Andrulis et al., ISPASS 2024):
a CiMLoop/Timeloop/Accelergy-style analytical modeling stack extended with
photonic components (microrings, Mach-Zehnder modulators, star couplers,
photodiodes, comb lasers) and applied to the Albireo silicon-photonic CNN
accelerator for full-system (accelerator + DRAM) energy, throughput, and
area estimation.

Quickstart::

    from repro import AlbireoSystem, AlbireoConfig, AGGRESSIVE, resnet18

    system = AlbireoSystem(AlbireoConfig(scenario=AGGRESSIVE))
    result = system.evaluate_network(resnet18())
    print(result.describe())

Or declaratively, for anything from one evaluation to a cross-system
design-space exploration (:class:`Study` / :class:`ResultSet`)::

    from repro import Study

    results = (Study()
               .systems("albireo", "wdm_delay")
               .networks("resnet18")
               .scenarios("conservative", "aggressive")
               .run(workers=4, cache="study-cache"))
    print(results.report(mark_pareto=True))

Layer cake (each importable on its own):

* :mod:`repro.workloads` — DNN layer/network shapes (VGG16, AlexNet,
  ResNet18, ...).
* :mod:`repro.arch` — architecture descriptions: domains (DE/AE/AO/DO),
  storage levels, converter stages, spatial fanouts.
* :mod:`repro.energy` — Accelergy-style plug-in energy/area estimators and
  the conservative/moderate/aggressive photonic scaling scenarios.
* :mod:`repro.mapping` — Timeloop-style loop-nest mappings, exact
  access-count analysis, and the mapping search.
* :mod:`repro.model` — the full-system evaluator (energy breakdowns,
  throughput, batching, fusion).
* :mod:`repro.systems` — the pluggable :class:`PhotonicSystem` framework,
  its registry, the three modeled accelerators (Albireo, WDM crossbar,
  WDM delay-buffer), and design-space exploration drivers.
* :mod:`repro.engine` — the parallel sweep engine: declarative evaluation
  jobs, a persistent mapping/evaluation cache, and a serial/multiprocess
  batch executor.
* :mod:`repro.api` — the declarative :class:`Study`/:class:`ResultSet`
  facade over everything below (and the ``repro run spec.json`` CLI).
* :mod:`repro.obs` — tracing and metrics: hierarchical spans over the
  engine hot path, worker-safe collection, Chrome-trace export.
* :mod:`repro.experiments` — the paper's four evaluation experiments.
"""

from repro.arch import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    Conversion,
    ConverterStage,
    Domain,
    SpatialFanout,
    StorageLevel,
    architecture_from_dict,
    architecture_to_dict,
)
from repro.energy import (
    AGGRESSIVE,
    CONSERVATIVE,
    MODERATE,
    ComponentSpec,
    EnergyEntry,
    EnergyTable,
    ScalingScenario,
    build_table,
    scenario_by_name,
)
from repro.exceptions import (
    CapacityError,
    EstimationError,
    MappingError,
    ReproError,
    SpecError,
    WorkloadError,
)
from repro.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapper,
    Mapping,
    MappingConstraints,
    TemporalLoop,
    analyze,
)
from repro.mapping.serialize import mapping_from_dict, mapping_to_dict
from repro.model.area import area_report, system_area_report
from repro.model.roofline import layer_roofline, network_roofline
from repro.validation import assert_consistent, check_consistency
from repro.model import (
    AcceleratorModel,
    BucketScheme,
    EnergyBreakdown,
    LayerEvaluation,
    NetworkEvaluation,
    NetworkOptions,
)
from repro.engine import (
    EvaluationCache,
    EvaluationJob,
    make_job,
    pareto_frontier,
    run_job,
    run_jobs,
)
from repro.systems import (
    AlbireoConfig,
    AlbireoSystem,
    CrossbarConfig,
    CrossbarSystem,
    FIG2_BUCKETS,
    PhotonicSystem,
    SYSTEM_BUCKETS,
    SystemEntry,
    WdmDelayConfig,
    WdmDelaySystem,
    albireo_best_case_layer,
    create_system,
    register_system,
    sweep_memory_options,
    sweep_reuse_factors,
    system_entries,
    system_names,
)
from repro.api import (
    FailedRecord,
    FailurePolicy,
    Record,
    ResultSet,
    Study,
)
from repro.obs import Trace, Tracer, tracing
from repro.workloads import (
    ConvLayer,
    DataSpace,
    Dim,
    Network,
    alexnet,
    dense_layer,
    lenet5,
    mobilenet_v1,
    network_by_name,
    network_names,
    resnet18,
    tiny_cnn,
    vgg16,
)

__version__ = "1.0.0"

__all__ = [
    "CrossbarSystem",
    "CrossbarConfig",
    "check_consistency",
    "assert_consistent",
    "network_roofline",
    "layer_roofline",
    "system_area_report",
    "area_report",
    "mapping_to_dict",
    "mapping_from_dict",
    "AGGRESSIVE",
    "AcceleratorModel",
    "AlbireoConfig",
    "AlbireoSystem",
    "Architecture",
    "BucketScheme",
    "CONSERVATIVE",
    "CapacityError",
    "ComponentSpec",
    "ComputeAction",
    "ComputeLevel",
    "ConvLayer",
    "Conversion",
    "ConverterStage",
    "DataSpace",
    "Dim",
    "Domain",
    "EnergyBreakdown",
    "EnergyEntry",
    "EnergyTable",
    "EstimationError",
    "EvaluationCache",
    "EvaluationJob",
    "FIG2_BUCKETS",
    "FanoutMapping",
    "LayerEvaluation",
    "LevelMapping",
    "MODERATE",
    "Mapper",
    "Mapping",
    "MappingConstraints",
    "MappingError",
    "Network",
    "NetworkEvaluation",
    "NetworkOptions",
    "PhotonicSystem",
    "FailedRecord",
    "FailurePolicy",
    "Record",
    "ReproError",
    "ResultSet",
    "Study",
    "SYSTEM_BUCKETS",
    "SystemEntry",
    "Trace",
    "Tracer",
    "WdmDelayConfig",
    "WdmDelaySystem",
    "create_system",
    "register_system",
    "system_entries",
    "system_names",
    "ScalingScenario",
    "SpatialFanout",
    "SpecError",
    "StorageLevel",
    "TemporalLoop",
    "WorkloadError",
    "albireo_best_case_layer",
    "alexnet",
    "analyze",
    "architecture_from_dict",
    "architecture_to_dict",
    "build_table",
    "dense_layer",
    "lenet5",
    "make_job",
    "mobilenet_v1",
    "network_by_name",
    "network_names",
    "pareto_frontier",
    "resnet18",
    "run_job",
    "run_jobs",
    "scenario_by_name",
    "sweep_memory_options",
    "sweep_reuse_factors",
    "tiny_cnn",
    "tracing",
    "vgg16",
]
