"""Terminal rendering: aligned tables and stacked bars.

Benchmarks and examples use these to print figure analogues next to the
paper's reported values, so a reproduction run reads like the paper's
evaluation section.
"""

from repro.report.ascii import (
    bar,
    format_table,
    percent,
    stacked_bar,
    stacked_bar_chart,
)
from repro.report.trace import format_trace_summary

__all__ = ["bar", "format_table", "format_trace_summary", "percent",
           "stacked_bar", "stacked_bar_chart"]
