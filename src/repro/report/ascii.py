"""Plain-text tables and bar charts.

No plotting dependency is assumed (the evaluation environment is offline),
so figures render as Unicode bar charts — close enough to compare shapes
against the paper at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_BLOCKS = "▏▎▍▌▋▊▉█"
#: Cycle of fill characters distinguishing stacked-bar segments.
_SEGMENT_CHARS = "█▓▒░▞▚▣▤"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align_right: Optional[Sequence[bool]] = None,
) -> str:
    """Render an aligned text table.

    >>> print(format_table(('a', 'b'), [(1, 'x'), (22, 'yy')]))
    a   b
    --  --
    1   x
    22  yy
    """
    text_rows = [[_cell(value) for value in row] for row in rows]
    columns = len(headers)
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows else len(headers[i])
        for i in range(columns)
    ]
    if align_right is None:
        align_right = [False] * columns

    def render(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if align_right[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [render(list(headers)),
             render(["-" * width for width in widths])]
    lines.extend(render(row) for row in text_rows)
    return "\n".join(lines)


def bar(value: float, maximum: float, width: int = 40) -> str:
    """A single horizontal bar scaled so ``maximum`` fills ``width``."""
    if maximum <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / maximum))
    whole = int(fraction * width)
    remainder = fraction * width - whole
    partial = _BLOCKS[int(remainder * len(_BLOCKS))] \
        if 0 < remainder and whole < width else ""
    return "█" * whole + partial


def stacked_bar(
    segments: Sequence[Tuple[str, float]],
    maximum: float,
    width: int = 50,
) -> str:
    """One stacked horizontal bar; each segment gets a distinct fill."""
    if maximum <= 0:
        return ""
    rendered = []
    for index, (_, value) in enumerate(segments):
        cells = int(round(max(0.0, value) / maximum * width))
        rendered.append(_SEGMENT_CHARS[index % len(_SEGMENT_CHARS)] * cells)
    return "".join(rendered)


def stacked_bar_chart(
    rows: Sequence[Tuple[str, Mapping[str, float]]],
    width: int = 50,
    show_legend: bool = True,
) -> str:
    """A labeled stacked-bar chart, one bar per row.

    ``rows`` is ``[(label, {segment: value, ...}), ...]``; segment order is
    taken from the first row and kept consistent across bars.
    """
    if not rows:
        return ""
    segment_names: List[str] = []
    for _, segments in rows:
        for name in segments:
            if name not in segment_names:
                segment_names.append(name)
    maximum = max(sum(segments.values()) for _, segments in rows)
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, segments in rows:
        ordered = [(name, segments.get(name, 0.0)) for name in segment_names]
        total = sum(value for _, value in ordered)
        lines.append(
            f"{label.rjust(label_width)} |"
            f"{stacked_bar(ordered, maximum, width).ljust(width)}| "
            f"{total:.3f}"
        )
    if show_legend:
        legend = "  ".join(
            f"{_SEGMENT_CHARS[i % len(_SEGMENT_CHARS)]}={name}"
            for i, name in enumerate(segment_names)
        )
        lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.1f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
