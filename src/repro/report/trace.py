"""ASCII rendering of a :class:`~repro.obs.Trace` summary.

The table the CLI's ``--trace-summary`` flag prints: one row per span
name with call count, total (inclusive) time, self time (total minus
direct children — the wall-clock the phase itself owns), and self time
as a share of the timeline extent; aggregate tick counters (regions too
hot for per-call spans, like the analyzer inner pass) follow.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.report.ascii import format_table


def format_trace_summary(trace_or_summary: Union[Dict[str, Any], Any],
                         max_rows: int = 30) -> str:
    """Render a trace (or a :meth:`~repro.obs.Trace.summary` dict) as an
    aligned table, phases sorted by total time descending."""
    summary = (trace_or_summary
               if isinstance(trace_or_summary, dict)
               else trace_or_summary.summary())
    wall_s = summary["wall_s"]
    lines = [
        f"trace: {wall_s:.3f}s wall, {summary['lanes']} lane(s), "
        f"{summary['events']} events"
    ]
    spans = sorted(summary["spans"].items(),
                   key=lambda item: (-item[1]["total_s"], item[0]))
    shown = spans[:max_rows]
    if shown:
        rows = [
            (name,
             f"{row['count']:d}",
             f"{row['total_s']:.4f}",
             f"{row['self_s']:.4f}",
             f"{row['self_s'] / wall_s:.1%}" if wall_s > 0 else "-")
            for name, row in shown
        ]
        lines.append(format_table(
            ("span", "count", "total s", "self s", "% wall"), rows,
            align_right=[False, True, True, True, True]))
        if len(spans) > len(shown):
            lines.append(f"... {len(spans) - len(shown)} more span names")
    else:
        lines.append("(no spans recorded)")
    aggregates = summary.get("aggregates") or {}
    if aggregates:
        rows = [(name, f"{row['count']:d}", f"{row['total_s']:.4f}")
                for name, row in aggregates.items()]
        lines.append(format_table(("aggregate", "count", "total s"), rows,
                                  align_right=[False, True, True]))
    return "\n".join(lines)
