"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands mirror the paper's evaluation section plus the library's own
analyses::

    repro fig2         # energy-breakdown validation
    repro fig3         # VGG16 / AlexNet throughput
    repro fig4         # full-system memory exploration
    repro fig5         # reuse-factor exploration
    repro all          # everything + claim summary
    repro compare      # Albireo vs WDM-crossbar system comparison
    repro sensitivity  # per-device energy sensitivity analysis
    repro roofline     # bandwidth roofline of AlexNet on Albireo
    repro sweep        # parallel/cached configuration sweep (DSE engine)
    repro arch         # print the modeled Albireo hierarchy
    repro area         # per-component area summary

Sweep-shaped commands (``fig4``, ``fig5``, ``sweep``, ``all``) accept
``--workers N`` to evaluate over a process pool and ``--cache DIR`` to
memoize mapper results and evaluations across invocations.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from repro.energy.scaling import AGGRESSIVE, CONSERVATIVE, scenario_by_name
from repro.experiments import (
    fig2_validation,
    fig3_throughput,
    fig4_memory,
    fig5_reuse,
    run_all,
)
from repro.report.ascii import format_table
from repro.systems.albireo import AlbireoConfig, AlbireoSystem

#: The default ``repro sweep`` grid: 2 scenarios x 3 cluster counts x
#: 2 output-reuse x 2 input-reuse settings = 24 Albireo configurations.
SWEEP_SCENARIOS = (CONSERVATIVE, AGGRESSIVE)
SWEEP_CLUSTERS = (8, 16, 32)
SWEEP_OUTPUT_REUSE = (3, 9)
SWEEP_INPUT_REUSE = (9, 27)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Architecture-level modeling of photonic DNN accelerators "
            "(ISPASS 2024 reproduction)"
        ),
    )
    parser.add_argument(
        "command",
        choices=("fig2", "fig3", "fig4", "fig5", "all", "compare",
                 "sensitivity", "roofline", "sweep", "arch", "area"),
        help="experiment or report to run",
    )
    parser.add_argument(
        "--scenario", default="conservative",
        help="scaling scenario for arch/area commands "
             "(conservative|moderate|aggressive)",
    )
    parser.add_argument(
        "--mapper", action="store_true",
        help="use mapper search instead of reference mappings (slower)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate sweep points over N worker processes (default 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist mapper results and evaluations under DIR "
             "(reused and extended by later runs)",
    )
    parser.add_argument(
        "--network", default="resnet18",
        choices=("tiny", "lenet5", "alexnet", "resnet18", "vgg16",
                 "mobilenet"),
        help="workload for the sweep command (default resnet18)",
    )
    return parser


def _sweep_network(name: str):
    from repro.workloads import (
        alexnet, lenet5, mobilenet_v1, resnet18, tiny_cnn, vgg16,
    )

    return {
        "tiny": tiny_cnn,
        "lenet5": lenet5,
        "alexnet": alexnet,
        "resnet18": resnet18,
        "vgg16": vgg16,
        "mobilenet": mobilenet_v1,
    }[name]()


def _run_sweep(args) -> str:
    """The ``repro sweep`` command: a 24-point grid through the engine."""
    from repro.engine import (
        EvaluationCache,
        config_sweep_jobs,
        pareto_frontier,
        run_jobs,
    )

    network = _sweep_network(args.network)
    configs = []
    for scenario in SWEEP_SCENARIOS:
        for clusters in SWEEP_CLUSTERS:
            for output_reuse in SWEEP_OUTPUT_REUSE:
                for input_reuse in SWEEP_INPUT_REUSE:
                    configs.append(replace(
                        AlbireoConfig(scenario=scenario),
                        clusters=clusters,
                        output_reuse=output_reuse,
                        star_ports=input_reuse,
                    ))
    jobs = config_sweep_jobs(network, configs, use_mapper=args.mapper)
    cache = EvaluationCache(args.cache) if args.cache else None
    mapper_stats_before = (cache.mapper_search_stats()
                           if cache is not None else None)

    def progress(finished: int, total: int, job) -> None:
        print(f"\r  [{finished}/{total}] {job.describe():<60s}",
              end="", file=sys.stderr, flush=True)

    results = run_jobs(jobs, workers=args.workers, cache=cache,
                       progress=progress)
    print(file=sys.stderr)

    points = list(zip(configs, results))
    frontier = {
        id(point) for point in pareto_frontier(
            points,
            lambda item: (item[1].energy_per_mac_pj, item[1].latency_ns))
    }
    rows = []
    for point in points:
        config, evaluation = point
        rows.append((
            config.scenario.name,
            config.clusters,
            config.output_reuse,
            config.star_ports,
            f"{evaluation.energy_per_mac_pj:.4f}",
            f"{evaluation.latency_ns / 1e6:.3f}",
            f"{evaluation.utilization:.1%}",
            "*" if id(point) in frontier else "",
        ))
    table = format_table(
        ("scaling", "clusters", "OR", "IR", "pJ/MAC", "latency ms",
         "util", "Pareto"),
        rows,
        align_right=[False, True, True, True, True, True, True, False])
    lines = [
        f"Sweep — {network.name} across {len(configs)} Albireo "
        f"configurations (workers={args.workers})",
        table,
        f"{len(frontier)} Pareto-optimal points "
        f"(energy/MAC vs request latency)",
    ]
    if cache is not None:
        lines.append(cache.describe_stats())
        # Report only this run's fresh searches: entries already in the
        # cache before the run (warm hits, prior runs) are subtracted out.
        mapper_stats = {
            counter: count - mapper_stats_before[counter]
            for counter, count in cache.mapper_search_stats().items()
        }
        if mapper_stats["searches"]:
            lines.append(
                f"mapper: {mapper_stats['searches']} searches, "
                f"{mapper_stats['evaluated']} candidates evaluated "
                f"({mapper_stats['valid']} valid), "
                f"{mapper_stats['deduplicated']} duplicates skipped, "
                f"{mapper_stats['pruned_early']} pruned early"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "fig2":
        print(fig2_validation.run().table())
    elif args.command == "fig3":
        print(fig3_throughput.run(use_mapper=args.mapper).table())
    elif args.command == "fig4":
        print(fig4_memory.run(use_mapper=args.mapper, workers=args.workers,
                              cache=args.cache).table())
    elif args.command == "fig5":
        print(fig5_reuse.run(use_mapper=args.mapper, workers=args.workers,
                             cache=args.cache).table())
    elif args.command == "all":
        print(run_all(use_mapper=args.mapper, workers=args.workers,
                      cache=args.cache).report())
    elif args.command == "compare":
        from repro.experiments import system_comparison

        print(system_comparison.run(use_mapper=args.mapper).table())
    elif args.command == "sensitivity":
        from repro.experiments import sensitivity

        print(sensitivity.run(
            scenario_by_name(args.scenario)).table())
    elif args.command == "roofline":
        from repro.model.roofline import network_roofline
        from repro.workloads import alexnet

        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario),
            dram_bandwidth_gbps=25.6))
        print(network_roofline(system, alexnet()).table())
    elif args.command == "sweep":
        print(_run_sweep(args))
    elif args.command == "arch":
        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario)))
        print(system.describe())
    elif args.command == "area":
        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario)))
        areas = system.area_summary_um2()
        total = sum(areas.values())
        rows = [(name, f"{area / 1e6:.3f}", f"{area / total:.1%}")
                for name, area in sorted(areas.items(),
                                         key=lambda item: -item[1])]
        rows.append(("TOTAL", f"{total / 1e6:.3f}", "100%"))
        print(format_table(("component", "area mm^2", "share"), rows,
                           align_right=[False, True, True]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
