"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands mirror the paper's evaluation section plus the library's own
analyses, each with its own ``--help``::

    repro fig2         # energy-breakdown validation
    repro fig3         # VGG16 / AlexNet throughput
    repro fig4         # full-system memory exploration
    repro fig5         # reuse-factor exploration
    repro all          # everything + claim summary
    repro compare      # cross-system comparison (every registered system)
    repro sensitivity  # per-device energy sensitivity analysis
    repro roofline     # bandwidth roofline of AlexNet on Albireo
    repro sweep        # parallel/cached configuration sweep (DSE engine)
    repro run          # execute a declarative study spec (repro.api)
    repro serve        # long-lived evaluation daemon (HTTP or stdio)
    repro submit       # send specs to a daemon, stream results back
    repro arch         # print a modeled system's hierarchy
    repro area         # per-component area summary
    repro cache        # inspect / gc / migrate a persistent cache dir

The parser is built generically from the library's registries: ``--system``
choices come from :mod:`repro.systems.registry`, ``--network`` choices
from :func:`repro.workloads.network_names`, and ``--scenario`` choices
from :data:`repro.energy.scaling.SCENARIOS`.  Sweep-shaped commands
(``fig4``, ``fig5``, ``sweep``, ``run``, ``compare``, ``all``) accept
``--workers N`` (process-pool evaluation), ``--cache DIR`` (persistent
memoization across invocations), and ``--no-plan`` (whole-job dispatch as
an A/B baseline for the two-phase scheduler).  ``sweep``, ``compare``,
and ``run`` accept ``--json PATH`` to dump their tagged result records
for downstream tooling.

``repro run spec.json`` executes any study expressible as data — systems
x networks x scenarios x grid overrides x batching x fusion — through
:meth:`repro.api.Study.from_json`, so one-off explorations need no code.

``repro cache {stats,gc,migrate} DIR`` maintains the sharded store
behind ``--cache DIR``: exact per-namespace/per-shard inventory
(``stats``), LRU eviction + log compaction under ``--max-entries`` /
``--max-bytes`` budgets (``gc``), and explicit legacy ``cache.json``
migration (``migrate`` — also happens automatically on first use).

Observability: sweep-shaped commands accept ``--trace PATH`` (write a
Chrome/Perfetto span timeline of the run, worker lanes included) and
``--trace-summary`` (per-phase wall-clock attribution table);
``sweep``/``run`` additionally accept ``--progress`` (per-job done/total
lines on stderr).  See :mod:`repro.obs`.

Fault tolerance: ``sweep``/``run`` accept ``--on-error raise|skip|retry``
(default raise — fail-stop), ``--retries N`` and ``--task-timeout S``
(see :class:`repro.engine.executor.FailurePolicy`), and ``--inject
faults.json`` (a deterministic fault plan, for testing the machinery —
see :mod:`repro.engine.faults`).

Service mode: ``repro serve --cache DIR --workers N`` starts the
long-lived daemon (one warm worker pool + one shared cache for its
lifetime; ``--port 0`` picks an ephemeral port and prints it, ``--stdio``
speaks the same protocol over stdin/stdout), and ``repro submit
spec.json --server URL`` runs specs on it, streaming records as they
complete and rendering the same report/``--json`` output as a local
``repro run``.  See :mod:`repro.service`.

Exit codes: 0 success; 2 a library error surfaced as a one-line
``error: ...`` message (unreachable/draining daemons included — pass
``repro --debug <command>`` for the full traceback); 3 the run
completed but some points failed under ``--on-error skip``/``retry``
(the partial results were still written).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional, Sequence

from repro.energy.scaling import SCENARIOS, scenario_by_name
from repro.exceptions import ReproError
from repro.report.ascii import format_table
from repro.systems.registry import create_system, get_system, system_names
from repro.workloads.models import network_by_name, network_names

# ---------------------------------------------------------------------------
# Shared flag groups (added to subparsers by name)
# ---------------------------------------------------------------------------


def _flag_scenario(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", default="conservative",
        choices=[scenario.name for scenario in SCENARIOS],
        help="optical-device scaling scenario (default conservative)",
    )


def _flag_system(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system", default="albireo", choices=system_names(),
        metavar="NAME",
        help=f"registered system (default albireo; "
             f"options: {', '.join(system_names())})",
    )


def _flag_systems_list(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--system", default=None, metavar="NAMES",
        help="comma-separated registered systems "
             "(default: all registered)",
    )


def _flag_mapper(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mapper", action="store_true",
        help="use mapper search instead of reference mappings (slower)",
    )


def _flag_pool(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate over N worker processes (default 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist mapper results and evaluations under DIR "
             "(reused and extended by later runs)",
    )
    parser.add_argument(
        "--no-plan", action="store_true",
        help="disable the two-phase sweep scheduler and dispatch whole "
             "jobs to workers (A/B baseline; results are identical)",
    )
    parser.add_argument(
        "--keep-pool", action="store_true", dest="keep_pool",
        help="keep one persistent worker pool warm across the command's "
             "runs (multi-spec `repro run`): workers are spawned once and "
             "receive only cache entries they have not seen yet",
    )


def _flag_network(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--network", default="resnet18", choices=network_names(),
        help="workload to evaluate (default resnet18)",
    )


def _flag_json(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="also dump the tagged result records (plus cache/planner "
             "statistics) as JSON to PATH ('-' writes JSON to stdout and "
             "the table to stderr, so stdout stays machine-parseable)",
    )


def _flag_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH", dest="trace_path",
        help="record a span timeline of the run and write it to PATH as "
             "Chrome trace JSON (open via ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-summary", action="store_true", dest="trace_summary",
        help="print a per-phase wall-clock attribution table after the "
             "run (implies span collection)",
    )


def _flag_progress(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-job done/total progress lines to stderr "
             "(stdout stays machine-parseable)",
    )


def _flag_faults(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--on-error", default="raise", dest="on_error",
        choices=("raise", "skip", "retry"),
        help="what a failing point does to the run: abort it (raise — "
             "the default), become a failed record while the rest "
             "completes (skip), or be retried with backoff and "
             "quarantined in the cache if it keeps failing (retry); "
             "skip/retry exit with code 3 when failures remain",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max re-attempts per failing job under --on-error retry "
             "(default 2)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        dest="task_timeout",
        help="per-task wall-clock deadline; a task over it raises "
             "TaskTimeoutError and follows the --on-error route",
    )
    parser.add_argument(
        "--inject", default=None, metavar="PATH",
        help="debug: load a deterministic fault-injection plan (JSON "
             "list of {match, action, attempt} specs) and fire it "
             "inside the run — see repro.engine.faults",
    )


_FLAG_GROUPS = {
    "scenario": _flag_scenario,
    "system": _flag_system,
    "systems-list": _flag_systems_list,
    "mapper": _flag_mapper,
    "pool": _flag_pool,
    "network": _flag_network,
    "json": _flag_json,
    "trace": _flag_trace,
    "progress": _flag_progress,
    "faults": _flag_faults,
}


def _plan(args: argparse.Namespace) -> Optional[bool]:
    return False if getattr(args, "no_plan", False) else None


def _failure_policy(args: argparse.Namespace):
    """The ``--on-error``/``--retries``/``--task-timeout`` flags as a
    :class:`~repro.engine.executor.FailurePolicy` — or ``None`` when
    they are all defaults, preserving fail-stop exactly."""
    from repro.engine import FailurePolicy

    on_error = getattr(args, "on_error", "raise")
    task_timeout = getattr(args, "task_timeout", None)
    if on_error == "raise" and task_timeout is None:
        return None
    return FailurePolicy(on_error=on_error,
                         max_retries=getattr(args, "retries", 2),
                         task_timeout=task_timeout)


def _table_stream(args: argparse.Namespace):
    """Where human-readable output goes: stderr when ``--json -`` claims
    stdout for the record dump, stdout otherwise."""
    return (sys.stderr if getattr(args, "json_path", None) == "-"
            else sys.stdout)


def _dump_json(args: argparse.Namespace, records: List[dict],
               stats: Optional[dict] = None) -> None:
    """Write the ``--json`` payload: ``{"records": [...], "stats": {...}}``
    (``stats`` carries cache/planner/mapper counters, or ``None`` for
    commands that run without an engine cache)."""
    import json

    if not getattr(args, "json_path", None):
        return
    payload = {"records": records, "stats": stats}
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json_path == "-":
        print(text)
    else:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(records)} records to {args.json_path}",
              file=sys.stderr)


# ---------------------------------------------------------------------------
# Command handlers
# ---------------------------------------------------------------------------


def _cmd_fig2(args) -> None:
    from repro.experiments import fig2_validation

    print(fig2_validation.run().table())


def _cmd_fig3(args) -> None:
    from repro.experiments import fig3_throughput

    print(fig3_throughput.run(use_mapper=args.mapper).table())


def _cmd_fig4(args) -> None:
    from repro.experiments import fig4_memory

    print(fig4_memory.run(use_mapper=args.mapper, workers=args.workers,
                          cache=args.cache, plan=_plan(args)).table())


def _cmd_fig5(args) -> None:
    from repro.experiments import fig5_reuse

    print(fig5_reuse.run(use_mapper=args.mapper, workers=args.workers,
                         cache=args.cache, plan=_plan(args)).table())


def _cmd_all(args) -> None:
    from repro.experiments import run_all

    print(run_all(use_mapper=args.mapper, workers=args.workers,
                  cache=args.cache, plan=_plan(args)).report())


def _cmd_compare(args) -> None:
    from repro.engine import EvaluationCache
    from repro.experiments import system_comparison

    systems = ([name.strip() for name in args.system.split(",")
                if name.strip()] if args.system else system_names())
    cache = EvaluationCache(args.cache)
    mapper_stats_before = cache.mapper_search_stats()
    result = system_comparison.run(
        use_mapper=args.mapper, systems=systems,
        workers=args.workers, cache=cache, plan=_plan(args))
    print(result.table(), file=_table_stream(args))
    _dump_json(args, result.to_records(),
               stats=_stats_dict(cache, mapper_stats_before))


def _cmd_sensitivity(args) -> None:
    from repro.experiments import sensitivity

    print(sensitivity.run(scenario_by_name(args.scenario)).table())


def _cmd_roofline(args) -> None:
    from repro.model.roofline import network_roofline
    from repro.systems.albireo import AlbireoConfig, AlbireoSystem
    from repro.workloads import alexnet

    system = AlbireoSystem(AlbireoConfig(
        scenario=scenario_by_name(args.scenario),
        dram_bandwidth_gbps=25.6))
    print(network_roofline(system, alexnet()).table())


def _record_label(record) -> str:
    """A compact one-line coordinate label for a streamed record
    (mirrors the job labels studies generate)."""
    tags = record.tags
    parts = [f"{tags.get('system', '?')}:{tags.get('network', '?')}"]
    if tags.get("scenario"):
        parts.append(str(tags["scenario"]))
    if tags.get("fused"):
        parts.append("fused")
    if tags.get("batch", 1) and tags.get("batch", 1) > 1:
        parts.append(f"N={tags['batch']}")
    skip = {"system", "network", "scenario", "fused", "batch"}
    parts.extend(f"{key}={value}" for key, value in tags.items()
                 if key not in skip)
    if record.failed:
        parts.append(f"FAILED:{record.get('error')}")
    return " ".join(parts)


def _progress_printer(record, done: int, total: int) -> None:
    """The ``--progress`` line printer, fed through the ``on_record``
    streaming seam: one ``[done/total]`` line per completed point, in
    completion order, on stderr."""
    print(f"[{done}/{total}] {_record_label(record)}",
          file=sys.stderr, flush=True)


def _run_study(study, args, cache=None, pool=None):
    """Execute a study with the shared pool flags; returns (ResultSet,
    cache, mapper-stats-before).

    Always runs with an :class:`EvaluationCache` (in-memory when no
    ``--cache DIR``) so cache/planner statistics are available for the
    table and the ``--json`` stats record.  Multi-run commands pass a
    shared ``cache`` (and optionally a persistent ``pool``) so later
    runs stay warm.  Progress lines are opt-in (``--progress``) and go
    to stderr.
    """
    from repro.engine import EvaluationCache

    if cache is None:
        cache = EvaluationCache(args.cache)
    mapper_stats_before = cache.mapper_search_stats()
    on_record = (_progress_printer if getattr(args, "progress", False)
                 else None)
    results = study.run(workers=args.workers, cache=cache,
                        plan=_plan(args), on_record=on_record, pool=pool,
                        failure_policy=_failure_policy(args),
                        inject=getattr(args, "inject", None))
    return results, cache, mapper_stats_before


def _failure_lines(results) -> List[str]:
    """A one-line partial-results summary (empty on a clean run)."""
    failures = results.failures
    if not failures:
        return []
    quarantined = sum(1 for record in failures
                      if record.get("quarantined"))
    line = (f"failures: {len(failures)} of {len(results)} points failed"
            + (f" ({quarantined} quarantined)" if quarantined else ""))
    return [line]


def _stats_lines(cache, mapper_stats_before) -> List[str]:
    """Cache and fresh-search statistics lines for sweep-shaped output."""
    if cache is None:
        return []
    lines = [cache.describe_stats()]
    # Report only this run's fresh searches: entries already in the
    # cache before the run (warm hits, prior runs) are subtracted out.
    mapper_stats = {
        counter: count - mapper_stats_before[counter]
        for counter, count in cache.mapper_search_stats().items()
    }
    if mapper_stats["searches"]:
        lines.append(
            f"mapper: {mapper_stats['searches']} searches, "
            f"{mapper_stats['evaluated']} candidates evaluated "
            f"({mapper_stats['valid']} valid), "
            f"{mapper_stats['deduplicated']} duplicates skipped, "
            f"{mapper_stats['pruned_early']} pruned early"
        )
    return lines


def _stats_dict(cache, mapper_stats_before, pool=None) -> Optional[dict]:
    """The ``--json`` stats record: per-namespace cache hits/misses,
    planner dedup counters, this run's fresh mapper-search totals, and
    (when a persistent pool was used) the pool's spawn/delta counters."""
    if cache is None:
        return None
    mapper_stats = {
        counter: count - mapper_stats_before[counter]
        for counter, count in cache.mapper_search_stats().items()
    }
    stats = {
        "cache": cache.stats_snapshot(),
        "planner": cache.planner.to_dict(),
        "mapper": mapper_stats,
    }
    if pool is not None:
        stats["pool"] = pool.stats.to_dict()
    return stats


def _cmd_sweep(args) -> None:
    """A registered system's default grid through the Study facade."""
    from repro.api.studies import config_study

    entry = get_system(args.system)
    if entry.default_sweep is None:
        raise SystemExit(
            f"system {entry.name!r} registers no default sweep grid")
    network = network_by_name(args.network)
    configs = list(entry.default_sweep())
    study = config_study(network, configs, use_mapper=args.mapper)
    results, cache, mapper_stats_before = _run_study(study, args)

    frontier = {id(record) for record in results.pareto()}
    columns = entry.sweep_columns or (
        ("configuration", lambda config: config.describe()
         if hasattr(config, "describe") else repr(config)),
    )
    rows = []
    for record in results:
        base = tuple(getter(record.config) for _, getter in columns)
        if record.failed:
            rows.append(base + (f"FAILED:{record.get('error')}",
                                "-", "-", ""))
        else:
            rows.append(base + (
                f"{record.value('energy_per_mac_pj'):.4f}",
                f"{record.value('latency_ns') / 1e6:.3f}",
                f"{record.value('utilization'):.1%}",
                "*" if id(record) in frontier else "",
            ))
    headers = tuple(header for header, _ in columns) + (
        "pJ/MAC", "latency ms", "util", "Pareto")
    table = format_table(
        headers, rows,
        align_right=[False] + [True] * (len(headers) - 2) + [False])
    lines = [
        f"Sweep — {network.name} across {len(configs)} {entry.name} "
        f"configurations (workers={args.workers})",
        table,
        f"{len(frontier)} Pareto-optimal points "
        f"(energy/MAC vs request latency)",
    ]
    lines.extend(_failure_lines(results))
    lines.extend(_stats_lines(cache, mapper_stats_before))
    print("\n".join(lines), file=_table_stream(args))
    _dump_json(args, results.to_records(),
               stats=_stats_dict(cache, mapper_stats_before))
    return 3 if results.failures else 0


def _cmd_run(args) -> None:
    """Execute declarative study spec files (``repro run spec.json ...``).

    Multiple specs share one evaluation cache; with ``--keep-pool`` they
    also share one persistent worker pool, so later specs reuse warm
    workers and ship only the cache entries those workers have not seen.
    """
    from repro.api import Study, WorkerPool
    from repro.engine import EvaluationCache

    cache = EvaluationCache(args.cache)
    mapper_stats_before = cache.mapper_search_stats()
    pool = (WorkerPool(args.workers) if getattr(args, "keep_pool", False)
            else None)
    lines: List[str] = []
    records: List[dict] = []
    failed_points = 0
    try:
        for spec in args.specs:
            study = Study.from_json(spec)
            results, _, _ = _run_study(study, args, cache=cache, pool=pool)
            lines.append(
                f"Study {study.name!r} — {len(results)} evaluations "
                f"(workers={args.workers})")
            lines.append(results.report(mark_pareto=True))
            lines.extend(_failure_lines(results))
            failed_points += len(results.failures)
            records.extend(results.to_records())
    finally:
        if pool is not None:
            pool.close()
    lines.extend(_stats_lines(cache, mapper_stats_before))
    if pool is not None:
        stats = pool.stats
        lines.append(
            f"pool: {stats.spawns} spawns, {stats.dispatches} dispatches "
            f"({stats.batches} batches), {stats.delta_syncs} delta syncs "
            f"shipping {stats.delta_entries} warm entries, "
            f"{stats.epoch_resets} epoch resets")
    print("\n".join(lines), file=_table_stream(args))
    _dump_json(args, records,
               stats=_stats_dict(cache, mapper_stats_before, pool=pool))
    return 3 if failed_points else 0


def _cmd_serve(args) -> None:
    """Run the long-lived evaluation daemon (``repro serve``)."""
    from repro.service.server import ReproService, serve, serve_stdio

    service = ReproService(cache=args.cache, workers=args.workers,
                           queue_limit=args.queue_limit)
    if args.stdio:
        return serve_stdio(service)
    return serve(service, host=args.host, port=args.port,
                 heartbeat=args.heartbeat)


def _cmd_submit(args) -> None:
    """Run study specs on a daemon (``repro submit spec.json --server
    URL``), streaming records as they complete and rendering the same
    report as a local ``repro run`` of the same specs."""
    from repro.api import Study
    from repro.api.results import ResultSet
    from repro.exceptions import ServiceError
    from repro.service.client import ServiceClient

    if getattr(args, "remote_trace", None) and len(args.specs) > 1:
        raise ReproError(
            "--trace takes one output path; submit one spec per trace")
    client = ServiceClient(args.server, timeout=args.timeout)
    policy = _failure_policy(args)
    lines: List[str] = []
    records: List[dict] = []
    failed_points = 0
    for spec in args.specs:
        study = Study.from_json(spec)
        handle = client.submit(study, workers=args.workers,
                               failure_policy=policy,
                               trace=bool(args.remote_trace))
        rows: List[dict] = []
        failure = None
        for body in handle.events():
            kind = body.get("event")
            if kind == "record":
                rows.append(body["record"])
                if args.progress:
                    record = next(iter(
                        ResultSet.from_records([body["record"]])))
                    _progress_printer(record, body["done"], body["total"])
            elif kind == "error":
                failure = body
            elif kind == "done" and body.get("status") != "done":
                detail = (f": {failure['error']}: {failure['message']}"
                          if failure else "")
                raise ServiceError(
                    f"job {handle.id} ended {body.get('status')}{detail}")
        results = ResultSet.from_records(rows)
        lines.append(
            f"Study {study.name!r} — {len(results)} evaluations "
            f"(server {args.server}, job {handle.id})")
        lines.append(results.report(mark_pareto=True))
        lines.extend(_failure_lines(results))
        failed_points += len(results.failures)
        records.extend(results.to_records())
        if args.remote_trace:
            with open(args.remote_trace, "w", encoding="utf-8") as out:
                out.write(handle.trace())
            print(f"wrote server-side trace to {args.remote_trace}",
                  file=sys.stderr)
    print("\n".join(lines), file=_table_stream(args))
    # --json stats come from the daemon (its cache/planner/pool counters
    # are service-lifetime cumulative, not per-submission).
    _dump_json(args, records, stats=client.stats())
    return 3 if failed_points else 0


def _scenario_system(args):
    """A registered system instance under the requested scenario (for the
    arch/area commands)."""
    entry = get_system(args.system)
    return create_system(
        entry.name,
        entry.config_type(scenario=scenario_by_name(args.scenario)))


def _cmd_arch(args) -> None:
    print(_scenario_system(args).describe())


def _cmd_cache(args) -> None:
    """Maintain a persistent cache directory (the sharded store behind
    ``--cache DIR``): exact inventory, LRU gc + compaction, migration."""
    import json

    from repro.engine.cache import NAMESPACES
    from repro.engine.store import ShardedStore

    # Opening the store auto-migrates a legacy cache.json if present.
    store = ShardedStore(args.directory, NAMESPACES)
    info = {"action": args.action}
    if args.action == "gc":
        info["gc"] = store.gc(max_entries=args.max_entries,
                              max_bytes=args.max_bytes)
    elif args.action == "migrate":
        info["migrated_entries"] = store.stats.migrated_entries
    info.update(store.describe())
    if args.json_stdout:
        print(json.dumps(info, indent=2, sort_keys=True))
        return
    lines = [
        f"cache at {info['directory']}: {info['total_entries']} entries, "
        f"{info['bytes']} bytes across {len(info['shards'])} shards"
    ]
    if args.action == "migrate":
        migrated = info["migrated_entries"]
        lines.append(f"migrated {migrated} entries from cache.json"
                     if migrated else
                     "nothing to migrate (already sharded, or no legacy "
                     "image)")
    if args.action == "gc":
        summary = info["gc"]
        lines.append(f"gc: evicted {summary['evicted_entries']} entries "
                     f"({summary['evicted_bytes']} bytes), compacted "
                     f"shard logs")
    counts = info["entries"]
    lines.append("  " + " | ".join(f"{ns} {counts[ns]}" for ns in counts))
    rows = [(shard, str(detail["entries"]), str(detail["bytes"]))
            for shard, detail in sorted(info["shards"].items())]
    if rows:
        lines.append(format_table(("shard", "entries", "bytes"), rows,
                                  align_right=[False, True, True]))
    print("\n".join(lines))


def _cmd_area(args) -> None:
    system = _scenario_system(args)
    areas = system.area_summary_um2()
    total = sum(areas.values())
    rows = [(name, f"{area / 1e6:.3f}", f"{area / total:.1%}")
            for name, area in sorted(areas.items(),
                                     key=lambda item: -item[1])]
    rows.append(("TOTAL", f"{total / 1e6:.3f}", "100%"))
    print(format_table(("component", "area mm^2", "share"), rows,
                       align_right=[False, True, True]))


# ---------------------------------------------------------------------------
# Generic parser construction
# ---------------------------------------------------------------------------

#: (name, help, flag-group names, handler).  Subparsers are generated
#: from this table, so adding a command is one row + one handler.
_COMMANDS: Sequence = (
    ("fig2", "energy-breakdown validation (paper Fig. 2)",
     (), _cmd_fig2),
    ("fig3", "VGG16 / AlexNet throughput (paper Fig. 3)",
     ("mapper",), _cmd_fig3),
    ("fig4", "full-system memory exploration (paper Fig. 4)",
     ("mapper", "pool", "trace"), _cmd_fig4),
    ("fig5", "reuse-factor exploration (paper Fig. 5)",
     ("mapper", "pool", "trace"), _cmd_fig5),
    ("all", "every experiment + claim summary",
     ("mapper", "pool", "trace"), _cmd_all),
    ("compare", "cross-system comparison over the workload suite",
     ("systems-list", "mapper", "pool", "json", "trace"), _cmd_compare),
    ("sensitivity", "per-device energy sensitivity analysis",
     ("scenario",), _cmd_sensitivity),
    ("roofline", "bandwidth roofline of AlexNet on Albireo",
     ("scenario",), _cmd_roofline),
    ("sweep", "parallel/cached default-grid sweep of one system",
     ("system", "network", "mapper", "pool", "json", "trace", "progress",
      "faults"),
     _cmd_sweep),
    ("run", "execute a declarative study spec (JSON) via repro.api",
     ("pool", "json", "trace", "progress", "faults"), _cmd_run),
    ("serve", "run the long-lived evaluation daemon (HTTP or stdio)",
     (), _cmd_serve),
    ("submit", "run study specs on a daemon, streaming results back",
     ("json", "progress"), _cmd_submit),
    ("arch", "print a modeled system's hierarchy",
     ("system", "scenario"), _cmd_arch),
    ("area", "per-component area summary",
     ("system", "scenario"), _cmd_area),
    ("cache", "inspect, gc, or migrate a persistent cache directory",
     (), _cmd_cache),
)


def _args_run(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "specs", metavar="spec.json", nargs="+",
        help="study spec file(s) (see Study.from_json): systems x "
             "networks x scenarios x grid x batches x fusion; "
             "multiple specs share one cache (and, with "
             "--keep-pool, one warm worker pool)",
    )


def _args_cache(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "action", choices=("stats", "gc", "migrate"),
        help="stats: exact per-namespace/per-shard inventory; gc: evict "
             "LRU entries to budget and compact the shard logs; migrate: "
             "fold a legacy cache.json into the sharded layout",
    )
    sub.add_argument("directory", metavar="DIR",
                     help="cache directory (as passed to --cache)")
    sub.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        dest="max_entries",
        help="gc: keep at most N entries across all namespaces "
             "(least recently used evicted first)",
    )
    sub.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        dest="max_bytes",
        help="gc: shrink the shard logs to at most N bytes of entries",
    )
    sub.add_argument(
        "--json", action="store_true", dest="json_stdout",
        help="print the inventory (and gc/migration summary) as JSON",
    )


def _args_serve(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--cache", default=None, metavar="DIR",
        help="shared persistent cache directory for the daemon's "
             "lifetime (every submitted study reads and extends it); "
             "omit for in-memory",
    )
    sub.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="spawn a persistent N-process worker pool, kept warm "
             "across submissions (default 1: in-process serial)",
    )
    sub.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1)",
    )
    sub.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="listen port; 0 (the default) picks an ephemeral port — "
             "the bound URL is printed on stdout once listening",
    )
    sub.add_argument(
        "--queue-limit", type=int, default=32, metavar="N",
        dest="queue_limit",
        help="max queued studies before submits answer 503 (default 32)",
    )
    sub.add_argument(
        "--heartbeat", type=float, default=10.0, metavar="SECONDS",
        help="idle event-stream heartbeat interval (default 10)",
    )
    sub.add_argument(
        "--stdio", action="store_true",
        help="serve the protocol over stdin/stdout instead of HTTP "
             "(one JSON op per input line, NDJSON events out)",
    )


def _args_submit(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "specs", metavar="spec.json", nargs="+",
        help="study spec file(s) (same format as `repro run`), each "
             "submitted as one daemon job in order",
    )
    sub.add_argument(
        "--server", default="http://127.0.0.1:8100", metavar="URL",
        help="daemon base URL (default http://127.0.0.1:8100; start "
             "one with `repro serve`)",
    )
    sub.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="requested execution width, clamped to the daemon's pool "
             "(default: the daemon's own width)",
    )
    sub.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="socket timeout per request/stream read (default 600)",
    )
    sub.add_argument(
        "--trace", default=None, metavar="PATH", dest="remote_trace",
        help="capture a server-side span timeline of the job and save "
             "it to PATH as Chrome trace JSON (single spec only)",
    )
    sub.add_argument(
        "--on-error", default="raise", dest="on_error",
        choices=("raise", "skip", "retry"),
        help="server-side failure policy for the submitted jobs "
             "(same semantics as `repro run`; skip/retry exit 3 when "
             "failures remain)",
    )
    sub.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max re-attempts per failing point under --on-error retry "
             "(default 2)",
    )
    sub.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        dest="task_timeout",
        help="per-task wall-clock deadline, enforced daemon-side",
    )


#: Commands with bespoke positionals/options beyond the shared flag
#: groups; applied after the groups in ``_build_parser``.
_EXTRA_ARGS = {"run": _args_run, "cache": _args_cache,
               "serve": _args_serve, "submit": _args_submit}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Architecture-level modeling of photonic DNN accelerators "
            "(ISPASS 2024 reproduction)"
        ),
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="show full tracebacks instead of one-line error messages "
             "(goes before the command: repro --debug run ...)",
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command",
                                       required=True)
    for name, help_text, groups, handler in _COMMANDS:
        sub = subparsers.add_parser(name, help=help_text,
                                    description=help_text)
        for group in groups:
            _FLAG_GROUPS[group](sub)
        extra = _EXTRA_ARGS.get(name)
        if extra is not None:
            extra(sub)
        sub.set_defaults(handler=handler)
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run the command's handler (under a tracer when asked); a handler
    returning ``None`` means exit code 0 (3 = partial failures)."""
    handler: Callable[[argparse.Namespace], Optional[int]] = args.handler
    trace_path = getattr(args, "trace_path", None)
    trace_summary = getattr(args, "trace_summary", False)
    if not (trace_path or trace_summary):
        return handler(args) or 0
    # --trace / --trace-summary: run the whole command under an active
    # tracer (span collection reaches the engine, workers included), then
    # export and/or summarize the timeline.
    from repro import obs
    from repro.report import format_trace_summary

    with obs.tracing() as tracer:
        with obs.span(f"repro.{args.command}"):
            code = handler(args) or 0
    trace = tracer.trace()
    if trace_path:
        trace.save(trace_path)
        print(f"wrote trace ({len(trace)} events) to {trace_path}",
              file=sys.stderr)
    if trace_summary:
        print(format_trace_summary(trace), file=_table_stream(args))
    return code


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        # Library errors are user-facing: one line, no traceback (the
        # traceback is for bugs; --debug re-raises to get it).
        if getattr(args, "debug", False):
            raise
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
