"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands mirror the paper's evaluation section::

    repro fig2     # energy-breakdown validation
    repro fig3     # VGG16 / AlexNet throughput
    repro fig4     # full-system memory exploration
    repro fig5     # reuse-factor exploration
    repro all      # everything + claim summary
    repro arch     # print the modeled Albireo hierarchy
    repro area     # per-component area summary
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.energy.scaling import scenario_by_name
from repro.experiments import (
    fig2_validation,
    fig3_throughput,
    fig4_memory,
    fig5_reuse,
    run_all,
)
from repro.report.ascii import format_table
from repro.systems.albireo import AlbireoConfig, AlbireoSystem


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Architecture-level modeling of photonic DNN accelerators "
            "(ISPASS 2024 reproduction)"
        ),
    )
    parser.add_argument(
        "command",
        choices=("fig2", "fig3", "fig4", "fig5", "all", "compare",
                 "sensitivity", "roofline", "arch", "area"),
        help="experiment or report to run",
    )
    parser.add_argument(
        "--scenario", default="conservative",
        help="scaling scenario for arch/area commands "
             "(conservative|moderate|aggressive)",
    )
    parser.add_argument(
        "--mapper", action="store_true",
        help="use mapper search instead of reference mappings (slower)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "fig2":
        print(fig2_validation.run().table())
    elif args.command == "fig3":
        print(fig3_throughput.run(use_mapper=args.mapper).table())
    elif args.command == "fig4":
        print(fig4_memory.run(use_mapper=args.mapper).table())
    elif args.command == "fig5":
        print(fig5_reuse.run(use_mapper=args.mapper).table())
    elif args.command == "all":
        print(run_all(use_mapper=args.mapper).report())
    elif args.command == "compare":
        from repro.experiments import system_comparison

        print(system_comparison.run(use_mapper=args.mapper).table())
    elif args.command == "sensitivity":
        from repro.experiments import sensitivity

        print(sensitivity.run(
            scenario_by_name(args.scenario)).table())
    elif args.command == "roofline":
        from repro.model.roofline import network_roofline
        from repro.workloads import alexnet

        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario),
            dram_bandwidth_gbps=25.6))
        print(network_roofline(system, alexnet()).table())
    elif args.command == "arch":
        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario)))
        print(system.describe())
    elif args.command == "area":
        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario)))
        areas = system.area_summary_um2()
        total = sum(areas.values())
        rows = [(name, f"{area / 1e6:.3f}", f"{area / total:.1%}")
                for name, area in sorted(areas.items(),
                                         key=lambda item: -item[1])]
        rows.append(("TOTAL", f"{total / 1e6:.3f}", "100%"))
        print(format_table(("component", "area mm^2", "share"), rows,
                           align_right=[False, True, True]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
