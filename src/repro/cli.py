"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands mirror the paper's evaluation section plus the library's own
analyses::

    repro fig2         # energy-breakdown validation
    repro fig3         # VGG16 / AlexNet throughput
    repro fig4         # full-system memory exploration
    repro fig5         # reuse-factor exploration
    repro all          # everything + claim summary
    repro compare      # cross-system comparison (every registered system)
    repro sensitivity  # per-device energy sensitivity analysis
    repro roofline     # bandwidth roofline of AlexNet on Albireo
    repro sweep        # parallel/cached configuration sweep (DSE engine)
    repro arch         # print a modeled system's hierarchy
    repro area         # per-component area summary

Modeled systems are resolved through the pluggable registry
(:mod:`repro.systems.registry`); ``sweep``, ``arch``, and ``area`` take
``--system <name>`` (default ``albireo``) and ``compare`` takes a
comma-separated ``--system`` list (default: all registered systems).
Sweep-shaped commands (``fig4``, ``fig5``, ``sweep``, ``all``) accept
``--workers N`` to evaluate over a process pool and ``--cache DIR`` to
memoize mapper results and evaluations across invocations — warmed-cache
sweeps work for every registered system.  Parallel sweeps are scheduled
at sub-task granularity by the engine's planner (dedup counters appear
in the cache-stats line); ``--no-plan`` restores whole-job dispatch as
an A/B baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.energy.scaling import scenario_by_name
from repro.experiments import (
    fig2_validation,
    fig3_throughput,
    fig4_memory,
    fig5_reuse,
    run_all,
)
from repro.report.ascii import format_table
from repro.systems.registry import create_system, get_system, system_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Architecture-level modeling of photonic DNN accelerators "
            "(ISPASS 2024 reproduction)"
        ),
    )
    parser.add_argument(
        "command",
        choices=("fig2", "fig3", "fig4", "fig5", "all", "compare",
                 "sensitivity", "roofline", "sweep", "arch", "area"),
        help="experiment or report to run",
    )
    parser.add_argument(
        "--scenario", default="conservative",
        help="scaling scenario for arch/area commands "
             "(conservative|moderate|aggressive)",
    )
    parser.add_argument(
        "--system", default=None, metavar="NAME",
        help="registered system for sweep/arch/area (default albireo); "
             "comma-separated list for compare (default: all registered)",
    )
    parser.add_argument(
        "--mapper", action="store_true",
        help="use mapper search instead of reference mappings (slower)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate sweep points over N worker processes (default 1)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist mapper results and evaluations under DIR "
             "(reused and extended by later runs)",
    )
    parser.add_argument(
        "--no-plan", action="store_true",
        help="disable the two-phase sweep scheduler and dispatch whole "
             "jobs to workers (A/B baseline; results are identical)",
    )
    parser.add_argument(
        "--network", default="resnet18",
        choices=("tiny", "lenet5", "alexnet", "resnet18", "vgg16",
                 "mobilenet"),
        help="workload for the sweep command (default resnet18)",
    )
    return parser


def _sweep_network(name: str):
    from repro.workloads import (
        alexnet, lenet5, mobilenet_v1, resnet18, tiny_cnn, vgg16,
    )

    return {
        "tiny": tiny_cnn,
        "lenet5": lenet5,
        "alexnet": alexnet,
        "resnet18": resnet18,
        "vgg16": vgg16,
        "mobilenet": mobilenet_v1,
    }[name]()


def _run_sweep(args) -> str:
    """The ``repro sweep`` command: a registered system's default grid
    through the engine."""
    from repro.engine import (
        EvaluationCache,
        config_sweep_jobs,
        pareto_frontier,
        run_jobs,
    )

    entry = get_system(args.system or "albireo")
    if entry.default_sweep is None:
        raise SystemExit(
            f"system {entry.name!r} registers no default sweep grid")
    network = _sweep_network(args.network)
    configs = list(entry.default_sweep())
    jobs = config_sweep_jobs(network, configs, use_mapper=args.mapper)
    cache = EvaluationCache(args.cache) if args.cache else None
    mapper_stats_before = (cache.mapper_search_stats()
                           if cache is not None else None)

    def progress(finished: int, total: int, job) -> None:
        print(f"\r  [{finished}/{total}] {job.describe():<60s}",
              end="", file=sys.stderr, flush=True)

    results = run_jobs(jobs, workers=args.workers, cache=cache,
                       progress=progress,
                       plan=False if args.no_plan else None)
    print(file=sys.stderr)

    points = list(zip(configs, results))
    frontier = {
        id(point) for point in pareto_frontier(
            points,
            lambda item: (item[1].energy_per_mac_pj, item[1].latency_ns))
    }
    columns = entry.sweep_columns or (
        ("configuration", lambda config: config.describe()
         if hasattr(config, "describe") else repr(config)),
    )
    rows = []
    for point in points:
        config, evaluation = point
        rows.append(
            tuple(getter(config) for _, getter in columns) + (
                f"{evaluation.energy_per_mac_pj:.4f}",
                f"{evaluation.latency_ns / 1e6:.3f}",
                f"{evaluation.utilization:.1%}",
                "*" if id(point) in frontier else "",
            ))
    headers = tuple(header for header, _ in columns) + (
        "pJ/MAC", "latency ms", "util", "Pareto")
    table = format_table(
        headers, rows,
        align_right=[False] + [True] * (len(headers) - 2) + [False])
    lines = [
        f"Sweep — {network.name} across {len(configs)} {entry.name} "
        f"configurations (workers={args.workers})",
        table,
        f"{len(frontier)} Pareto-optimal points "
        f"(energy/MAC vs request latency)",
    ]
    if cache is not None:
        lines.append(cache.describe_stats())
        # Report only this run's fresh searches: entries already in the
        # cache before the run (warm hits, prior runs) are subtracted out.
        mapper_stats = {
            counter: count - mapper_stats_before[counter]
            for counter, count in cache.mapper_search_stats().items()
        }
        if mapper_stats["searches"]:
            lines.append(
                f"mapper: {mapper_stats['searches']} searches, "
                f"{mapper_stats['evaluated']} candidates evaluated "
                f"({mapper_stats['valid']} valid), "
                f"{mapper_stats['deduplicated']} duplicates skipped, "
                f"{mapper_stats['pruned_early']} pruned early"
            )
    return "\n".join(lines)


def _scenario_system(args):
    """A registered system instance under the requested scenario (for the
    arch/area commands)."""
    entry = get_system(args.system or "albireo")
    return create_system(
        entry.name,
        entry.config_type(scenario=scenario_by_name(args.scenario)))


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    plan = False if args.no_plan else None
    if args.command == "fig2":
        print(fig2_validation.run().table())
    elif args.command == "fig3":
        print(fig3_throughput.run(use_mapper=args.mapper).table())
    elif args.command == "fig4":
        print(fig4_memory.run(use_mapper=args.mapper, workers=args.workers,
                              cache=args.cache, plan=plan).table())
    elif args.command == "fig5":
        print(fig5_reuse.run(use_mapper=args.mapper, workers=args.workers,
                             cache=args.cache, plan=plan).table())
    elif args.command == "all":
        print(run_all(use_mapper=args.mapper, workers=args.workers,
                      cache=args.cache, plan=plan).report())
    elif args.command == "compare":
        from repro.experiments import system_comparison

        systems = ([name.strip() for name in args.system.split(",")
                    if name.strip()] if args.system else system_names())
        print(system_comparison.run(use_mapper=args.mapper,
                                    systems=systems).table())
    elif args.command == "sensitivity":
        from repro.experiments import sensitivity

        print(sensitivity.run(
            scenario_by_name(args.scenario)).table())
    elif args.command == "roofline":
        from repro.model.roofline import network_roofline
        from repro.systems.albireo import AlbireoConfig, AlbireoSystem
        from repro.workloads import alexnet

        system = AlbireoSystem(AlbireoConfig(
            scenario=scenario_by_name(args.scenario),
            dram_bandwidth_gbps=25.6))
        print(network_roofline(system, alexnet()).table())
    elif args.command == "sweep":
        print(_run_sweep(args))
    elif args.command == "arch":
        system = _scenario_system(args)
        print(system.describe())
    elif args.command == "area":
        system = _scenario_system(args)
        areas = system.area_summary_um2()
        total = sum(areas.values())
        rows = [(name, f"{area / 1e6:.3f}", f"{area / total:.1%}")
                for name, area in sorted(areas.items(),
                                         key=lambda item: -item[1])]
        rows.append(("TOTAL", f"{total / 1e6:.3f}", "100%"))
        print(format_table(("component", "area mm^2", "share"), rows,
                           align_right=[False, True, True]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
