"""Declarative evaluation jobs with stable content-hash keys.

An :class:`EvaluationJob` names everything one evaluation depends on — the
modeled system, its configuration, the network, and the evaluation options
— without performing any work.  Jobs are frozen (hashable, picklable)
values, so they can be generated in bulk by the sweep builders
(:mod:`repro.engine.sweeps`), shipped to worker processes by the executor
(:mod:`repro.engine.executor`), and keyed into the persistent cache
(:mod:`repro.engine.cache`).

The cache key is a SHA-256 content hash over the job's canonical dict
form, which embeds the raw configuration (scenario parameters price the
energy table) *and* the derived architecture (via
:func:`repro.arch.spec.architecture_to_dict`): any change to either —
a scenario parameter, a buffer size, a fanout — produces a new key, so
a cache entry can never be served for a job that would evaluate
differently.  Presentation metadata (``label``, ``tags``) is
deliberately excluded.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.engine.codec import (
    canonical_json,
    config_to_dict,
    network_to_dict,
)
from repro.exceptions import SpecError
from repro.workloads.network import Network

# ---------------------------------------------------------------------------
# Identity-fragment memos
#
# A sweep hashes hundreds of jobs that share one network object and a
# per-config architecture object.  Canonical JSON composes: a dict's
# canonical text embeds its values' canonical texts verbatim (sorting is
# per-object), so the job key can be hashed from cached fragments without
# re-serializing the network for every job — producing byte-identical
# text, and therefore identical keys, to hashing the full identity dict.
# The memos key on object identity and hold a strong reference, so a
# recycled id can never alias a dead object.
# ---------------------------------------------------------------------------

_FRAGMENT_MEMO_LIMIT = 4096
_NETWORK_JSON_MEMO: Dict[int, Tuple[Any, str]] = {}
_ARCH_JSON_MEMO: Dict[int, Tuple[Any, str]] = {}


def _network_json(network: Network) -> str:
    entry = _NETWORK_JSON_MEMO.get(id(network))
    if entry is not None and entry[0] is network:
        return entry[1]
    text = canonical_json(network_to_dict(network))
    if len(_NETWORK_JSON_MEMO) >= _FRAGMENT_MEMO_LIMIT:
        _NETWORK_JSON_MEMO.clear()
    _NETWORK_JSON_MEMO[id(network)] = (network, text)
    return text


def _architecture_json(architecture: Any) -> str:
    from repro.arch.spec import architecture_to_dict

    entry = _ARCH_JSON_MEMO.get(id(architecture))
    if entry is not None and entry[0] is architecture:
        return entry[1]
    text = canonical_json(architecture_to_dict(architecture))
    if len(_ARCH_JSON_MEMO) >= _FRAGMENT_MEMO_LIMIT:
        _ARCH_JSON_MEMO.clear()
    _ARCH_JSON_MEMO[id(architecture)] = (architecture, text)
    return text


def system_registry() -> Dict[str, Any]:
    """The supported systems: name -> :class:`repro.systems.registry.
    SystemEntry`, resolved on first use.

    A thin delegate to the single registry in
    :mod:`repro.systems.registry` (where both built-in and user systems
    register) — imported lazily, so importing the engine never drags in
    (or cycles with) :mod:`repro.systems`.
    """
    from repro.systems.registry import system_entries

    return system_entries()


@dataclass(frozen=True)
class EvaluationJob:
    """One network evaluation, fully specified and inert.

    ``label`` and ``tags`` carry sweep metadata (axis coordinates, variant
    names) for reassembling results into figure points; they do not affect
    the job's identity or cache key.
    """

    network: Network
    config: Any
    system: str = "albireo"
    fused: bool = False
    use_mapper: bool = False
    #: False reproduces the accelerator-only views (paper Figs. 2 and 5):
    #: DRAM energy entries are stripped from the result.
    include_dram: bool = True
    label: str = field(default="", compare=False)
    tags: Tuple[Tuple[str, Any], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        registry = system_registry()
        if self.system not in registry:
            raise SpecError(
                f"unknown system {self.system!r}; "
                f"options: {sorted(registry)}")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The job's canonical, JSON-compatible identity dict.

        Memoized per instance: building it re-derives the architecture and
        serializes the network, and sweep runs consult a job's identity
        several times (cache probe, store scoping, result put).  Jobs are
        frozen, so the dict can never go stale; treat it as read-only.
        """
        cached = self.__dict__.get("_dict_cache")
        if cached is not None:
            return cached
        entry = system_registry()[self.system]
        from repro.arch.spec import architecture_to_dict
        from repro.systems.base import build_cached

        cached = {
            "kind": "network-evaluation",
            "system": self.system,
            "config": config_to_dict(self.config),
            "architecture": architecture_to_dict(
                build_cached(entry.build_architecture, self.config)),
            "network": network_to_dict(self.network),
            "options": {
                "fused": self.fused,
                "use_mapper": self.use_mapper,
                "include_dram": self.include_dram,
            },
        }
        object.__setattr__(self, "_dict_cache", cached)
        return cached

    def _identity_fragments(self) -> Tuple[str, str]:
        """Canonical JSON of the (architecture, config) identity slice —
        memoized per architecture/config object, shared across the jobs
        of a sweep."""
        entry = system_registry()[self.system]
        from repro.systems.base import build_cached

        architecture = build_cached(entry.build_architecture, self.config)
        return (_architecture_json(architecture),
                canonical_json(config_to_dict(self.config)))

    @property
    def key(self) -> str:
        """Stable content-hash cache key (identical across processes).

        Hashes exactly the canonical JSON of :meth:`to_dict`, composed
        from memoized per-object fragments (see module comment) so a
        thousand-job sweep serializes its shared network once, not a
        thousand times.
        """
        cached = self.__dict__.get("_key_cache")
        if cached is None:
            arch_json, config_json = self._identity_fragments()
            text = (
                '{"architecture":' + arch_json
                + ',"config":' + config_json
                + ',"kind":"network-evaluation"'
                + ',"network":' + _network_json(self.network)
                + ',"options":' + canonical_json({
                    "fused": self.fused,
                    "use_mapper": self.use_mapper,
                    "include_dram": self.include_dram,
                })
                + ',"system":' + canonical_json(self.system) + '}'
            )
            cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def __getstate__(self):
        # Keep worker payloads lean: identity caches re-derive on demand.
        state = dict(self.__dict__)
        state.pop("_dict_cache", None)
        state.pop("_key_cache", None)
        state.pop("_system_key_cache", None)
        return state

    # ------------------------------------------------------------------
    # Metadata access
    # ------------------------------------------------------------------
    @property
    def tags_dict(self) -> Dict[str, Any]:
        return dict(self.tags)

    def tag(self, name: str, default: Any = None) -> Any:
        return self.tags_dict.get(name, default)

    def describe(self) -> str:
        options = []
        if self.fused:
            options.append("fused")
        if self.use_mapper:
            options.append("mapper")
        if not self.include_dram:
            options.append("no-dram")
        suffix = f" [{','.join(options)}]" if options else ""
        body = self.label or (f"{self.system}:{self.network.name}")
        return body + suffix


def job_system_key(job: EvaluationJob) -> str:
    """Configuration-scoped hash under which a job's mapper and layer
    store entries live (see :class:`repro.engine.cache.SystemStore`).

    Hashes the (system, config, architecture) slice of the job identity —
    deliberately excluding the network and evaluation options, so every
    job evaluating the same configuration shares one store scope.
    Memoized per job instance (and dropped from pickles, like the other
    identity caches).
    """
    cached = job.__dict__.get("_system_key_cache")
    if cached is None:
        arch_json, config_json = job._identity_fragments()
        text = ('{"architecture":' + arch_json
                + ',"config":' + config_json
                + ',"system":' + canonical_json(job.system) + '}')
        cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
        object.__setattr__(job, "_system_key_cache", cached)
    return cached


def make_job(network: Network, config: Any, **options: Any) -> EvaluationJob:
    """Build a job, inferring ``system`` from the config's type."""
    if "system" not in options:
        from repro.systems.registry import infer_system

        system = infer_system(config)
        if system is None:
            raise SpecError(
                f"cannot infer system for config type "
                f"{type(config).__name__}; pass system= explicitly")
        options["system"] = system
    tags = options.pop("tags", ())
    if isinstance(tags, dict):
        tags = tuple(tags.items())
    return EvaluationJob(network=network, config=config, tags=tags,
                         **options)
