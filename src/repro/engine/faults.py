"""Deterministic fault injection + the worker-side task watchdog.

The resilience layer (worker supervision in :mod:`repro.engine.pool`,
retry/quarantine policy in :mod:`repro.engine.executor`) needs a test
substrate that makes failures happen *on demand and deterministically*:
a :class:`FaultPlan` is a list of :class:`FaultSpec` rules keyed by a
task-key pattern and an attempt number.  When a worker (or the serial
executor) is about to compute a matching task on the matching attempt,
the spec's action fires:

* ``"raise"`` — raise :class:`InjectedFault` (an ordinary task error);
* ``"sleep"`` — sleep ``seconds`` (drives the ``task_timeout`` watchdog);
* ``"exit"``  — ``os._exit(1)`` (abrupt worker death, atexit skipped);
* ``"kill"``  — SIGKILL the worker's own pid (the OOM-killer stand-in).

Task keys are ``"system:layer:kind"`` for planner sub-tasks (``kind`` is
``mapper`` or ``layer``) and ``"system:network:job"`` for whole jobs
(the serial path and parent-side assembly fallback); ``match`` is an
:func:`fnmatch.fnmatch` pattern over that string, so ``"*:conv1:*"``
targets one layer everywhere and ``"albireo:*"`` one system.  ``attempt``
pins the rule to one (re)dispatch attempt — ``0`` fires on the first try
only, so a retried task then succeeds; ``-1`` fires every time, modeling
a deterministic failure that must end up quarantined.

Plans travel as plain dicts (JSON files, ``repro run --inject`` and the
``REPRO_INJECT`` environment variable — a path or inline JSON — both
resolve through :func:`resolve_plan`) and ride to pool workers inside
dispatch payloads, so injection works identically in-process and across
process boundaries.

:func:`task_deadline` is the watchdog the executor arms around each task
when a :class:`~repro.engine.executor.FailurePolicy` sets
``task_timeout``: a real-time SIGALRM interval timer whose handler
raises :class:`~repro.exceptions.TaskTimeoutError` — it interrupts pure
Python and sleeps alike, and is a no-op off the main thread or on
platforms without ``setitimer``.
"""

from __future__ import annotations

import fnmatch
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.exceptions import ReproError, TaskTimeoutError

#: Environment variable consulted when no explicit plan is passed:
#: either a path to a plan JSON file or the inline JSON itself.
FAULT_PLAN_ENV = "REPRO_INJECT"

_ACTIONS = ("raise", "sleep", "exit", "kill")


class InjectedFault(ReproError):
    """The error an ``action="raise"`` fault spec produces."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: pattern x attempt -> action."""

    match: str                  # fnmatch pattern over the task key
    action: str = "raise"       # "raise" | "sleep" | "exit" | "kill"
    attempt: int = 0            # dispatch attempt to fire on; -1 = every
    seconds: float = 30.0       # sleep duration for action="sleep"
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"options: {', '.join(_ACTIONS)}")

    def applies(self, task_key: str, attempt: int) -> bool:
        if self.attempt >= 0 and attempt != self.attempt:
            return False
        return fnmatch.fnmatch(task_key, self.match)

    def fire(self) -> None:
        if self.action == "raise":
            raise InjectedFault(f"{self.message} [{self.match}]")
        if self.action == "sleep":
            time.sleep(self.seconds)
            return
        if self.action == "exit":
            os._exit(1)
        os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies

    def to_dict(self) -> Dict[str, Any]:
        return {"match": self.match, "action": self.action,
                "attempt": self.attempt, "seconds": self.seconds,
                "message": self.message}

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultSpec":
        unknown = sorted(set(spec) - {"match", "action", "attempt",
                                      "seconds", "message"})
        if unknown:
            raise ValueError(f"unknown fault spec keys: {unknown}")
        if "match" not in spec:
            raise ValueError("fault spec needs a 'match' pattern")
        return cls(match=str(spec["match"]),
                   action=str(spec.get("action", "raise")),
                   attempt=int(spec.get("attempt", 0)),
                   seconds=float(spec.get("seconds", 30.0)),
                   message=str(spec.get("message", "injected fault")))


class FaultPlan:
    """An ordered set of :class:`FaultSpec` rules (first match fires)."""

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def check(self, task_key: str, attempt: int) -> None:
        """Fire the first spec matching ``(task_key, attempt)``, if any."""
        for spec in self.specs:
            if spec.applies(task_key, attempt):
                spec.fire()
                return

    # ------------------------------------------------------------------
    # Wire/JSON forms
    # ------------------------------------------------------------------
    def to_wire(self) -> List[Dict[str, Any]]:
        """A plain-data form safe to pickle into worker payloads."""
        return [spec.to_dict() for spec in self.specs]

    @classmethod
    def from_wire(cls, wire: Optional[Iterable[Mapping[str, Any]]],
                  ) -> Optional["FaultPlan"]:
        if wire is None:
            return None
        return cls(FaultSpec.from_dict(spec) for spec in wire)

    @classmethod
    def from_data(cls, data: Any) -> "FaultPlan":
        """Build from decoded JSON: a spec list, or ``{"faults": [...]}``."""
        if isinstance(data, Mapping):
            data = data.get("faults", [])
        if not isinstance(data, (list, tuple)):
            raise ValueError(
                "fault plan JSON must be a list of specs or an object "
                "with a 'faults' list")
        return cls(FaultSpec.from_dict(spec) for spec in data)

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_data(json.load(handle))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by :data:`FAULT_PLAN_ENV` (path or inline
        JSON), or ``None`` when the variable is unset/empty."""
        raw = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not raw:
            return None
        if raw.startswith("[") or raw.startswith("{"):
            return cls.from_data(json.loads(raw))
        return cls.from_json(raw)


def resolve_plan(
        inject: Union[None, str, Mapping[str, Any], list, "FaultPlan"],
) -> Optional[FaultPlan]:
    """Normalize the executor's ``inject`` argument to a plan (or None).

    Accepts an existing plan, a JSON file path, decoded JSON data, or
    ``None`` — which falls back to the :data:`FAULT_PLAN_ENV` variable so
    injection reaches any entry point without threading a flag through.
    """
    if inject is None:
        return FaultPlan.from_env()
    if isinstance(inject, FaultPlan):
        return inject
    if isinstance(inject, str):
        return FaultPlan.from_json(inject)
    return FaultPlan.from_data(inject)


def job_task_key(job: Any) -> str:
    """The injection key for a whole-job evaluation."""
    return f"{job.system}:{job.network.name}:job"


def sub_task_key(system_name: str, task: Any) -> str:
    """The injection key for one planner sub-task."""
    return f"{system_name}:{task.layer.name}:{task.kind}"


@contextmanager
def task_deadline(seconds: Optional[float]):
    """Arm a real-time watchdog around one task (see module docstring).

    ``None``/``0`` yields unguarded.  Only the process main thread can
    receive SIGALRM; elsewhere the deadline degrades to unguarded rather
    than failing — worker pools always run tasks on the main thread, so
    the guard holds exactly where it matters.
    """
    if (not seconds
            or threading.current_thread() is not threading.main_thread()
            or not hasattr(signal, "setitimer")):
        yield
        return

    def _expired(_signum, _frame):
        raise TaskTimeoutError(
            f"task exceeded its {seconds:g}s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
