"""Layer-grain sweep planning: jobs in, deduplicated task chunks out.

:func:`run_jobs` parallelizes a batch of whole-network jobs; this module
turns that batch into a two-phase *work plan* first.  Each job is
expanded into the sub-tasks its evaluation would memoize through the
``store`` seam — mapper searches and per-layer evaluations, enumerated
by :meth:`repro.systems.base.PhotonicSystem.enumerate_sub_tasks` — and
the expansion is deduplicated three ways:

* **within a job** by store key (repeated fusion-block flag pairs);
* **across the batch** by :meth:`~repro.systems.base.PhotonicSystem.
  sub_task_dedup_key`, a name-free identity under which same-geometry
  layers (ResNet18's repeated block shapes, jobs sharing a
  configuration) compute once and the siblings are derived by renaming;
* **against the cache**, so warm entries are never re-planned.

The unique remainder is grouped into :class:`TaskChunk` payloads with
configuration affinity: every task of one ``system_key`` travels in one
chunk (split at mapper-dependency boundaries only when oversized), so a
worker builds each architecture/energy table once, shares one system
instance across the chunk's tasks, and ships all results back in a
single message.  Phase 2 — reassembling whole-network evaluations from
the warmed cache — is cheap and runs in the parent
(:func:`repro.engine.executor.run_jobs`).

Planning never changes what is computed, only where and how often:
results are bit-identical to the serial path, and whole-job cache keys
are untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.engine.cache import EvaluationCache, store_entry_key
from repro.engine.jobs import EvaluationJob, job_system_key, system_registry

#: Namespace a sub-task kind persists into.
_TASK_NAMESPACE = {"mapper": "mappings", "layer": "layers"}


@dataclass(frozen=True)
class LayerAlias:
    """A layer entry derivable from a same-geometry representative by
    renaming (``entry["layer"]["name"]`` is the only difference)."""

    representative_key: str
    alias_key: str
    layer_name: str


@dataclass
class TaskChunk:
    """One phase-1 worker payload: a run of sub-tasks sharing a system.

    Tasks are ordered mapper-first, so a chunk's layer evaluations find
    their searches already in the worker-local store.  ``clusters``
    (parallel to ``tasks``, planner-internal) tags each task with the
    mapper search it produces or consumes, so splitting never separates
    a layer task from the search it depends on.
    """

    system: str
    config: Any
    system_key: str
    tasks: List[Any] = field(default_factory=list)
    clusters: List[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class SweepPlan:
    """The planner's output: what phase 1 runs and what it skipped.

    ``batches`` are the pool dispatch units: each is a list of
    :class:`TaskChunk` segments executed back to back by one worker,
    which ships all their results in a single message.  A chunk (one
    ``system_key``'s tasks) is never divided across batches unless it
    was itself oversized, so configuration affinity survives packing.
    """

    batches: List[List[TaskChunk]]
    aliases: List[LayerAlias]
    planned: int = 0
    deduplicated: int = 0
    cache_hits: int = 0

    @property
    def chunks(self) -> List[TaskChunk]:
        return [chunk for batch in self.batches for chunk in batch]

    @property
    def phase1_tasks(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)


#: Everything the two-phase path calls on a system: enumeration and
#: execution for phase 1, store-key derivation and result assembly
#: (which also reaches the fused-capacity check through ``.model``) for
#: phase 2.  The gate and the assembler test the same set, so a batch
#: that cannot be assembled parent-side never pays for planning.
_PLANNER_SEAMS = ("enumerate_sub_tasks", "compute_sub_task",
                  "sub_task_store_key", "sub_task_dedup_key",
                  "_layer_store_key", "_mapper_store_key")


def plannable(jobs: Sequence[EvaluationJob]) -> bool:
    """Whether every job's system exposes the planner seams (store +
    sub-task enumeration + parent-side assembly).  All
    :class:`~repro.systems.base.PhotonicSystem` subclasses do; a batch
    containing any hand-rolled system falls back to whole-job
    execution."""
    registry = system_registry()
    for job in jobs:
        entry = registry[job.system]
        if not entry.supports_store:
            return False
        if not all(hasattr(entry.system_type, seam)
                   for seam in _PLANNER_SEAMS):
            return False
    return True


def _expand_tasks(system: Any,
                  job: EvaluationJob) -> List[Tuple[Any, Tuple, Tuple]]:
    """One job's sub-tasks with their store and dedup keys precomputed."""
    return [(task, system.sub_task_store_key(task),
             system.sub_task_dedup_key(task))
            for task in system.enumerate_sub_tasks(
                job.network, fused=job.fused, use_mapper=job.use_mapper)]


def build_plan(jobs: Sequence[EvaluationJob],
               cache: EvaluationCache,
               workers: int = 1) -> Optional[SweepPlan]:
    """Expand ``jobs`` into deduplicated, config-affine task chunks.

    Returns ``None`` when the batch is not plannable.  Dedup counters are
    folded into ``cache.planner`` so front-ends report them alongside the
    hit/miss statistics.
    """
    if not plannable(jobs):
        return None
    with obs.span("planner.build_plan", jobs=len(jobs)) as plan_span:
        registry = system_registry()
        groups: Dict[str, TaskChunk] = {}
        # dedup-key -> (namespace, representative entry key); layer
        # representatives also remember their store key string so
        # siblings can be derived by renaming.
        representatives: Dict[Tuple[str, Tuple], str] = {}
        aliases: List[LayerAlias] = []
        alias_keys = set()
        planned = deduplicated = cache_hits = 0
        systems: Dict[str, Any] = {}
        # (system class, network identity, fused, use_mapper) ->
        # [(task, store key, dedup suffix), ...].  Systems declaring
        # their task keys configuration-free (all built-ins) expand each
        # network once per batch instead of once per job; the jobs keep
        # their networks alive, so identity keying is stable here.
        expansions: Dict[Tuple, List[Tuple[Any, Tuple, Tuple]]] = {}

        with obs.span("planner.expand"):
            for job in jobs:
                system_key = job_system_key(job)
                system = systems.get(system_key)
                if system is None:
                    entry = registry[job.system]
                    system = entry.system_type(job.config)
                    systems[system_key] = system
                group = groups.get(system_key)
                if group is None:
                    group = TaskChunk(system=job.system, config=job.config,
                                      system_key=system_key)
                    groups[system_key] = group
                if getattr(system, "subtask_keys_config_free", False):
                    memo_key = (type(system), id(job.network), job.fused,
                                job.use_mapper)
                    expansion = expansions.get(memo_key)
                    if expansion is None:
                        expansion = _expand_tasks(system, job)
                        expansions[memo_key] = expansion
                else:
                    expansion = _expand_tasks(system, job)
                for task, store_key, dedup_suffix in expansion:
                    planned += 1
                    namespace = _TASK_NAMESPACE[task.kind]
                    entry_key = store_entry_key(system_key, store_key)
                    dedup_key = (system_key, dedup_suffix)
                    known = representatives.get(dedup_key)
                    if known is not None:
                        deduplicated += 1
                        if (task.kind == "layer" and known != entry_key
                                and entry_key not in alias_keys
                                and not cache.contains(namespace,
                                                       entry_key)):
                            # Same geometry under another name: derive
                            # after phase 1 instead of recomputing.
                            alias_keys.add(entry_key)
                            aliases.append(LayerAlias(
                                representative_key=known,
                                alias_key=entry_key,
                                layer_name=task.layer.name))
                        continue
                    representatives[dedup_key] = entry_key
                    if cache.contains(namespace, entry_key):
                        cache_hits += 1
                        continue
                    if task.kind == "mapper" or task.use_mapper:
                        cluster = ("search",
                                   system._mapper_store_key(task.layer))
                    else:
                        cluster = ("solo", len(group.tasks))
                    group.tasks.append(task)
                    group.clusters.append(cluster)

        with obs.span("planner.balance"):
            batches = _balance(
                [group for group in groups.values() if group.tasks],
                workers)
        plan = SweepPlan(batches=batches, aliases=aliases, planned=planned,
                         deduplicated=deduplicated, cache_hits=cache_hits)
        stats = cache.planner
        stats.planned += plan.planned
        stats.deduplicated += plan.deduplicated
        stats.cache_hits += plan.cache_hits
        stats.phase1_tasks += plan.phase1_tasks
        stats.batches += len(plan.batches)
        for counter in ("planned", "deduplicated", "cache_hits",
                        "phase1_tasks"):
            plan_span.set(counter, getattr(plan, counter))
        plan_span.set("batches", len(plan.batches))
    return plan


def _balance(groups: List[TaskChunk],
             workers: int) -> List[List[TaskChunk]]:
    """Pack config-affine chunks into balanced dispatch batches.

    A group much bigger than its peers (one slow network job idling the
    other workers) is first split at mapper-dependency boundaries: a
    layer task always stays in the same chunk as the search it consumes,
    so a split never makes a worker redo another chunk's mapper work.
    The chunks are then packed longest-first onto ``~ 2 x workers``
    batches (always to the lightest batch), which keeps the pool tail
    short while amortizing per-message IPC over many tasks.
    """
    if not groups:
        return []
    total = sum(len(group) for group in groups)
    # Enough batches to keep every worker fed and rebalance around a
    # slow one, but few enough that each ships a worthwhile amount of
    # work per message.
    target = max(4, math.ceil(total / max(workers * 2, 1)))
    chunks: List[TaskChunk] = []
    for group in groups:
        if len(group) <= 2 * target:
            chunks.append(group)
            continue
        chunks.extend(_split(group, target))
    chunks.sort(key=lambda chunk: -len(chunk))
    batch_count = min(len(chunks), max(workers * 2, 1))
    batches: List[List[TaskChunk]] = [[] for _ in range(batch_count)]
    loads = [0] * batch_count
    for chunk in chunks:
        lightest = loads.index(min(loads))
        batches[lightest].append(chunk)
        loads[lightest] += len(chunk)
    return [batch for batch in batches if batch]


def _split(group: TaskChunk, target: int) -> List[TaskChunk]:
    """Split a group into ~target-sized chunks at cluster boundaries.

    A cluster is a mapper task plus every layer task consuming its
    search (matched by the ``clusters`` tags computed at plan time);
    mapper-less layer tasks are singleton clusters.  Clusters are packed
    in enumeration order, preserving the mapper-before-dependents
    ordering within each chunk.
    """
    clusters: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for task, cluster in zip(group.tasks, group.clusters):
        if cluster not in clusters:
            clusters[cluster] = []
            order.append(cluster)
        clusters[cluster].append(task)
    chunks: List[TaskChunk] = []
    current: List[Any] = []
    for cluster in order:
        current.extend(clusters[cluster])
        if len(current) >= target:
            chunks.append(TaskChunk(system=group.system, config=group.config,
                                    system_key=group.system_key,
                                    tasks=current))
            current = []
    if current:
        chunks.append(TaskChunk(system=group.system, config=group.config,
                                system_key=group.system_key, tasks=current))
    return chunks
