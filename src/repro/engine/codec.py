"""JSON codecs for the sweep engine's cache and job hashing.

Everything the engine persists — job specifications, mapper results, layer
and network evaluations — round-trips through JSON-compatible dicts so the
on-disk cache is plain text and results survive process boundaries intact.
Python's ``json`` serializes floats via ``repr``, which round-trips every
finite double exactly, so a cached evaluation is bit-identical to a freshly
computed one.

The architecture and mapping halves of the problem already have serializers
(:func:`repro.arch.spec.architecture_to_dict`,
:func:`repro.mapping.serialize.mapping_to_dict`); this module adds the
workload (:class:`~repro.workloads.layer.ConvLayer`,
:class:`~repro.workloads.network.Network`), configuration, and result
(:class:`~repro.model.results.LayerEvaluation`,
:class:`~repro.model.results.NetworkEvaluation`) counterparts plus the
canonical-JSON content hashing the cache keys on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping as TMapping

from repro.energy.scaling import ScalingScenario
from repro.model.results import (
    EnergyBreakdown,
    LayerEvaluation,
    NetworkEvaluation,
)
from repro.workloads.dataspace import DataSpace
from repro.workloads.layer import ConvLayer
from repro.workloads.network import LayerRepetition, Network

# ---------------------------------------------------------------------------
# Canonical JSON and content hashing
# ---------------------------------------------------------------------------


def canonical_json(value: Any) -> str:
    """Deterministic JSON text for ``value`` (sorted keys, no whitespace).

    Tuples serialize as JSON arrays, so structurally equal specs produce
    identical text regardless of the container type or dict insertion
    order — the property the content hash depends on.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_hash(value: Any) -> str:
    """Stable SHA-256 hex digest of ``value``'s canonical JSON form.

    Unlike Python's built-in ``hash``, this does not vary with
    ``PYTHONHASHSEED`` and is therefore stable across processes and runs —
    a cache written by one sweep is readable by every later one.
    """
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Configurations
# ---------------------------------------------------------------------------


def scenario_to_dict(scenario: ScalingScenario) -> Dict[str, Any]:
    """Serialize a scaling scenario to its parameter dict."""
    return dataclasses.asdict(scenario)


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Serialize a system configuration dataclass (Albireo, crossbar, ...).

    Works for any frozen dataclass whose fields are JSON scalars or nested
    dataclasses (``dataclasses.asdict`` recurses into the scenario).
    """
    if not dataclasses.is_dataclass(config):
        raise TypeError(
            f"config must be a dataclass, got {type(config).__name__}")
    return dataclasses.asdict(config)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def layer_to_dict(layer: ConvLayer) -> Dict[str, Any]:
    """Serialize a layer shape (all fields, including the name and kind)."""
    return {
        "name": layer.name,
        "n": layer.n, "m": layer.m, "c": layer.c,
        "p": layer.p, "q": layer.q, "r": layer.r, "s": layer.s,
        "stride_h": layer.stride_h, "stride_w": layer.stride_w,
        "groups": layer.groups,
        "bits_per_weight": layer.bits_per_weight,
        "bits_per_activation": layer.bits_per_activation,
        "kind": layer.kind,
    }


#: Exactly the keys :func:`layer_to_dict` writes — specs matching this
#: schema decode through the shared-instance memo below.
_LAYER_SPEC_KEYS = (
    "name", "n", "m", "c", "p", "q", "r", "s",
    "stride_h", "stride_w", "groups",
    "bits_per_weight", "bits_per_activation", "kind",
)
_LAYER_SPEC_KEY_SET = frozenset(_LAYER_SPEC_KEYS)

#: Content-keyed decode memo.  A sweep decodes the same few distinct
#: layer dicts thousands of times (every job of a grid shares one
#: network); ConvLayer is frozen, so handing back one shared instance
#: per distinct content is safe and skips re-validation.
_LAYER_MEMO: Dict[tuple, ConvLayer] = {}
_MEMO_LIMIT = 16384


def layer_from_dict(spec: TMapping[str, Any]) -> ConvLayer:
    """Rebuild a layer from its dict form."""
    if spec.keys() == _LAYER_SPEC_KEY_SET:
        try:
            key = tuple(map(spec.__getitem__, _LAYER_SPEC_KEYS))
            cached = _LAYER_MEMO.get(key)
        except TypeError:  # unhashable field value: decode directly
            return ConvLayer(**dict(spec))
        if cached is None:
            cached = ConvLayer(**dict(spec))
            if len(_LAYER_MEMO) >= _MEMO_LIMIT:
                _LAYER_MEMO.clear()
            _LAYER_MEMO[key] = cached
        return cached
    return ConvLayer(**dict(spec))


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialize a network: name plus ordered layer repetitions."""
    return {
        "name": network.name,
        "entries": [
            {
                "layer": layer_to_dict(entry.layer),
                "count": entry.count,
                "consumes_previous_output": entry.consumes_previous_output,
                "resident_extra_bits": entry.resident_extra_bits,
            }
            for entry in network.entries
        ],
    }


def network_from_dict(spec: TMapping[str, Any]) -> Network:
    """Rebuild a network from its dict form."""
    entries = tuple(
        LayerRepetition(
            layer=layer_from_dict(entry["layer"]),
            count=int(entry["count"]),
            consumes_previous_output=bool(
                entry.get("consumes_previous_output", True)),
            resident_extra_bits=int(entry.get("resident_extra_bits", 0)),
        )
        for entry in spec["entries"]
    )
    return Network(name=str(spec["name"]), entries=entries)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


def energy_to_list(energy: EnergyBreakdown) -> list:
    """Serialize an energy breakdown as [component, dataspace, pJ] triples
    (dataspace ``None`` for per-compute costs).

    Entry order is preserved, NOT sorted: ``total_pj`` sums the entries in
    insertion order, and float addition is not associative, so reordering
    would perturb totals in the last ulp — breaking the engine's
    bit-identical serial/parallel/cached guarantee.
    """
    return [
        [component, None if dataspace is None else dataspace.value, value]
        for (component, dataspace), value in energy.entries().items()
    ]


#: ``DataSpace(value)`` goes through the (slow) enum constructor; this
#: map resolves the same lookup in one dict probe.
_DATASPACE_BY_VALUE = {member.value: member for member in DataSpace}

#: Content-keyed memo of decoded entry dicts.  The planner's alias
#: derivation copies layer entries per name, so a big sweep decodes the
#: same energy rows once per alias; memoizing the *entries dict* (not
#: the breakdown) keeps every returned EnergyBreakdown an independent,
#: mutable object — its constructor copies the dict.
_ENERGY_MEMO: Dict[tuple, dict] = {}


def _decode_energy_rows(rows: list) -> dict:
    entries = {}
    for component, dataspace, value in rows:
        if dataspace is not None:
            member = _DATASPACE_BY_VALUE.get(dataspace)
            dataspace = member if member is not None \
                else DataSpace(dataspace)
        key = (component if type(component) is str else str(component),
               dataspace)
        # ``0.0 +`` mirrors the pre-memo accumulator exactly (a -0.0
        # value decodes to 0.0 either way).
        entries[key] = entries.get(key, 0.0) + float(value)
    return entries


def energy_from_list(rows: list) -> EnergyBreakdown:
    """Rebuild an energy breakdown from its triple list."""
    try:
        memo_key = tuple(map(tuple, rows))
        entries = _ENERGY_MEMO.get(memo_key)
    except (TypeError, ValueError):  # unhashable/malformed: decode directly
        return EnergyBreakdown(_decode_energy_rows(rows))
    if entries is None:
        entries = _decode_energy_rows(rows)
        if len(_ENERGY_MEMO) >= _MEMO_LIMIT:
            _ENERGY_MEMO.clear()
        _ENERGY_MEMO[memo_key] = entries
    return EnergyBreakdown(entries)


def layer_evaluation_to_dict(evaluation: LayerEvaluation) -> Dict[str, Any]:
    """Serialize one layer evaluation (shape, energy, performance)."""
    return {
        "layer": layer_to_dict(evaluation.layer),
        "energy": energy_to_list(evaluation.energy),
        "cycles": evaluation.cycles,
        "real_macs": evaluation.real_macs,
        "padded_macs": evaluation.padded_macs,
        "peak_parallelism": evaluation.peak_parallelism,
        "clock_ghz": evaluation.clock_ghz,
        "occupancy_bits": dict(evaluation.occupancy_bits),
        "compute_cycles": evaluation.compute_cycles,
        "bandwidth_bound_level": evaluation.bandwidth_bound_level,
    }


def layer_evaluation_from_dict(
        spec: TMapping[str, Any]) -> LayerEvaluation:
    """Rebuild a layer evaluation from its dict form."""
    return LayerEvaluation(
        layer=layer_from_dict(spec["layer"]),
        energy=energy_from_list(spec["energy"]),
        cycles=int(spec["cycles"]),
        real_macs=int(spec["real_macs"]),
        padded_macs=int(spec["padded_macs"]),
        peak_parallelism=int(spec["peak_parallelism"]),
        clock_ghz=float(spec["clock_ghz"]),
        occupancy_bits={str(k): float(v)
                        for k, v in spec.get("occupancy_bits", {}).items()},
        compute_cycles=(None if spec.get("compute_cycles") is None
                        else int(spec["compute_cycles"])),
        bandwidth_bound_level=spec.get("bandwidth_bound_level"),
    )


def network_evaluation_to_dict(
        evaluation: NetworkEvaluation) -> Dict[str, Any]:
    """Serialize a whole-network evaluation."""
    return {
        "name": evaluation.name,
        "layers": [
            [layer_evaluation_to_dict(layer_eval), count]
            for layer_eval, count in evaluation.layers
        ],
        "clock_ghz": evaluation.clock_ghz,
        "peak_parallelism": evaluation.peak_parallelism,
    }


def network_evaluation_from_dict(
        spec: TMapping[str, Any]) -> NetworkEvaluation:
    """Rebuild a network evaluation from its dict form."""
    layers = tuple(
        (layer_evaluation_from_dict(layer_spec), int(count))
        for layer_spec, count in spec["layers"]
    )
    return NetworkEvaluation(
        name=str(spec["name"]),
        layers=layers,
        clock_ghz=float(spec["clock_ghz"]),
        peak_parallelism=int(spec["peak_parallelism"]),
    )
