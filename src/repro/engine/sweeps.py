"""Sweep builders: turn parameter grids into job lists, and job results
into Pareto frontiers.

These functions generate :class:`~repro.engine.jobs.EvaluationJob` lists
for the paper's exploration axes (the Fig. 5 reuse grid, the Fig. 4
memory-system grid, generic configuration sweeps) without evaluating
anything — the executor decides serial/parallel/cached execution.  Each
job carries its sweep coordinates in ``tags`` so callers can reassemble
results into figure points.

Also home to the sort-based :func:`pareto_frontier` (O(n log n) for two
objectives) used by energy-vs-latency configuration sweeps.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.jobs import EvaluationJob, make_job
from repro.workloads.network import Network

# ---------------------------------------------------------------------------
# Parameter grids
# ---------------------------------------------------------------------------


def parameter_grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes, in deterministic row-major order.

    >>> parameter_grid(a=(1, 2), b=("x",))
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, values)) for values in combos]


def grid_jobs(
    network: Network,
    base_config: Any,
    grid: Sequence[Dict[str, Any]],
    use_mapper: bool = False,
    include_dram: bool = True,
    fused: bool = False,
) -> List[EvaluationJob]:
    """One job per grid point; each point's keys override config fields."""
    jobs = []
    for point in grid:
        config = replace(base_config, **point)
        label = " ".join(f"{name}={value}" for name, value in point.items())
        jobs.append(make_job(
            network, config,
            use_mapper=use_mapper, include_dram=include_dram, fused=fused,
            label=label, tags=dict(point),
        ))
    return jobs


# ---------------------------------------------------------------------------
# The paper's sweeps as job lists
# ---------------------------------------------------------------------------


def reuse_sweep_jobs(
    network: Network,
    base_config: Any,
    output_reuse_values: Sequence[int] = (3, 9, 15),
    input_reuse_values: Sequence[int] = (9, 27, 45),
    weight_lane_variants: Sequence[Tuple[str, int]] = (
        ("Original", 1), ("More Weight Reuse", 3),
    ),
    include_dram: bool = False,
    use_mapper: bool = False,
) -> List[EvaluationJob]:
    """Jobs for the Fig. 5 reuse grid (see
    :func:`repro.systems.dse.sweep_reuse_factors` for the physics).

    Raising IR multiplies the broadcast width, so cluster count scales
    down to hold the MAC budget roughly constant — the paper explores
    re-wirings of the same silicon, not larger chips.
    """
    jobs = []
    for variant_name, weight_lanes in weight_lane_variants:
        for input_reuse in input_reuse_values:
            for output_reuse in output_reuse_values:
                lane_scale = (input_reuse // base_config.star_ports) \
                    * weight_lanes
                clusters = max(1, base_config.clusters // lane_scale)
                config = replace(
                    base_config,
                    star_ports=input_reuse,
                    output_reuse=output_reuse,
                    weight_lanes=weight_lanes,
                    clusters=clusters,
                )
                jobs.append(make_job(
                    network, config,
                    use_mapper=use_mapper, include_dram=include_dram,
                    label=(f"{variant_name} OR={output_reuse} "
                           f"IR={input_reuse}"),
                    tags={
                        "variant": variant_name,
                        "output_reuse": output_reuse,
                        "input_reuse": input_reuse,
                        "weight_lanes": weight_lanes,
                    },
                ))
    return jobs


def memory_sweep_jobs(
    network: Network,
    base_config: Any,
    scenarios: Sequence[Any],
    batch_sizes: Sequence[int] = (1, 8),
    fusion_options: Sequence[bool] = (False, True),
    fused_buffer_kib: Optional[int] = None,
    use_mapper: bool = False,
) -> List[EvaluationJob]:
    """Jobs for the Fig. 4 memory-system grid.

    Fused configurations auto-size the global buffer to the largest
    resident activation footprint (power-of-two KiB, with weight-tile
    headroom) unless ``fused_buffer_kib`` overrides it; bank size is held
    constant so larger buffers pay the SRAM model's H-tree growth term,
    not quadratically longer bitlines.
    """
    jobs = []
    for scenario in scenarios:
        for fused in fusion_options:
            for batch in batch_sizes:
                batched_network = (network.with_batch(batch)
                                   if batch > 1 else network)
                config = base_config.with_scenario(scenario)
                if fused:
                    required_kib = fused_buffer_kib
                    if required_kib is None:
                        required_bits = batched_network.max_activation_bits \
                            * 1.25  # weight-tile headroom
                        required_kib = next_power_of_two_kib(required_bits)
                    buffer_kib = max(config.global_buffer_kib, required_kib)
                    bank_kib = (config.global_buffer_kib
                                // config.global_buffer_banks)
                    config = replace(
                        config,
                        global_buffer_kib=buffer_kib,
                        global_buffer_banks=max(config.global_buffer_banks,
                                                buffer_kib // bank_kib),
                    )
                jobs.append(make_job(
                    batched_network, config,
                    fused=fused, include_dram=True, use_mapper=use_mapper,
                    label=(f"{scenario.name}/"
                           f"{'fused' if fused else 'not-fused'}/N={batch}"),
                    tags={"scenario": scenario.name, "batch": batch,
                          "fused": fused},
                ))
    return jobs


def config_sweep_jobs(
    network: Network,
    configs: Sequence[Any],
    use_mapper: bool = False,
) -> List[EvaluationJob]:
    """One job per configuration (generic DSE driver)."""
    return [
        make_job(network, config, use_mapper=use_mapper,
                 label=config.describe()
                 if hasattr(config, "describe") else "",
                 tags={"index": index})
        for index, config in enumerate(configs)
    ]


def default_grid_jobs(
    network: Network,
    systems: Optional[Sequence[str]] = None,
    use_mapper: bool = False,
) -> List[EvaluationJob]:
    """One job per default-sweep grid point of each requested system.

    ``systems=None`` takes every registered system that declares a
    default sweep (the `repro sweep --system <name>` grids), producing
    the multi-system batch the scheduler benchmark and cross-system
    explorations evaluate in one :func:`~repro.engine.executor.run_jobs`
    call.  Each job is tagged with its system name and grid index.
    """
    from repro.engine.jobs import system_registry

    registry = system_registry()
    names = list(systems) if systems is not None else list(registry)
    jobs: List[EvaluationJob] = []
    for name in names:
        entry = registry[name]
        if entry.default_sweep is None:
            continue
        for index, config in enumerate(entry.default_sweep()):
            jobs.append(make_job(
                network, config, system=name, use_mapper=use_mapper,
                label=f"{name}[{index}]",
                tags={"system": name, "index": index},
            ))
    return jobs


def next_power_of_two_kib(bits: float) -> int:
    """Smallest power-of-two KiB capacity holding ``bits``.

    Uses ceiling division: a footprint just above a KiB boundary rounds
    *up*, so an auto-sized fused buffer is never smaller than the
    resident tensors it must hold.

    >>> next_power_of_two_kib(8192)
    1
    >>> next_power_of_two_kib(8193)
    2
    >>> next_power_of_two_kib(3 * 8192)
    4
    """
    kib = max(1, math.ceil(bits / 8192))
    power = 1
    while power < kib:
        power *= 2
    return power


# ---------------------------------------------------------------------------
# Pareto frontier
# ---------------------------------------------------------------------------


def pareto_frontier(points: Iterable[Any],
                    objectives: Callable[[Any], Sequence[float]]) -> List[Any]:
    """Return the Pareto-optimal subset of ``points``, in input order.

    ``objectives`` maps each point to a tuple of costs (all minimized).
    A point survives if no other point is at least as good on every
    objective and strictly better on one; duplicate cost tuples on the
    frontier all survive (neither dominates the other).

    Two objectives run in O(n log n) via a sort-and-sweep; more
    objectives fall back to a lexicographically pruned pairwise check.

    >>> pareto_frontier([(1, 5), (2, 2), (3, 3)], lambda p: p)
    [(1, 5), (2, 2)]
    """
    points = list(points)
    costs = [tuple(objectives(point)) for point in points]
    if not points:
        return []
    width = len(costs[0])
    if any(len(cost) != width for cost in costs):
        raise ValueError("objectives must return a fixed-length tuple")
    if width == 2:
        keep = _pareto_indices_2d(costs)
    else:
        keep = _pareto_indices_general(costs)
    return [points[index] for index in sorted(keep)]


def _pareto_indices_2d(costs: List[Tuple[float, ...]]) -> List[int]:
    """Sort by (x, y), sweep keeping strictly improving y.

    Within an x-group only the minimal-y points can survive (a same-x,
    smaller-y point dominates); across groups a point survives iff its y
    strictly beats every smaller-x point's best y.  Equal (x, y)
    duplicates of a surviving point all survive.
    """
    order = sorted(range(len(costs)), key=lambda index: costs[index])
    keep: List[int] = []
    best_y = math.inf
    group_start = 0
    while group_start < len(order):
        group_end = group_start
        x = costs[order[group_start]][0]
        while group_end < len(order) and costs[order[group_end]][0] == x:
            group_end += 1
        group = order[group_start:group_end]
        min_y = costs[group[0]][1]  # y-sorted within the group
        if min_y < best_y:
            keep.extend(index for index in group
                        if costs[index][1] == min_y)
            best_y = min_y
        group_start = group_end
    return keep


def _pareto_indices_general(costs: List[Tuple[float, ...]]) -> List[int]:
    """Pairwise check, pruned: a dominator always sorts lexicographically
    no later than its victim, so each point only scans its lex-prefix."""
    order = sorted(range(len(costs)), key=lambda index: costs[index])
    keep: List[int] = []
    frontier_costs: List[Tuple[float, ...]] = []
    for index in order:
        cost = costs[index]
        dominated = False
        for other in frontier_costs:
            if other == cost:
                continue  # equal tuples never dominate
            if all(o <= c for o, c in zip(other, cost)):
                dominated = True
                break
        if not dominated:
            keep.append(index)
            frontier_costs.append(cost)
    return keep
