"""Batch job execution: serial or multiprocessing, cache-aware, ordered.

:func:`run_jobs` is the engine's front door.  It takes a job list (from
the sweep builders or hand-assembled), consults the cache for finished
results, computes the misses — serially or across a process pool — and
returns evaluations in input order.  Parallel execution is verified (see
``tests/test_engine.py``) to produce bit-identical results to serial
execution: sub-results ship as JSON dicts whose floats round-trip
exactly, and ordering is restored by index.

Parallel batches run in two phases by default.  A planner
(:mod:`repro.engine.planner`) expands the miss jobs into their unique
mapper-search and layer-evaluation sub-tasks — deduplicated across the
whole batch and against the cache — and phase 1 executes those over the
pool in configuration-affine chunks (one system build per chunk, one
result message per chunk).  Phase 2 then assembles every
:class:`~repro.model.results.NetworkEvaluation` in the parent from the
now-warm cache, which is pure lookups.  ``plan=False`` forces the
pre-planner behavior: each miss job evaluated whole by one worker.

Worker processes are seeded with a snapshot of the parent's cache, so
mapper results already on disk are reused everywhere; entries a worker
computes are shipped back and merged into the parent's cache (and saved,
when the cache has a directory).  Workers do not see entries produced by
*other* workers within the same run — the parent is the only writer,
which keeps the on-disk image race-free; the planner's cross-batch dedup
is what removes the duplicate work whole-job workers used to repeat.

When a tracer is active (:mod:`repro.obs`), every phase of this module
records spans — lookup, planning, snapshot, pool spawn, dispatch, merge,
assembly — and workers record their own lanes against the parent's clock
epoch, shipping events back piggybacked on the existing result messages.
With tracing disabled (the default) the span calls hit the shared no-op
tracer and the worker messages carry no extra payload.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.engine.cache import EvaluationCache, SystemStore, store_entry_key
from repro.engine.codec import (
    network_evaluation_from_dict,
    network_evaluation_to_dict,
)
from repro.engine.jobs import EvaluationJob, job_system_key, system_registry
from repro.engine.planner import SweepPlan, build_plan
from repro.engine.pool import WorkerPool
from repro.model.results import (
    EnergyBreakdown,
    NetworkEvaluation,
)

#: Progress callback: (jobs finished, total jobs, job just worked on).
#: Under planned parallel execution, phase-1 batch completions also tick
#: the callback — with the finished count unchanged and a job of the
#: batch's configuration — so long sweeps show liveness before any
#: whole job is assembled.
ProgressFn = Callable[[int, int, EvaluationJob], None]

CacheLike = Union[None, str, EvaluationCache]


def _as_cache(cache: CacheLike) -> Optional[EvaluationCache]:
    if cache is None or isinstance(cache, EvaluationCache):
        return cache
    return EvaluationCache(str(cache))


def strip_dram(evaluation: NetworkEvaluation) -> NetworkEvaluation:
    """Drop DRAM entries (the accelerator-only view of Figs. 2 and 5).

    Only the ``energy`` field is rewritten — ``dataclasses.replace``
    carries every other field through unchanged, so a field added to
    :class:`~repro.model.results.LayerEvaluation` later cannot be
    silently dropped here (regression-tested in ``tests/test_engine.py``).
    """
    stripped = []
    for layer_eval, count in evaluation.layers:
        entries = {
            key: value
            for key, value in layer_eval.energy.entries().items()
            if key[0] != "DRAM"
        }
        stripped.append((
            dataclasses.replace(layer_eval, energy=EnergyBreakdown(entries)),
            count,
        ))
    return dataclasses.replace(evaluation, layers=tuple(stripped))


# ---------------------------------------------------------------------------
# Single-job execution
# ---------------------------------------------------------------------------


def _compute_job(job: EvaluationJob,
                 cache: Optional[EvaluationCache]) -> NetworkEvaluation:
    """Evaluate ``job`` (no whole-result cache lookup; sub-results cached).

    The identity dict (an architecture build + full serialization) is only
    computed when a cache needs keys — and is memoized on the job itself —
    so uncached runs skip it entirely and cached runs pay for it once.
    """
    entry = system_registry()[job.system]
    with obs.span("job.compute", job=job.describe(), system=job.system):
        with obs.span("system.build", system=job.system):
            if cache is not None and entry.supports_store:
                store = SystemStore(cache, job_system_key(job))
                system = entry.system_type(job.config, store=store)
            else:
                system = entry.system_type(job.config)
        evaluation = system.evaluate_network(
            job.network, fused=job.fused, use_mapper=job.use_mapper)
        if not job.include_dram:
            evaluation = strip_dram(evaluation)
        if cache is not None:
            cache.put_result(job.key, network_evaluation_to_dict(evaluation))
    return evaluation


def run_job(job: EvaluationJob,
            cache: CacheLike = None) -> NetworkEvaluation:
    """Evaluate one job, going through the cache when one is given."""
    cache = _as_cache(cache)
    if cache is None:
        return _compute_job(job, None)
    cached = cache.get_result(job.key)
    if cached is not None:
        return network_evaluation_from_dict(cached)
    return _compute_job(job, cache)


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

_WORKER_CACHE: Optional[EvaluationCache] = None


def _init_worker(snapshot: Optional[Dict[str, Dict[str, Any]]],
                 obs_config=None) -> None:
    """Pool initializer: seed the worker cache and (when the parent is
    tracing) open a trace lane on the parent's timeline.

    With the fork start method the worker inherits the parent's active
    tracer object — including already-recorded events — so tracing is
    always re-initialized here: a fresh worker-lane tracer when the
    parent shipped its clock config, the null tracer otherwise (never
    the inherited copy, which would double-report the parent's events).
    """
    global _WORKER_CACHE
    _WORKER_CACHE = (EvaluationCache.from_snapshot(snapshot)
                     if snapshot is not None else None)
    if obs_config is not None:
        obs.activate(obs.Tracer.for_worker(obs_config))
    else:
        obs.deactivate()


def _drain_worker_trace() -> Optional[Dict[str, Any]]:
    """The worker's trace events since the last message (None when
    tracing is off, so untraced messages stay exactly as lean)."""
    tracer = obs.current_tracer()
    return tracer.drain() if tracer.enabled else None


def _run_job_in_worker(payload):
    """Execute one (index, job) pair; ship result + new cache entries back."""
    index, job = payload
    cache = _WORKER_CACHE
    evaluation = _compute_job(job, cache)
    if cache is not None:
        added = cache.pop_added()
        stats = cache.stats_snapshot()
        # Reset so the next job on this worker reports deltas only.
        cache.reset_stats()
    else:
        added, stats = {}, {}
    return (index, network_evaluation_to_dict(evaluation), added, stats,
            _drain_worker_trace())


def _pool_context():
    """Fork where available (cheap, inherits sys.path); spawn elsewhere."""
    if sys.platform != "win32":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            pass
    return multiprocessing.get_context()  # pragma: no cover


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


def run_jobs(
    jobs: Sequence[EvaluationJob],
    workers: int = 1,
    cache: CacheLike = None,
    progress: Optional[ProgressFn] = None,
    plan: Optional[bool] = None,
    pool: Optional[WorkerPool] = None,
) -> List[NetworkEvaluation]:
    """Evaluate ``jobs``; results come back in input order.

    ``workers=1`` runs in-process.  ``workers>1`` evaluates cache misses
    over a ``multiprocessing`` pool; results are bit-identical to the
    serial path.  ``cache`` may be an :class:`EvaluationCache`, a
    directory path (opened as a sharded store inside it — see
    :mod:`repro.engine.store` — safe to share between concurrent
    processes), or ``None``.

    ``plan`` controls the parallel strategy: the default (``None`` or
    ``True``) schedules the batch through the two-phase planner whenever
    every miss job's system supports it (see module docstring), falling
    back to whole-job dispatch otherwise; ``plan=False`` forces whole-job
    dispatch.  Serial execution ignores ``plan`` — the in-process cache
    already shares sub-results as it goes.

    ``pool`` (a :class:`~repro.engine.pool.WorkerPool`) keeps the worker
    processes — and their warm architecture builds and cache copies —
    alive across calls; it implies the planner path at the pool's worker
    count.  Without it each parallel call spins up an ephemeral pool.
    """
    cache = _as_cache(cache)
    if pool is not None:
        workers = max(workers, pool.workers)
    jobs = list(jobs)
    total = len(jobs)
    results: List[Optional[NetworkEvaluation]] = [None] * total
    done = 0

    with obs.span("run_jobs", jobs=total, workers=workers) as run_span:
        # Resolve whole-job cache hits up front (counts the hits/misses).
        # Job identity dicts/keys are memoized on the jobs themselves, so
        # the serial path below never rebuilds the architecture
        # serialization.
        misses: List[int] = []
        with obs.span("run_jobs.lookup", jobs=total):
            for index, job in enumerate(jobs):
                if cache is None:
                    misses.append(index)
                    continue
                cached = cache.get_result(job.key)
                if cached is None:
                    misses.append(index)
                else:
                    results[index] = network_evaluation_from_dict(cached)
                    done += 1
                    if progress is not None:
                        progress(done, total, job)
        run_span.set("misses", len(misses))

        if misses and workers > 1 and len(misses) > 1:
            sweep_plan = None
            work_cache = cache
            if plan is not False:
                # The planner needs a cache to dedup against and assemble
                # from; a cache-less parallel run plans through a
                # run-local one (discarded afterwards — results are what
                # matters).
                work_cache = (cache if cache is not None
                              else EvaluationCache())
                sweep_plan = build_plan([jobs[index] for index in misses],
                                        work_cache, workers)
            if sweep_plan is not None:
                on_batch = None
                if progress is not None:
                    representatives: Dict[str, EvaluationJob] = {}
                    for index in misses:
                        representatives.setdefault(
                            job_system_key(jobs[index]), jobs[index])
                    hits_done = done

                    def on_batch(batch):
                        job = representatives.get(batch[0].system_key,
                                                  jobs[misses[0]])
                        progress(hits_done, total, job)

                _execute_phase1(sweep_plan, work_cache, workers,
                                on_batch=on_batch, pool=pool)
                # Phase 2: every sub-result is now warm — assembling the
                # network evaluations is pure cache lookups, done in the
                # parent so nothing is shipped twice.
                with obs.span("run_jobs.assemble", jobs=len(misses)):
                    recipes: Dict[Tuple, List[Tuple]] = {}
                    for index in misses:
                        job = jobs[index]
                        result_dict = _assemble_job(job, work_cache,
                                                    recipes)
                        if result_dict is not None:
                            work_cache.put_result(job.key, result_dict)
                            results[index] = \
                                network_evaluation_from_dict(result_dict)
                        else:  # an entry is missing: evaluate normally
                            results[index] = _compute_job(job, work_cache)
                        done += 1
                        if progress is not None:
                            progress(done, total, job)
            else:
                done = _run_whole_jobs(jobs, misses, results, cache,
                                       workers, progress, done, total)
        elif misses:
            with obs.span("run_jobs.serial", jobs=len(misses)):
                for index in misses:
                    results[index] = _compute_job(jobs[index], cache)
                    done += 1
                    if progress is not None:
                        progress(done, total, jobs[index])

        if cache is not None and cache.directory is not None \
                and cache.needs_flush:
            cache.save()
    return results  # type: ignore[return-value]


def _assembly_recipe(system: Any, job: EvaluationJob) -> List[Tuple]:
    """The (store key, count) sequence assembling ``job`` looks up —
    the same fusion-block walk :meth:`evaluate_network` performs."""
    from repro.model.accelerator import fusion_blocks

    network_entries = job.network.entries
    recipe = []
    for index, network_entry in enumerate(network_entries):
        is_last = index == len(network_entries) - 1
        for input_dram, output_dram, count in fusion_blocks(
                network_entry, is_last, job.fused):
            recipe.append((system._layer_store_key(
                network_entry.layer, job.use_mapper,
                input_dram, output_dram), count))
    return recipe


def _assemble_job(
    job: EvaluationJob,
    cache: EvaluationCache,
    recipes: Optional[Dict[Tuple, List[Tuple]]] = None,
) -> Optional[Dict[str, Any]]:
    """Build a job's result dict straight from warm layer entries.

    The dict form of what :meth:`~repro.systems.base.PhotonicSystem.
    evaluate_network` would return: the cached per-layer dicts are the
    exact serializations the object path would decode and re-encode, so
    embedding them verbatim is bit-identical and skips both conversions.
    Returns ``None`` when any entry is missing — the caller then falls
    back to ordinary evaluation.

    ``recipes`` (optional, per-run) memoizes the store-key walk for
    systems whose task keys are configuration-free, so a sweep of many
    configurations over one network derives the keys once.
    """
    from repro.model.accelerator import NetworkOptions

    entry = system_registry()[job.system]
    if not entry.supports_store \
            or not hasattr(entry.system_type, "_layer_store_key"):
        return None
    system = entry.system_type(job.config)
    if job.fused:
        # Same validation (and failure) the evaluation path applies.
        system.model._check_fusion_capacity(job.network,
                                            NetworkOptions(fused=True))
    system_key = job_system_key(job)
    recipe = None
    memo_key = None
    if recipes is not None \
            and getattr(system, "subtask_keys_config_free", False):
        memo_key = (type(system), id(job.network), job.fused,
                    job.use_mapper)
        recipe = recipes.get(memo_key)
    if recipe is None:
        recipe = _assembly_recipe(system, job)
        if memo_key is not None:
            recipes[memo_key] = recipe
    layers = []
    for store_key, count in recipe:
        key = store_entry_key(system_key, store_key)
        layer_dict = cache.peek("layers", key)
        if layer_dict is None:
            return None
        if not job.include_dram:
            layer_dict = dict(layer_dict)
            layer_dict["energy"] = [
                row for row in layer_dict["energy"] if row[0] != "DRAM"
            ]
        layers.append([layer_dict, count])
    return {
        "name": job.network.name,
        "layers": layers,
        "clock_ghz": system.architecture.clock_ghz,
        "peak_parallelism": system.architecture.peak_parallelism,
    }


def _execute_phase1(
    sweep_plan: SweepPlan,
    cache: EvaluationCache,
    workers: int,
    on_batch: Optional[Callable[[Any], None]] = None,
    pool: Optional[WorkerPool] = None,
) -> None:
    """Run the plan's unique sub-tasks over a pool; merge results.

    ``on_batch`` (if given) is invoked with each batch as its results
    are merged — the liveness hook behind the progress callback.  With a
    caller-supplied :class:`WorkerPool` the workers (and their warm
    state) survive this call; otherwise an ephemeral pool is spun up
    and torn down here.
    """
    tracer = obs.current_tracer()
    if sweep_plan.batches:
        with obs.span("executor.phase1", batches=len(sweep_plan.batches),
                      tasks=sweep_plan.phase1_tasks):
            obs_config = (tracer.worker_config() if tracer.enabled
                          else None)
            owned = pool is None
            if owned:
                pool = WorkerPool(workers)
            try:
                # The dispatch span's *self* time is the parent-side
                # pickle/submit/decode overhead; the blocking receive is
                # carved out into ``executor.wait`` child spans (that
                # wall-clock is worker compute — it shows up on the
                # worker lanes — not parent overhead).
                with obs.span("executor.dispatch",
                              batches=len(sweep_plan.batches)) as dispatch:
                    stream = pool.run_batches(sweep_plan.batches, cache,
                                              obs_config)
                    while True:
                        with obs.span("executor.wait"):
                            item = next(stream, None)
                        if item is None:
                            break
                        index, added, stats, events = item
                        with obs.span("executor.merge"):
                            cache.merge(added)
                            cache.absorb_stats(stats)
                            if events:
                                tracer.absorb(events)
                        dispatch.add("messages")
                        if on_batch is not None:
                            on_batch(sweep_plan.batches[index])
            finally:
                if owned:
                    pool.close()
    # Entries the planner collapsed across layer names: copy the
    # representative and rename.  A representative that is somehow
    # missing (its chunk raised before computing it) is simply skipped —
    # phase 2 computes the alias the ordinary way.
    with obs.span("executor.aliases", count=len(sweep_plan.aliases)):
        for alias in sweep_plan.aliases:
            entry = cache.peek("layers", alias.representative_key)
            if entry is None:
                continue
            derived = dict(entry)
            derived["layer"] = dict(entry["layer"])
            derived["layer"]["name"] = alias.layer_name
            cache.put("layers", alias.alias_key, derived)


def _run_whole_jobs(
    jobs: List[EvaluationJob],
    misses: List[int],
    results: List[Optional[NetworkEvaluation]],
    cache: Optional[EvaluationCache],
    workers: int,
    progress: Optional[ProgressFn],
    done: int,
    total: int,
) -> int:
    """The pre-planner parallel path: one whole job per worker message."""
    tracer = obs.current_tracer()
    with obs.span("executor.wholejob", jobs=len(misses), workers=workers):
        context = _pool_context()
        # Workers only read the mapper/layer namespaces (the parent
        # already resolved whole-job hits), so don't ship them the
        # possibly large results namespace.
        snapshot = None
        if cache is not None:
            with obs.span("executor.snapshot"):
                snapshot = cache.snapshot()
                snapshot["results"] = {}
        pool_size = min(workers, len(misses))
        obs_config = tracer.worker_config() if tracer.enabled else None
        with obs.span("executor.pool_spawn", workers=pool_size):
            pool = context.Pool(pool_size, initializer=_init_worker,
                                initargs=(snapshot, obs_config))
        try:
            payloads = [(index, jobs[index]) for index in misses]
            with obs.span("executor.dispatch", jobs=len(payloads)):
                for index, result_dict, added, stats, events in \
                        pool.imap_unordered(_run_job_in_worker, payloads,
                                            chunksize=1):
                    with obs.span("executor.merge"):
                        results[index] = \
                            network_evaluation_from_dict(result_dict)
                        if cache is not None:
                            # ``added`` already contains the job's result
                            # entry (workers put it before shipping),
                            # plus any new mapper/layer entries.
                            cache.merge(added)
                            cache.absorb_stats(stats)
                        if events:
                            tracer.absorb(events)
                    done += 1
                    if progress is not None:
                        progress(done, total, jobs[index])
        finally:
            pool.terminate()
            pool.join()
    return done
