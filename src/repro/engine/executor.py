"""Batch job execution: serial or multiprocessing, cache-aware, ordered.

:func:`run_jobs` is the engine's front door.  It takes a job list (from
the sweep builders or hand-assembled), consults the cache for finished
results, computes the misses — serially or across a process pool — and
returns evaluations in input order.  Parallel execution is verified (see
``tests/test_engine.py``) to produce bit-identical results to serial
execution: jobs are independent, workers ship results back as JSON dicts
whose floats round-trip exactly, and ordering is restored by index.

Worker processes are seeded with a snapshot of the parent's cache, so
mapper results already on disk are reused everywhere; entries a worker
computes are shipped back and merged into the parent's cache (and saved,
when the cache has a directory).  Workers do not see entries produced by
*other* workers within the same run — the parent is the only writer,
which keeps the on-disk image race-free.
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.engine.cache import EvaluationCache, SystemStore
from repro.engine.codec import (
    content_hash,
    network_evaluation_from_dict,
    network_evaluation_to_dict,
)
from repro.engine.jobs import EvaluationJob, system_registry
from repro.model.results import (
    EnergyBreakdown,
    LayerEvaluation,
    NetworkEvaluation,
)

#: Progress callback: (jobs finished, total jobs, job just finished).
ProgressFn = Callable[[int, int, EvaluationJob], None]

CacheLike = Union[None, str, EvaluationCache]


def _as_cache(cache: CacheLike) -> Optional[EvaluationCache]:
    if cache is None or isinstance(cache, EvaluationCache):
        return cache
    return EvaluationCache(str(cache))


def strip_dram(evaluation: NetworkEvaluation) -> NetworkEvaluation:
    """Drop DRAM entries (the accelerator-only view of Figs. 2 and 5)."""
    stripped = []
    for layer_eval, count in evaluation.layers:
        entries = {
            key: value
            for key, value in layer_eval.energy.entries().items()
            if key[0] != "DRAM"
        }
        stripped.append((
            LayerEvaluation(
                layer=layer_eval.layer,
                energy=EnergyBreakdown(entries),
                cycles=layer_eval.cycles,
                real_macs=layer_eval.real_macs,
                padded_macs=layer_eval.padded_macs,
                peak_parallelism=layer_eval.peak_parallelism,
                clock_ghz=layer_eval.clock_ghz,
                occupancy_bits=layer_eval.occupancy_bits,
                compute_cycles=layer_eval.compute_cycles,
                bandwidth_bound_level=layer_eval.bandwidth_bound_level,
            ),
            count,
        ))
    return NetworkEvaluation(
        name=evaluation.name,
        layers=tuple(stripped),
        clock_ghz=evaluation.clock_ghz,
        peak_parallelism=evaluation.peak_parallelism,
    )


# ---------------------------------------------------------------------------
# Single-job execution
# ---------------------------------------------------------------------------


def _system_key(job_dict: Dict[str, Any]) -> str:
    """Configuration-scoped hash for mapper/layer cache entries."""
    return content_hash({key: job_dict[key]
                         for key in ("system", "config", "architecture")})


def _compute_job(job: EvaluationJob,
                 cache: Optional[EvaluationCache]) -> NetworkEvaluation:
    """Evaluate ``job`` (no whole-result cache lookup; sub-results cached).

    The identity dict (an architecture build + full serialization) is only
    computed when a cache needs keys — and is memoized on the job itself —
    so uncached runs skip it entirely and cached runs pay for it once.
    """
    entry = system_registry()[job.system]
    if cache is not None and entry.supports_store:
        store = SystemStore(cache, _system_key(job.to_dict()))
        system = entry.system_type(job.config, store=store)
    else:
        system = entry.system_type(job.config)
    evaluation = system.evaluate_network(
        job.network, fused=job.fused, use_mapper=job.use_mapper)
    if not job.include_dram:
        evaluation = strip_dram(evaluation)
    if cache is not None:
        cache.put_result(job.key, network_evaluation_to_dict(evaluation))
    return evaluation


def run_job(job: EvaluationJob,
            cache: CacheLike = None) -> NetworkEvaluation:
    """Evaluate one job, going through the cache when one is given."""
    cache = _as_cache(cache)
    if cache is None:
        return _compute_job(job, None)
    cached = cache.get_result(job.key)
    if cached is not None:
        return network_evaluation_from_dict(cached)
    return _compute_job(job, cache)


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

_WORKER_CACHE: Optional[EvaluationCache] = None


def _init_worker(snapshot: Optional[Dict[str, Dict[str, Any]]]) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = (EvaluationCache.from_snapshot(snapshot)
                     if snapshot is not None else None)


def _run_job_in_worker(payload):
    """Execute one (index, job) pair; ship result + new cache entries back."""
    index, job = payload
    cache = _WORKER_CACHE
    evaluation = _compute_job(job, cache)
    if cache is not None:
        added = cache.pop_added()
        stats = cache.stats_snapshot()
        # Reset so the next job on this worker reports deltas only.
        for namespace_stats in cache.stats.values():
            namespace_stats.hits = 0
            namespace_stats.misses = 0
    else:
        added, stats = {}, {}
    return index, network_evaluation_to_dict(evaluation), added, stats


def _pool_context():
    """Fork where available (cheap, inherits sys.path); spawn elsewhere."""
    if sys.platform != "win32":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            pass
    return multiprocessing.get_context()  # pragma: no cover


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


def run_jobs(
    jobs: Sequence[EvaluationJob],
    workers: int = 1,
    cache: CacheLike = None,
    progress: Optional[ProgressFn] = None,
) -> List[NetworkEvaluation]:
    """Evaluate ``jobs``; results come back in input order.

    ``workers=1`` runs in-process.  ``workers>1`` evaluates cache misses
    over a ``multiprocessing`` pool; results are bit-identical to the
    serial path.  ``cache`` may be an :class:`EvaluationCache`, a
    directory path (the cache loads from and saves to ``cache.json``
    inside it), or ``None``.
    """
    cache = _as_cache(cache)
    jobs = list(jobs)
    total = len(jobs)
    results: List[Optional[NetworkEvaluation]] = [None] * total
    done = 0

    # Resolve whole-job cache hits up front (counts the hits/misses).
    # Job identity dicts/keys are memoized on the jobs themselves, so the
    # serial path below never rebuilds the architecture serialization.
    misses: List[int] = []
    for index, job in enumerate(jobs):
        if cache is None:
            misses.append(index)
            continue
        cached = cache.get_result(job.key)
        if cached is None:
            misses.append(index)
        else:
            results[index] = network_evaluation_from_dict(cached)
            done += 1
            if progress is not None:
                progress(done, total, job)

    if misses:
        if workers > 1 and len(misses) > 1:
            context = _pool_context()
            # Workers only read the mapper/layer namespaces (the parent
            # already resolved whole-job hits), so don't ship them the
            # possibly large results namespace.
            snapshot = None
            if cache is not None:
                snapshot = cache.snapshot()
                snapshot["results"] = {}
            pool_size = min(workers, len(misses))
            with context.Pool(pool_size, initializer=_init_worker,
                              initargs=(snapshot,)) as pool:
                payloads = [(index, jobs[index]) for index in misses]
                for index, result_dict, added, stats in pool.imap_unordered(
                        _run_job_in_worker, payloads, chunksize=1):
                    results[index] = network_evaluation_from_dict(result_dict)
                    if cache is not None:
                        # ``added`` already contains the job's result entry
                        # (workers put it before shipping), plus any new
                        # mapper/layer entries.
                        cache.merge(added)
                        cache.absorb_stats(stats)
                    done += 1
                    if progress is not None:
                        progress(done, total, jobs[index])
        else:
            for index in misses:
                results[index] = _compute_job(jobs[index], cache)
                done += 1
                if progress is not None:
                    progress(done, total, jobs[index])

    if cache is not None and cache.directory is not None and cache.dirty:
        cache.save()
    return results  # type: ignore[return-value]
