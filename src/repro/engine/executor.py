"""Batch job execution: serial or multiprocessing, cache-aware, ordered.

:func:`run_jobs` is the engine's front door.  It takes a job list (from
the sweep builders or hand-assembled), consults the cache for finished
results, computes the misses — serially or across a process pool — and
returns evaluations in input order.  Parallel execution is verified (see
``tests/test_engine.py``) to produce bit-identical results to serial
execution: sub-results ship as JSON dicts whose floats round-trip
exactly, and ordering is restored by index.

Parallel batches run in two phases by default.  A planner
(:mod:`repro.engine.planner`) expands the miss jobs into their unique
mapper-search and layer-evaluation sub-tasks — deduplicated across the
whole batch and against the cache — and phase 1 executes those over the
pool in configuration-affine chunks (one system build per chunk, one
result message per chunk).  Phase 2 then assembles every
:class:`~repro.model.results.NetworkEvaluation` in the parent from the
now-warm cache, which is pure lookups.  ``plan=False`` forces the
pre-planner behavior: each miss job evaluated whole by one worker.

Worker processes are seeded with a snapshot of the parent's cache, so
mapper results already on disk are reused everywhere; entries a worker
computes are shipped back and merged into the parent's cache (and saved,
when the cache has a directory).  Workers do not see entries produced by
*other* workers within the same run — the parent is the only writer,
which keeps the on-disk image race-free; the planner's cross-batch dedup
is what removes the duplicate work whole-job workers used to repeat.

When a tracer is active (:mod:`repro.obs`), every phase of this module
records spans — lookup, planning, snapshot, pool spawn, dispatch, merge,
assembly — and workers record their own lanes against the parent's clock
epoch, shipping events back piggybacked on the existing result messages.
With tracing disabled (the default) the span calls hit the shared no-op
tracer and the worker messages carry no extra payload.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.engine import faults
from repro.engine.cache import EvaluationCache, SystemStore, store_entry_key
from repro.engine.codec import (
    network_evaluation_from_dict,
    network_evaluation_to_dict,
)
from repro.engine.jobs import EvaluationJob, job_system_key, system_registry
from repro.engine.planner import SweepPlan, build_plan
from repro.engine.pool import WorkerPool
from repro.model.results import (
    EnergyBreakdown,
    NetworkEvaluation,
)

#: Progress callback: (jobs finished, total jobs, job just worked on).
#: Under planned parallel execution, phase-1 batch completions also tick
#: the callback — with the finished count unchanged and a job of the
#: batch's configuration — so long sweeps show liveness before any
#: whole job is assembled.
ProgressFn = Callable[[int, int, EvaluationJob], None]

#: Per-record completion callback: ``(index, job, outcome)`` where
#: ``outcome`` is the job's :class:`~repro.model.results.
#: NetworkEvaluation` (or a :class:`JobFailure` under a capturing
#: failure policy).  Invoked exactly once per job — the moment its
#: result slot is assembled, on every execution path (cache hit, serial,
#: planned parallel, whole-job parallel, quarantine, final failure) —
#: in completion order, which is not necessarily input order.  This is
#: the streaming seam: callers can forward each record while the rest
#: of the batch is still computing.  An exception raised by the
#: callback aborts the run (the cooperative-cancellation lever).
OnRecordFn = Callable[
    [int, EvaluationJob, Union["NetworkEvaluation", "JobFailure"]], None]

CacheLike = Union[None, str, EvaluationCache]


def _as_cache(cache: CacheLike) -> Optional[EvaluationCache]:
    if cache is None or isinstance(cache, EvaluationCache):
        return cache
    return EvaluationCache(str(cache))


# ---------------------------------------------------------------------------
# Failure policy
# ---------------------------------------------------------------------------

_ON_ERROR = ("raise", "skip", "retry")


@dataclasses.dataclass(frozen=True)
class FailurePolicy:
    """How :func:`run_jobs` treats a job that raises (or times out).

    * ``on_error="raise"`` (the default) is fail-stop: the first error
      aborts the run, exactly as before this policy existed.
    * ``"skip"`` converts each failing job into a :class:`JobFailure`
      in the result list and lets the rest of the sweep finish.
    * ``"retry"`` re-attempts failing jobs up to ``max_retries`` times
      with exponential backoff (``backoff * 2**attempt`` seconds
      between rounds); a job that fails every attempt is *quarantined*
      — recorded in the cache's ``failures`` namespace so later runs
      skip it immediately — and surfaced as a :class:`JobFailure`.

    ``task_timeout`` (seconds, any mode) arms a per-task watchdog
    (:func:`repro.engine.faults.task_deadline`) around every job and
    planner sub-task; a task over the deadline raises
    :class:`~repro.exceptions.TaskTimeoutError`, which then follows the
    ``on_error`` route like any other failure.
    """

    on_error: str = "raise"
    max_retries: int = 2
    backoff: float = 0.5
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.on_error not in _ON_ERROR:
            raise ValueError(
                f"unknown on_error {self.on_error!r}; "
                f"options: {', '.join(_ON_ERROR)}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")

    @property
    def captures(self) -> bool:
        """Whether failures become data instead of propagating."""
        return self.on_error != "raise"


@dataclasses.dataclass(frozen=True)
class JobFailure:
    """The per-job outcome slot a failed coordinate gets under a
    non-fail-stop :class:`FailurePolicy` (in place of its
    :class:`~repro.model.results.NetworkEvaluation`)."""

    error: str          # exception type name, e.g. "TaskTimeoutError"
    message: str
    attempts: int       # how many times the job was tried this run
    quarantined: bool = False


class _SubTaskFailed(Exception):
    """Internal: phase-2 assembly hit an entry whose worker-side
    computation failed under the guard (carries the original error)."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error
        self.message = message


def strip_dram(evaluation: NetworkEvaluation) -> NetworkEvaluation:
    """Drop DRAM entries (the accelerator-only view of Figs. 2 and 5).

    Only the ``energy`` field is rewritten — ``dataclasses.replace``
    carries every other field through unchanged, so a field added to
    :class:`~repro.model.results.LayerEvaluation` later cannot be
    silently dropped here (regression-tested in ``tests/test_engine.py``).
    """
    stripped = []
    for layer_eval, count in evaluation.layers:
        entries = {
            key: value
            for key, value in layer_eval.energy.entries().items()
            if key[0] != "DRAM"
        }
        stripped.append((
            dataclasses.replace(layer_eval, energy=EnergyBreakdown(entries)),
            count,
        ))
    return dataclasses.replace(evaluation, layers=tuple(stripped))


# ---------------------------------------------------------------------------
# Single-job execution
# ---------------------------------------------------------------------------


def _compute_job(job: EvaluationJob,
                 cache: Optional[EvaluationCache]) -> NetworkEvaluation:
    """Evaluate ``job`` (no whole-result cache lookup; sub-results cached).

    The identity dict (an architecture build + full serialization) is only
    computed when a cache needs keys — and is memoized on the job itself —
    so uncached runs skip it entirely and cached runs pay for it once.
    """
    entry = system_registry()[job.system]
    with obs.span("job.compute", job=job.describe(), system=job.system):
        with obs.span("system.build", system=job.system):
            if cache is not None and entry.supports_store:
                store = SystemStore(cache, job_system_key(job))
                system = entry.system_type(job.config, store=store)
            else:
                system = entry.system_type(job.config)
        evaluation = system.evaluate_network(
            job.network, fused=job.fused, use_mapper=job.use_mapper)
        if not job.include_dram:
            evaluation = strip_dram(evaluation)
        if cache is not None:
            cache.put_result(job.key, network_evaluation_to_dict(evaluation))
    return evaluation


def run_job(job: EvaluationJob,
            cache: CacheLike = None) -> NetworkEvaluation:
    """Evaluate one job, going through the cache when one is given."""
    cache = _as_cache(cache)
    if cache is None:
        return _compute_job(job, None)
    cached = cache.get_result(job.key)
    if cached is not None:
        return network_evaluation_from_dict(cached)
    return _compute_job(job, cache)


# ---------------------------------------------------------------------------
# Worker-process plumbing
# ---------------------------------------------------------------------------

_WORKER_CACHE: Optional[EvaluationCache] = None


def _init_worker(snapshot: Optional[Dict[str, Dict[str, Any]]],
                 obs_config=None) -> None:
    """Pool initializer: seed the worker cache and (when the parent is
    tracing) open a trace lane on the parent's timeline.

    With the fork start method the worker inherits the parent's active
    tracer object — including already-recorded events — so tracing is
    always re-initialized here: a fresh worker-lane tracer when the
    parent shipped its clock config, the null tracer otherwise (never
    the inherited copy, which would double-report the parent's events).
    """
    global _WORKER_CACHE
    _WORKER_CACHE = (EvaluationCache.from_snapshot(snapshot)
                     if snapshot is not None else None)
    if obs_config is not None:
        obs.activate(obs.Tracer.for_worker(obs_config))
    else:
        obs.deactivate()


def _drain_worker_trace() -> Optional[Dict[str, Any]]:
    """The worker's trace events since the last message (None when
    tracing is off, so untraced messages stay exactly as lean)."""
    tracer = obs.current_tracer()
    return tracer.drain() if tracer.enabled else None


def _guarded_compute(job: EvaluationJob,
                     cache: Optional[EvaluationCache],
                     guard, attempt: int) -> NetworkEvaluation:
    """:func:`_compute_job` under the failure-policy guard: arm the
    task-deadline watchdog and consult the fault-injection plan.  With
    ``guard=None`` this is exactly ``_compute_job`` (zero overhead)."""
    if guard is None:
        return _compute_job(job, cache)
    timeout, _capture, plan_wire = guard
    plan = faults.FaultPlan.from_wire(plan_wire)
    with faults.task_deadline(timeout):
        if plan is not None:
            plan.check(faults.job_task_key(job), attempt)
        return _compute_job(job, cache)


def _run_job_in_worker(payload):
    """Execute one (index, job, guard, attempt) payload; ship the result
    (or, under a capturing guard, the failure) + new cache entries back."""
    index, job, guard, attempt = payload
    cache = _WORKER_CACHE
    failure = None
    result_dict = None
    try:
        result_dict = network_evaluation_to_dict(
            _guarded_compute(job, cache, guard, attempt))
    except Exception as error:
        if guard is None or not guard[1]:  # not capturing: fail-stop
            raise
        failure = (type(error).__name__, str(error))
    if cache is not None:
        added = cache.pop_added()
        stats = cache.stats_snapshot()
        # Reset so the next job on this worker reports deltas only.
        cache.reset_stats()
    else:
        added, stats = {}, {}
    return (index, result_dict, added, stats, _drain_worker_trace(),
            failure)


def _pool_context():
    """Fork where available (cheap, inherits sys.path); spawn elsewhere."""
    if sys.platform != "win32":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            pass
    return multiprocessing.get_context()  # pragma: no cover


# ---------------------------------------------------------------------------
# Batch execution
# ---------------------------------------------------------------------------


def run_jobs(
    jobs: Sequence[EvaluationJob],
    workers: int = 1,
    cache: CacheLike = None,
    progress: Optional[ProgressFn] = None,
    plan: Optional[bool] = None,
    pool: Optional[WorkerPool] = None,
    failure_policy: Optional[FailurePolicy] = None,
    inject: Any = None,
    on_record: Optional[OnRecordFn] = None,
) -> List[Union[NetworkEvaluation, JobFailure]]:
    """Evaluate ``jobs``; results come back in input order.

    ``workers=1`` runs in-process.  ``workers>1`` evaluates cache misses
    over a ``multiprocessing`` pool; results are bit-identical to the
    serial path.  ``cache`` may be an :class:`EvaluationCache`, a
    directory path (opened as a sharded store inside it — see
    :mod:`repro.engine.store` — safe to share between concurrent
    processes), or ``None``.

    ``plan`` controls the parallel strategy: the default (``None`` or
    ``True``) schedules the batch through the two-phase planner whenever
    every miss job's system supports it (see module docstring), falling
    back to whole-job dispatch otherwise; ``plan=False`` forces whole-job
    dispatch.  Serial execution ignores ``plan`` — the in-process cache
    already shares sub-results as it goes.

    ``pool`` (a :class:`~repro.engine.pool.WorkerPool`) keeps the worker
    processes — and their warm architecture builds and cache copies —
    alive across calls; it implies the planner path at the pool's worker
    count.  Without it each parallel call spins up an ephemeral pool.

    ``failure_policy`` (a :class:`FailurePolicy`) decides what happens
    when a job raises or exceeds its deadline; under ``"skip"`` or
    ``"retry"`` the returned list holds a :class:`JobFailure` at each
    failed coordinate instead of an evaluation, and jobs the cache has
    quarantined as poison are skipped up front.  The default (``None``)
    is fail-stop, identical to the pre-policy behavior.  ``inject``
    feeds a deterministic fault plan (:mod:`repro.engine.faults` —
    a :class:`~repro.engine.faults.FaultPlan`, JSON path, or decoded
    data; ``None`` falls back to the ``REPRO_INJECT`` variable) to
    every execution path, for testing the machinery above.

    ``on_record`` (an :data:`OnRecordFn`) is invoked exactly once per
    job as its outcome slot is assembled — cache hits during lookup,
    serial completions, parallel phase-2 assembly, whole-job worker
    returns, quarantine pre-skips, and finalized failures alike — so
    callers can stream results out while later jobs are still running.
    """
    cache = _as_cache(cache)
    if pool is not None:
        workers = max(workers, pool.workers)
    jobs = list(jobs)
    total = len(jobs)
    results: List[Optional[Union[NetworkEvaluation, JobFailure]]] = \
        [None] * total
    done = 0

    policy = failure_policy
    fault_plan = faults.resolve_plan(inject)
    capture = policy is not None and policy.captures
    timeout = policy.task_timeout if policy is not None else None
    guard = None
    if capture or timeout or fault_plan:
        guard = (timeout, capture,
                 fault_plan.to_wire() if fault_plan else None)

    with obs.span("run_jobs", jobs=total, workers=workers) as run_span:
        # Resolve whole-job cache hits up front (counts the hits/misses).
        # Job identity dicts/keys are memoized on the jobs themselves, so
        # the serial path below never rebuilds the architecture
        # serialization.
        misses: List[int] = []
        with obs.span("run_jobs.lookup", jobs=total):
            for index, job in enumerate(jobs):
                if cache is None:
                    misses.append(index)
                    continue
                cached = cache.get_result(job.key)
                if cached is None:
                    misses.append(index)
                else:
                    results[index] = network_evaluation_from_dict(cached)
                    done += 1
                    if on_record is not None:
                        on_record(index, job, results[index])
                    if progress is not None:
                        progress(done, total, job)
        run_span.set("misses", len(misses))

        # Coordinates the cache has quarantined as poison are answered
        # up front (as failures) instead of being re-attempted — a rerun
        # over a half-failed sweep only pays for the undecided jobs.
        if capture and cache is not None and misses:
            screened: List[int] = []
            for index in misses:
                poison = cache.peek("failures", jobs[index].key)
                if poison is None:
                    screened.append(index)
                    continue
                results[index] = JobFailure(
                    error="JobQuarantinedError",
                    message=(f"quarantined after "
                             f"{poison.get('attempts', '?')} failed "
                             f"attempts ({poison.get('error')}: "
                             f"{poison.get('message')})"),
                    attempts=0, quarantined=True)
                done += 1
                if on_record is not None:
                    on_record(index, jobs[index], results[index])
                if progress is not None:
                    progress(done, total, jobs[index])
            misses = screened

        remaining = misses
        attempt = 0
        while remaining:
            round_failures: Dict[int, Tuple[str, str]] = {}
            done = _execute_round(jobs, remaining, results, cache,
                                  workers, progress, plan, pool, done,
                                  total, guard, attempt, round_failures,
                                  on_record)
            if not round_failures:
                break
            if cache is not None:
                for etype, _message in round_failures.values():
                    if etype == "TaskTimeoutError":
                        cache.resilience.timeouts += 1
            retrying = (policy.on_error == "retry"
                        and attempt < policy.max_retries)
            if not retrying:
                # Out of attempts (or skip mode): finalize the failures.
                # Retry-mode exhaustion additionally quarantines — the
                # job failed identically on every attempt, so reruns
                # should not pay for it again.
                for index in sorted(round_failures):
                    etype, message = round_failures[index]
                    quarantined = False
                    if policy.on_error == "retry" and cache is not None:
                        cache.put("failures", jobs[index].key, {
                            "error": etype,
                            "message": message,
                            "attempts": attempt + 1,
                            "label": jobs[index].describe(),
                        })
                        cache.resilience.quarantines += 1
                        quarantined = True
                    results[index] = JobFailure(
                        error=etype, message=message,
                        attempts=attempt + 1, quarantined=quarantined)
                    done += 1
                    if on_record is not None:
                        on_record(index, jobs[index], results[index])
                    if progress is not None:
                        progress(done, total, jobs[index])
                break
            delay = policy.backoff * (2 ** attempt)
            if cache is not None:
                cache.resilience.retries += len(round_failures)
            remaining = sorted(round_failures)
            attempt += 1
            with obs.span("executor.retry", jobs=len(remaining),
                          attempt=attempt, delay=delay):
                if delay > 0:
                    time.sleep(delay)

        if cache is not None and cache.directory is not None \
                and cache.needs_flush:
            cache.save()
    return results  # type: ignore[return-value]


def _execute_round(
    jobs: List[EvaluationJob],
    misses: List[int],
    results: List[Optional[Union[NetworkEvaluation, JobFailure]]],
    cache: Optional[EvaluationCache],
    workers: int,
    progress: Optional[ProgressFn],
    plan: Optional[bool],
    pool: Optional[WorkerPool],
    done: int,
    total: int,
    guard,
    attempt: int,
    round_failures: Dict[int, Tuple[str, str]],
    on_record: Optional[OnRecordFn] = None,
) -> int:
    """One (re)attempt at the given miss indices (see :func:`run_jobs`).

    Picks the same planner / whole-job / serial strategy the pre-policy
    executor did.  Under a capturing guard, a failing job lands in
    ``round_failures`` as ``index -> (error type, message)`` instead of
    raising; successful jobs fill ``results``, tick ``done``, and fire
    ``on_record`` (failures do not — they are not final until the retry
    loop gives up on them).
    """
    capture = guard is not None and guard[1]
    if workers > 1 and len(misses) > 1:
        sweep_plan = None
        work_cache = cache
        if plan is not False:
            # The planner needs a cache to dedup against and assemble
            # from; a cache-less parallel run plans through a
            # run-local one (discarded afterwards — results are what
            # matters).
            work_cache = (cache if cache is not None
                          else EvaluationCache())
            sweep_plan = build_plan([jobs[index] for index in misses],
                                    work_cache, workers)
        if sweep_plan is not None:
            on_batch = None
            if progress is not None:
                representatives: Dict[str, EvaluationJob] = {}
                for index in misses:
                    representatives.setdefault(
                        job_system_key(jobs[index]), jobs[index])
                hits_done = done

                def on_batch(batch):
                    job = representatives.get(batch[0].system_key,
                                              jobs[misses[0]])
                    progress(hits_done, total, job)

            failed_entries = _execute_phase1(
                sweep_plan, work_cache, workers, on_batch=on_batch,
                pool=pool, guard=guard, attempt=attempt)
            # Phase 2: every sub-result is now warm — assembling the
            # network evaluations is pure cache lookups, done in the
            # parent so nothing is shipped twice.
            fault_plan = (faults.FaultPlan.from_wire(guard[2])
                          if guard is not None else None)
            with obs.span("run_jobs.assemble", jobs=len(misses)):
                recipes: Dict[Tuple, List[Tuple]] = {}
                for index in misses:
                    job = jobs[index]
                    try:
                        # Job-level injected faults (``...:job`` keys)
                        # fire on every execution path — here, before
                        # assembly short-circuits the work.
                        if fault_plan is not None:
                            fault_plan.check(faults.job_task_key(job),
                                             attempt)
                        result_dict = _assemble_job(job, work_cache,
                                                    recipes,
                                                    failed_entries)
                        if result_dict is not None:
                            work_cache.put_result(job.key, result_dict)
                            results[index] = \
                                network_evaluation_from_dict(result_dict)
                        else:  # an entry is missing: evaluate normally
                            results[index] = _guarded_compute(
                                job, work_cache, guard, attempt)
                    except _SubTaskFailed as failed:
                        # A sub-task this job needs failed under the
                        # guard.  Do NOT fall back to parent-side
                        # compute — a timed-out task would just be
                        # recomputed without its budget; route it
                        # through the policy instead.
                        round_failures[index] = (failed.error,
                                                 failed.message)
                        continue
                    except Exception as error:
                        if not capture:
                            raise
                        round_failures[index] = \
                            (type(error).__name__, str(error))
                        continue
                    done += 1
                    if on_record is not None:
                        on_record(index, job, results[index])
                    if progress is not None:
                        progress(done, total, job)
        else:
            done = _run_whole_jobs(jobs, misses, results, cache,
                                   workers, progress, done, total,
                                   guard, attempt, round_failures,
                                   on_record)
    else:
        with obs.span("run_jobs.serial", jobs=len(misses)):
            for index in misses:
                try:
                    results[index] = _guarded_compute(
                        jobs[index], cache, guard, attempt)
                except Exception as error:
                    if not capture:
                        raise
                    round_failures[index] = (type(error).__name__,
                                             str(error))
                    continue
                done += 1
                if on_record is not None:
                    on_record(index, jobs[index], results[index])
                if progress is not None:
                    progress(done, total, jobs[index])
    return done


def _assembly_recipe(system: Any, job: EvaluationJob) -> List[Tuple]:
    """The (store key, count) sequence assembling ``job`` looks up —
    the same fusion-block walk :meth:`evaluate_network` performs."""
    from repro.model.accelerator import fusion_blocks

    network_entries = job.network.entries
    recipe = []
    for index, network_entry in enumerate(network_entries):
        is_last = index == len(network_entries) - 1
        for input_dram, output_dram, count in fusion_blocks(
                network_entry, is_last, job.fused):
            recipe.append((system._layer_store_key(
                network_entry.layer, job.use_mapper,
                input_dram, output_dram), count))
    return recipe


def _assemble_job(
    job: EvaluationJob,
    cache: EvaluationCache,
    recipes: Optional[Dict[Tuple, List[Tuple]]] = None,
    failed_entries: Optional[Dict[str, Tuple[str, str]]] = None,
) -> Optional[Dict[str, Any]]:
    """Build a job's result dict straight from warm layer entries.

    The dict form of what :meth:`~repro.systems.base.PhotonicSystem.
    evaluate_network` would return: the cached per-layer dicts are the
    exact serializations the object path would decode and re-encode, so
    embedding them verbatim is bit-identical and skips both conversions.
    Returns ``None`` when any entry is missing — the caller then falls
    back to ordinary evaluation.  When the missing entry is listed in
    ``failed_entries`` (its phase-1 computation failed under the
    failure-policy guard), :class:`_SubTaskFailed` is raised instead so
    the caller routes the job through the policy rather than silently
    recomputing a known-failing task.

    ``recipes`` (optional, per-run) memoizes the store-key walk for
    systems whose task keys are configuration-free, so a sweep of many
    configurations over one network derives the keys once.
    """
    from repro.model.accelerator import NetworkOptions

    entry = system_registry()[job.system]
    if not entry.supports_store \
            or not hasattr(entry.system_type, "_layer_store_key"):
        return None
    system = entry.system_type(job.config)
    if job.fused:
        # Same validation (and failure) the evaluation path applies.
        system.model._check_fusion_capacity(job.network,
                                            NetworkOptions(fused=True))
    system_key = job_system_key(job)
    recipe = None
    memo_key = None
    if recipes is not None \
            and getattr(system, "subtask_keys_config_free", False):
        memo_key = (type(system), id(job.network), job.fused,
                    job.use_mapper)
        recipe = recipes.get(memo_key)
    if recipe is None:
        recipe = _assembly_recipe(system, job)
        if memo_key is not None:
            recipes[memo_key] = recipe
    layers = []
    for store_key, count in recipe:
        key = store_entry_key(system_key, store_key)
        layer_dict = cache.peek("layers", key)
        if layer_dict is None:
            if failed_entries and key in failed_entries:
                raise _SubTaskFailed(*failed_entries[key])
            return None
        if not job.include_dram:
            layer_dict = dict(layer_dict)
            layer_dict["energy"] = [
                row for row in layer_dict["energy"] if row[0] != "DRAM"
            ]
        layers.append([layer_dict, count])
    return {
        "name": job.network.name,
        "layers": layers,
        "clock_ghz": system.architecture.clock_ghz,
        "peak_parallelism": system.architecture.peak_parallelism,
    }


def _execute_phase1(
    sweep_plan: SweepPlan,
    cache: EvaluationCache,
    workers: int,
    on_batch: Optional[Callable[[Any], None]] = None,
    pool: Optional[WorkerPool] = None,
    guard=None,
    attempt: int = 0,
) -> Dict[str, Tuple[str, str]]:
    """Run the plan's unique sub-tasks over a pool; merge results.

    ``on_batch`` (if given) is invoked with each batch as its results
    are merged — the liveness hook behind the progress callback.  With a
    caller-supplied :class:`WorkerPool` the workers (and their warm
    state) survive this call; otherwise an ephemeral pool is spun up
    and torn down here.

    ``guard``/``attempt`` ship the failure-policy/fault-injection
    context to the workers.  Returns the failed-entry map (store entry
    key -> ``(error type, message)``) collected from the workers —
    empty when nothing failed or the guard isn't capturing.  Worker
    respawns the pool performed during this dispatch are folded into
    the cache's resilience counters.
    """
    tracer = obs.current_tracer()
    failed_entries: Dict[str, Tuple[str, str]] = {}
    if sweep_plan.batches:
        with obs.span("executor.phase1", batches=len(sweep_plan.batches),
                      tasks=sweep_plan.phase1_tasks):
            obs_config = (tracer.worker_config() if tracer.enabled
                          else None)
            owned = pool is None
            if owned:
                pool = WorkerPool(workers)
            respawns_before = pool.stats.respawns
            try:
                # The dispatch span's *self* time is the parent-side
                # pickle/submit/decode overhead; the blocking receive is
                # carved out into ``executor.wait`` child spans (that
                # wall-clock is worker compute — it shows up on the
                # worker lanes — not parent overhead).
                with obs.span("executor.dispatch",
                              batches=len(sweep_plan.batches)) as dispatch:
                    stream = pool.run_batches(sweep_plan.batches, cache,
                                              obs_config, guard=guard,
                                              attempt=attempt)
                    while True:
                        with obs.span("executor.wait"):
                            item = next(stream, None)
                        if item is None:
                            break
                        index, added, stats, events, failed = item
                        with obs.span("executor.merge"):
                            cache.merge(added)
                            cache.absorb_stats(stats)
                            if events:
                                tracer.absorb(events)
                            if failed:
                                failed_entries.update(failed)
                        dispatch.add("messages")
                        if on_batch is not None:
                            on_batch(sweep_plan.batches[index])
            finally:
                cache.resilience.respawns += (pool.stats.respawns
                                              - respawns_before)
                if owned:
                    pool.close()
    # Entries the planner collapsed across layer names: copy the
    # representative and rename.  A representative that is somehow
    # missing (its chunk raised before computing it) is simply skipped —
    # phase 2 computes the alias the ordinary way; if the representative
    # outright *failed*, its aliases failed with it.
    with obs.span("executor.aliases", count=len(sweep_plan.aliases)):
        for alias in sweep_plan.aliases:
            if alias.representative_key in failed_entries:
                failed_entries[alias.alias_key] = \
                    failed_entries[alias.representative_key]
                continue
            entry = cache.peek("layers", alias.representative_key)
            if entry is None:
                continue
            derived = dict(entry)
            derived["layer"] = dict(entry["layer"])
            derived["layer"]["name"] = alias.layer_name
            cache.put("layers", alias.alias_key, derived)
    return failed_entries


def _run_whole_jobs(
    jobs: List[EvaluationJob],
    misses: List[int],
    results: List[Optional[Union[NetworkEvaluation, JobFailure]]],
    cache: Optional[EvaluationCache],
    workers: int,
    progress: Optional[ProgressFn],
    done: int,
    total: int,
    guard=None,
    attempt: int = 0,
    round_failures: Optional[Dict[int, Tuple[str, str]]] = None,
    on_record: Optional[OnRecordFn] = None,
) -> int:
    """The pre-planner parallel path: one whole job per worker message."""
    tracer = obs.current_tracer()
    with obs.span("executor.wholejob", jobs=len(misses), workers=workers):
        context = _pool_context()
        # Workers only read the mapper/layer namespaces (the parent
        # already resolved whole-job hits), so don't ship them the
        # possibly large results namespace.
        snapshot = None
        if cache is not None:
            with obs.span("executor.snapshot"):
                snapshot = cache.snapshot()
                snapshot["results"] = {}
        pool_size = min(workers, len(misses))
        obs_config = tracer.worker_config() if tracer.enabled else None
        with obs.span("executor.pool_spawn", workers=pool_size):
            pool = context.Pool(pool_size, initializer=_init_worker,
                                initargs=(snapshot, obs_config))
        try:
            payloads = [(index, jobs[index], guard, attempt)
                        for index in misses]
            with obs.span("executor.dispatch", jobs=len(payloads)):
                for index, result_dict, added, stats, events, failure in \
                        pool.imap_unordered(_run_job_in_worker, payloads,
                                            chunksize=1):
                    with obs.span("executor.merge"):
                        if cache is not None:
                            # ``added`` already contains the job's result
                            # entry (workers put it before shipping),
                            # plus any new mapper/layer entries — or, on
                            # a failure, whatever partial sub-results
                            # the job computed before dying (kept: a
                            # retry resumes from them).
                            cache.merge(added)
                            cache.absorb_stats(stats)
                        if events:
                            tracer.absorb(events)
                        if failure is None:
                            results[index] = \
                                network_evaluation_from_dict(result_dict)
                    if failure is not None:
                        round_failures[index] = failure
                        continue
                    done += 1
                    if on_record is not None:
                        on_record(index, jobs[index], results[index])
                    if progress is not None:
                        progress(done, total, jobs[index])
        except BaseException:
            # A half-finished dispatch leaves workers in an unknown
            # state; kill them rather than let close() wait on them.
            pool.terminate()
            pool.join()
            raise
        else:
            # Clean finish: let the workers exit normally instead of
            # SIGTERMing processes that are quietly idle.
            pool.close()
            pool.join()
    return done
