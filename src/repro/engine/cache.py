"""Persistent evaluation cache: in-memory dicts with an atomic JSON disk
image.

The cache memoizes three namespaces, keyed by content hashes so entries
are valid across processes and sessions:

* ``results``  — whole-job :class:`~repro.model.results.NetworkEvaluation`
  dicts, keyed by :attr:`EvaluationJob.key`;
* ``mappings`` — mapper search results (the expensive part of
  ``use_mapper=True`` runs), keyed by (system, layer shape, search
  budget, seed);
* ``layers``   — individual layer evaluations, shared between jobs that
  evaluate the same layer under the same configuration (e.g. the fused
  and non-fused arms of a memory sweep).

Disk persistence is a single ``cache.json`` written atomically (temp file
+ ``os.replace``), so a crashed or interrupted sweep never leaves a
corrupt cache — at worst it leaves the previous image.  Hit/miss counts
are tracked per namespace and mergeable across worker processes.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro import obs
from repro.engine.codec import (
    canonical_json,
    layer_evaluation_from_dict,
    layer_evaluation_to_dict,
)
from repro.mapping.mapper import MapperResult
from repro.mapping.serialize import mapping_from_dict, mapping_to_dict
from repro.model.results import LayerEvaluation

NAMESPACES: Tuple[str, ...] = ("results", "mappings", "layers")

_CACHE_FORMAT_VERSION = 1


@functools.lru_cache(maxsize=65536)
def _store_key_json(store_key: Tuple) -> str:
    return canonical_json(list(store_key))


def store_entry_key(system_key: str, store_key: Iterable[Any]) -> str:
    """The cache-entry key a :class:`SystemStore` lookup resolves to.

    The single source of truth for the composition — the store uses it
    for every load/save and the sweep planner for dedup and parent-side
    assembly, so the two can never diverge.  The JSON suffix depends
    only on the store-key tuple (not the configuration), so it is
    memoized on its own and the per-call work is a string concat: a
    thousand-config sweep renders each layer's suffix once, not once
    per configuration.
    """
    if type(store_key) is tuple:
        try:
            return system_key + "/" + _store_key_json(store_key)
        except TypeError:  # unhashable member: render directly
            pass
    return system_key + "/" + canonical_json(list(store_key))


@dataclass
class CacheStats:
    """Hit/miss counters for one namespace."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return f"{self.hits}/{self.lookups} hits ({self.hit_rate:.1%})"

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass
class PlannerStats:
    """Counters of the sweep planner's cross-job work elimination.

    Filled by :func:`repro.engine.planner.build_plan` in the parent
    process: of ``planned`` sub-tasks expanded from a job batch,
    ``deduplicated`` were dropped as duplicates of another task in the
    same batch (including same-geometry layers under different names) and
    ``cache_hits`` because the cache already held them; ``phase1_tasks``
    is the unique remainder actually executed, shipped as ``batches``
    pool dispatch payloads.
    """

    planned: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    phase1_tasks: int = 0
    batches: int = 0

    def describe(self) -> str:
        return (f"planner: {self.planned} sub-tasks planned, "
                f"{self.deduplicated} deduplicated, "
                f"{self.cache_hits} already cached, "
                f"{self.phase1_tasks} executed in phase 1 "
                f"({self.batches} batches)")

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready counter dict (the ``--json`` stats record)."""
        return {
            "planned": self.planned,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "phase1_tasks": self.phase1_tasks,
            "batches": self.batches,
        }

    def reset(self) -> None:
        self.planned = 0
        self.deduplicated = 0
        self.cache_hits = 0
        self.phase1_tasks = 0
        self.batches = 0


class EvaluationCache:
    """In-memory + on-disk cache for sweep-engine evaluations.

    ``directory=None`` gives a purely in-memory cache (still useful for
    sharing mapper results across the jobs of one sweep).  With a
    directory, existing entries load eagerly on construction and
    :meth:`save` writes the full image back atomically.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._data: Dict[str, Dict[str, Any]] = {ns: {} for ns in NAMESPACES}
        self._added: Dict[str, Dict[str, Any]] = {ns: {} for ns in NAMESPACES}
        self.stats: Dict[str, CacheStats] = {ns: CacheStats()
                                             for ns in NAMESPACES}
        self.planner = PlannerStats()
        self._epoch = 0
        if directory is not None:
            self._load()

    @property
    def epoch(self) -> int:
        """Generation counter, bumped whenever entries are dropped.

        Entries are only ever *added* within one epoch, and dict
        insertion order is stable, so ``(epoch, per-namespace length)``
        identifies a prefix of the cache's contents exactly — the basis
        of the :class:`~repro.engine.pool.WorkerPool` delta protocol.
        A bump invalidates every marker minted under the old epoch.
        """
        return self._epoch

    def clear(self) -> None:
        """Drop every entry and bump the epoch.

        Persistent-pool workers hold warm copies of this cache; the
        epoch bump is what tells the pool those copies are stale (it
        reseeds workers from scratch on the next dispatch instead of
        shipping an additive delta that couldn't express the removal).
        """
        self._epoch += 1
        self._data = {ns: {} for ns in NAMESPACES}
        self._added = {ns: {} for ns in NAMESPACES}

    # ------------------------------------------------------------------
    # Generic namespace access
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str) -> Optional[Any]:
        """Look up ``key``, counting the hit or miss."""
        entry = self._data[namespace].get(key)
        stats = self.stats[namespace]
        if entry is None:
            stats.misses += 1
        else:
            stats.hits += 1
        return entry

    def put(self, namespace: str, key: str, value: Any) -> None:
        self._data[namespace][key] = value
        self._added[namespace][key] = value

    def contains(self, namespace: str, key: str) -> bool:
        """Membership probe that counts neither a hit nor a miss (the
        planner's dedup-against-the-cache check, which must not distort
        the hit-rate report of the evaluation that follows)."""
        return key in self._data[namespace]

    def peek(self, namespace: str, key: str) -> Optional[Any]:
        """Uncounted lookup (see :meth:`contains`)."""
        return self._data[namespace].get(key)

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._data.values())

    def size(self, namespace: str) -> int:
        return len(self._data[namespace])

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def get_result(self, key: str) -> Optional[Dict[str, Any]]:
        return self.get("results", key)

    def put_result(self, key: str, value: Dict[str, Any]) -> None:
        self.put("results", key, value)

    # ------------------------------------------------------------------
    # Worker-merge protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The full entry image, for seeding worker processes."""
        return {ns: dict(entries) for ns, entries in self._data.items()}

    def sync_marker(self) -> Tuple[int, Tuple[int, ...]]:
        """An epoch-stamped position marker: ``(epoch, lengths)``.

        Within one epoch entries are append-only and dicts preserve
        insertion order, so the marker pins down exactly which entries a
        reader holding it has seen — :meth:`entries_since` replays the
        remainder.  Markers from an older epoch are unusable (the data
        they described was dropped); holders must resync from a full
        snapshot.
        """
        return (self._epoch,
                tuple(len(self._data[ns]) for ns in NAMESPACES))

    def entries_since(
            self, marker: Tuple[int, Tuple[int, ...]],
    ) -> Dict[str, Dict[str, Any]]:
        """Entries added after ``marker`` (same-epoch markers only).

        O(delta) via :func:`itertools.islice` over the insertion-ordered
        dicts — no per-reader bookkeeping is kept on the cache itself.
        """
        epoch, lengths = marker
        if epoch != self._epoch:
            raise ValueError(
                f"stale cache marker: epoch {epoch} != {self._epoch}")
        delta: Dict[str, Dict[str, Any]] = {}
        for namespace, seen in zip(NAMESPACES, lengths):
            entries = self._data[namespace]
            if len(entries) > seen:
                fresh = itertools.islice(entries.items(), seen, None)
                delta[namespace] = dict(fresh)
        return delta

    @classmethod
    def from_snapshot(
            cls, snapshot: Dict[str, Dict[str, Any]]) -> "EvaluationCache":
        cache = cls()
        for namespace in NAMESPACES:
            cache._data[namespace].update(snapshot.get(namespace, {}))
        return cache

    @property
    def dirty(self) -> bool:
        """True when entries were added since the last save/pop_added —
        a clean (100%-hit) run needn't rewrite the disk image."""
        return any(self._added.values())

    def pop_added(self) -> Dict[str, Dict[str, Any]]:
        """Entries added since the last call (worker -> parent shipping)."""
        added = self._added
        self._added = {ns: {} for ns in NAMESPACES}
        return added

    def merge(self, entries: Dict[str, Dict[str, Any]]) -> None:
        """Adopt entries computed elsewhere (also marks them for saving)."""
        for namespace, values in entries.items():
            for key, value in values.items():
                self.put(namespace, key, value)

    def adopt(self, entries: Dict[str, Dict[str, Any]]) -> None:
        """Merge entries *without* marking them added/dirty.

        The worker side of the pool sync protocol: entries arriving from
        the parent are already owned (and persisted) there, so a worker
        adopting them must not re-ship them back with its own results.
        """
        for namespace, values in entries.items():
            self._data[namespace].update(values)

    def stats_snapshot(self) -> Dict[str, Dict[str, int]]:
        return {ns: {"hits": s.hits, "misses": s.misses}
                for ns, s in self.stats.items()}

    def reset_stats(self) -> None:
        """Zero every hit/miss counter and the planner counters.

        Workers call this between payloads so each ships deltas only;
        tests use it to scope assertions to one run.  Entries are
        untouched — only the statistics reset.
        """
        for stats in self.stats.values():
            stats.reset()
        self.planner.reset()

    def absorb_stats(self, snapshot: Dict[str, Dict[str, int]]) -> None:
        """Fold worker-side hit/miss counts into this cache's statistics."""
        for namespace, counts in snapshot.items():
            stats = self.stats[namespace]
            stats.hits += counts.get("hits", 0)
            stats.misses += counts.get("misses", 0)

    def describe_stats(self) -> str:
        parts = [f"{ns} {self.stats[ns].describe()}"
                 for ns in NAMESPACES if self.stats[ns].lookups]
        line = "cache: " + (" | ".join(parts) if parts else "no lookups")
        if self.planner.planned:
            line += "\n" + self.planner.describe()
        return line

    def mapper_search_stats(self) -> Dict[str, int]:
        """Aggregated search-efficiency counters over cached mapper results.

        Sums the ``evaluated`` / ``valid`` / ``deduplicated`` /
        ``pruned_early`` counters of every mapper-search entry currently
        in the cache, so sweep front-ends can surface how much work the
        candidate dedup and early capacity rejection saved.
        """
        totals = {"searches": 0, "evaluated": 0, "valid": 0,
                  "deduplicated": 0, "pruned_early": 0}
        for entry in self._data["mappings"].values():
            totals["searches"] += 1
            for counter in ("evaluated", "valid", "deduplicated",
                            "pruned_early"):
                totals[counter] += int(entry.get(counter, 0))
        return totals

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, "cache.json")

    def _load(self) -> None:
        path = self.path
        if path is None or not os.path.exists(path):
            return
        with obs.span("cache.load", path=path) as load_span:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    image = json.load(handle)
            except (OSError, ValueError):
                return  # unreadable/corrupt image: start fresh, not crash
            if not isinstance(image, dict) \
                    or image.get("version") != _CACHE_FORMAT_VERSION:
                return  # stale format: start fresh, not misread entries
            for namespace in NAMESPACES:
                self._data[namespace].update(image.get("entries", {})
                                             .get(namespace, {}))
            load_span.set("entries", len(self))

    def save(self) -> Optional[str]:
        """Atomically write the cache image; returns the path written."""
        path = self.path
        if path is None:
            return None
        with obs.span("cache.save", path=path, entries=len(self)):
            os.makedirs(self.directory, exist_ok=True)
            image = {
                "version": _CACHE_FORMAT_VERSION,
                "entries": self._data,
            }
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".cache-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(image, handle)
                os.replace(temp_path, path)
            except BaseException:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
                raise
            self._added = {ns: {} for ns in NAMESPACES}
        return path


class SystemStore:
    """Adapter giving a system object cached mapper searches and layer
    evaluations.

    Every :class:`~repro.systems.base.PhotonicSystem` accepts one of these
    as its ``store`` argument and calls the four duck-typed methods below
    with structural keys (tuples of scalars); the store scopes them under
    the system's configuration hash so different configurations never
    collide.
    """

    def __init__(self, cache: EvaluationCache, system_key: str) -> None:
        self.cache = cache
        self.system_key = system_key

    def _key(self, key: Iterable[Any]) -> str:
        return store_entry_key(self.system_key, key)

    # ------------------------------------------------------------------
    # Mapper results
    # ------------------------------------------------------------------
    def load_mapper_result(self, key: Iterable[Any]) -> Optional[MapperResult]:
        entry = self.cache.get("mappings", self._key(key))
        if entry is None:
            return None
        return MapperResult(
            mapping=mapping_from_dict(entry["mapping"]),
            cost=float(entry["cost"]),
            evaluated=int(entry["evaluated"]),
            valid=int(entry["valid"]),
            # Search-efficiency counters; absent in pre-overhaul cache
            # images, which stay loadable (counters default to 0).
            deduplicated=int(entry.get("deduplicated", 0)),
            pruned_early=int(entry.get("pruned_early", 0)),
        )

    def save_mapper_result(self, key: Iterable[Any],
                           result: MapperResult) -> None:
        self.cache.put("mappings", self._key(key), {
            "mapping": mapping_to_dict(result.mapping),
            "cost": result.cost,
            "evaluated": result.evaluated,
            "valid": result.valid,
            "deduplicated": result.deduplicated,
            "pruned_early": result.pruned_early,
        })

    # ------------------------------------------------------------------
    # Layer evaluations
    # ------------------------------------------------------------------
    def load_layer(self, key: Iterable[Any]) -> Optional[LayerEvaluation]:
        entry = self.cache.get("layers", self._key(key))
        if entry is None:
            return None
        return layer_evaluation_from_dict(entry)

    def save_layer(self, key: Iterable[Any],
                   evaluation: LayerEvaluation) -> None:
        self.cache.put("layers", self._key(key),
                       layer_evaluation_to_dict(evaluation))
