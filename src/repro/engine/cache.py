"""Persistent evaluation cache: in-memory dicts over a sharded disk store.

The cache memoizes four namespaces, keyed by content hashes so entries
are valid across processes and sessions:

* ``results``  — whole-job :class:`~repro.model.results.NetworkEvaluation`
  dicts, keyed by :attr:`EvaluationJob.key`;
* ``mappings`` — mapper search results (the expensive part of
  ``use_mapper=True`` runs), keyed by (system, layer shape, search
  budget, seed);
* ``layers``   — individual layer evaluations, shared between jobs that
  evaluate the same layer under the same configuration (e.g. the fused
  and non-fused arms of a memory sweep);
* ``failures`` — poison-job quarantine records, keyed like ``results``:
  jobs that failed deterministically through a retrying
  :class:`~repro.engine.executor.FailurePolicy` land here (error type,
  message, attempt count) so a rerun skips them instead of re-failing
  — surfaced via :meth:`EvaluationCache.peek` and ``repro cache stats``.

Disk persistence (``backend="sharded"``, the default for a directory
cache) goes through :class:`repro.engine.store.ShardedStore`: entries
shard by key prefix into append-only logs, :meth:`EvaluationCache.save`
flushes only the entries added since the last save (O(delta), never a
full rewrite), shards fault into memory lazily on first lookup, and
per-shard advisory locks make one cache directory safe to share between
concurrent sweep processes.  A directory holding only a legacy
single-image ``cache.json`` is migrated into the sharded layout on
first open; ``backend="legacy"`` keeps the old whole-image behavior
(written atomically and fsync'd, so a crash never corrupts it).
Hit/miss counts are tracked per namespace and mergeable across worker
processes.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from repro import obs
from repro.engine.codec import (
    canonical_json,
    layer_evaluation_from_dict,
    layer_evaluation_to_dict,
)
from repro.engine.store import Budget, ShardedStore, atomic_write_json, \
    shard_of
from repro.mapping.mapper import MapperResult
from repro.mapping.serialize import mapping_from_dict, mapping_to_dict
from repro.model.results import LayerEvaluation

NAMESPACES: Tuple[str, ...] = ("results", "mappings", "layers", "failures")

_CACHE_FORMAT_VERSION = 1


@functools.lru_cache(maxsize=65536)
def _store_key_json(store_key: Tuple) -> str:
    return canonical_json(list(store_key))


def store_entry_key(system_key: str, store_key: Iterable[Any]) -> str:
    """The cache-entry key a :class:`SystemStore` lookup resolves to.

    The single source of truth for the composition — the store uses it
    for every load/save and the sweep planner for dedup and parent-side
    assembly, so the two can never diverge.  The JSON suffix depends
    only on the store-key tuple (not the configuration), so it is
    memoized on its own and the per-call work is a string concat: a
    thousand-config sweep renders each layer's suffix once, not once
    per configuration.
    """
    if type(store_key) is tuple:
        try:
            return system_key + "/" + _store_key_json(store_key)
        except TypeError:  # unhashable member: render directly
            pass
    return system_key + "/" + canonical_json(list(store_key))


@dataclass
class CacheStats:
    """Hit/miss counters for one namespace."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return f"{self.hits}/{self.lookups} hits ({self.hit_rate:.1%})"

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass
class PlannerStats:
    """Counters of the sweep planner's cross-job work elimination.

    Filled by :func:`repro.engine.planner.build_plan` in the parent
    process: of ``planned`` sub-tasks expanded from a job batch,
    ``deduplicated`` were dropped as duplicates of another task in the
    same batch (including same-geometry layers under different names) and
    ``cache_hits`` because the cache already held them; ``phase1_tasks``
    is the unique remainder actually executed, shipped as ``batches``
    pool dispatch payloads.
    """

    planned: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    phase1_tasks: int = 0
    batches: int = 0

    def describe(self) -> str:
        return (f"planner: {self.planned} sub-tasks planned, "
                f"{self.deduplicated} deduplicated, "
                f"{self.cache_hits} already cached, "
                f"{self.phase1_tasks} executed in phase 1 "
                f"({self.batches} batches)")

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready counter dict (the ``--json`` stats record)."""
        return {
            "planned": self.planned,
            "deduplicated": self.deduplicated,
            "cache_hits": self.cache_hits,
            "phase1_tasks": self.phase1_tasks,
            "batches": self.batches,
        }

    def reset(self) -> None:
        self.planned = 0
        self.deduplicated = 0
        self.cache_hits = 0
        self.phase1_tasks = 0
        self.batches = 0


@dataclass
class ResilienceStats:
    """Counters of the fault-tolerance machinery, filled by the executor.

    ``retries`` counts job re-attempts under a retrying
    :class:`~repro.engine.executor.FailurePolicy`, ``timeouts`` tasks
    that tripped the worker-side watchdog, ``quarantines`` jobs written
    to the ``failures`` namespace after exhausting their retries, and
    ``respawns`` worker-pool recoveries from dead worker processes.
    """

    retries: int = 0
    timeouts: int = 0
    quarantines: int = 0
    respawns: int = 0

    def any(self) -> bool:
        return bool(self.retries or self.timeouts
                    or self.quarantines or self.respawns)

    def to_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantines": self.quarantines,
            "respawns": self.respawns,
        }

    def absorb(self, counts: Dict[str, Any]) -> None:
        self.retries += int(counts.get("retries", 0))
        self.timeouts += int(counts.get("timeouts", 0))
        self.quarantines += int(counts.get("quarantines", 0))
        self.respawns += int(counts.get("respawns", 0))

    def describe(self) -> str:
        return (f"resilience: {self.retries} retries, "
                f"{self.timeouts} timeouts, "
                f"{self.quarantines} quarantined, "
                f"{self.respawns} worker respawns")

    def reset(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.quarantines = 0
        self.respawns = 0


class EvaluationCache:
    """In-memory + on-disk cache for sweep-engine evaluations.

    ``directory=None`` gives a purely in-memory cache (still useful for
    sharing mapper results across the jobs of one sweep).  With a
    directory, the default ``backend="sharded"`` opens a
    :class:`~repro.engine.store.ShardedStore`: only the compact index is
    read up front, shards fault in lazily on first lookup, and
    :meth:`save` appends just the entries added since the last save —
    so neither warm-start nor persistence cost scales with the total
    cache size, and multiple processes can share the directory (see
    :mod:`repro.engine.store`).  ``backend="legacy"`` restores the old
    behavior: the full ``cache.json`` image loads eagerly on
    construction and :meth:`save` rewrites it whole (atomically).

    ``max_entries``/``max_bytes`` (int = global, dict = per-namespace)
    arm the sharded store's LRU eviction; evicted entries recompute on
    the next miss.
    """

    def __init__(self, directory: Optional[str] = None,
                 backend: str = "sharded",
                 max_entries: Budget = None,
                 max_bytes: Budget = None,
                 load_namespaces: Optional[Iterable[str]] = None) -> None:
        if backend not in ("sharded", "auto", "legacy"):
            raise ValueError(f"unknown cache backend {backend!r}; "
                             f"options: 'sharded', 'legacy'")
        self.directory = directory
        self._data: Dict[str, Dict[str, Any]] = {ns: {} for ns in NAMESPACES}
        self._added: Dict[str, Dict[str, Any]] = {ns: {} for ns in NAMESPACES}
        self.stats: Dict[str, CacheStats] = {ns: CacheStats()
                                             for ns in NAMESPACES}
        self.planner = PlannerStats()
        self.resilience = ResilienceStats()
        self._epoch = 0
        self._store: Optional[ShardedStore] = None
        self._loaded_shards: Set[str] = set()
        self._touched: Dict[str, Set[str]] = {ns: set() for ns in NAMESPACES}
        #: Mapper-entry keys that came from disk, not this session's
        #: searches — excluded from :meth:`mapper_search_stats` so a
        #: lazily faulted warm entry never counts as a fresh search.
        self._disk_mappings: Set[str] = set()
        if directory is not None:
            if backend == "legacy":
                self._load()
            else:
                self._store = ShardedStore(
                    directory, NAMESPACES,
                    load_namespaces=load_namespaces,
                    max_entries=max_entries, max_bytes=max_bytes)

    @property
    def store(self) -> Optional[ShardedStore]:
        """The sharded disk backend (``None`` for in-memory/legacy)."""
        return self._store

    @property
    def epoch(self) -> int:
        """Generation counter, bumped whenever entries are dropped.

        Entries are only ever *added* within one epoch, and dict
        insertion order is stable, so ``(epoch, per-namespace length)``
        identifies a prefix of the cache's contents exactly — the basis
        of the :class:`~repro.engine.pool.WorkerPool` delta protocol.
        A bump invalidates every marker minted under the old epoch.
        """
        return self._epoch

    def clear(self) -> None:
        """Drop every in-memory entry and bump the epoch.

        Persistent-pool workers hold warm copies of this cache; the
        epoch bump is what tells the pool those copies are stale (it
        reseeds workers from scratch on the next dispatch instead of
        shipping an additive delta that couldn't express the removal).
        On a sharded-store cache the disk entries are untouched (use
        ``store.gc`` to shrink the disk) and become faultable again —
        ``clear`` forgets unflushed additions and re-reads from disk.
        """
        self._epoch += 1
        self._data = {ns: {} for ns in NAMESPACES}
        self._added = {ns: {} for ns in NAMESPACES}
        self._loaded_shards = set()
        self._touched = {ns: set() for ns in NAMESPACES}
        self._disk_mappings = set()

    # ------------------------------------------------------------------
    # Generic namespace access
    # ------------------------------------------------------------------
    def _fault(self, key: str) -> None:
        """Load the disk shard holding ``key`` into memory (idempotent).

        In-memory values win over their disk copies: a key present in
        both was put this session, and content-addressed keys make the
        two interchangeable anyway.  Faulted entries join ``_data`` —
        append-only, so live sync markers stay valid — but are never
        marked added (they are already persisted).
        """
        store = self._store
        if store is None:
            return
        shard = shard_of(key)
        if shard in self._loaded_shards:
            return
        self._loaded_shards.add(shard)
        for namespace, values in store.load_shard(shard).items():
            data = self._data.get(namespace)
            if data is None:
                continue
            fresh = {k: v for k, v in values.items() if k not in data}
            data.update(fresh)
            if namespace == "mappings":
                self._disk_mappings.update(fresh)

    def get(self, namespace: str, key: str) -> Optional[Any]:
        """Look up ``key``, counting the hit or miss."""
        entry = self._data[namespace].get(key)
        if entry is None and self._store is not None:
            self._fault(key)
            entry = self._data[namespace].get(key)
        stats = self.stats[namespace]
        if entry is None:
            stats.misses += 1
        else:
            stats.hits += 1
            if self._store is not None:
                self._touched[namespace].add(key)
        return entry

    def put(self, namespace: str, key: str, value: Any) -> None:
        self._data[namespace][key] = value
        self._added[namespace][key] = value

    def contains(self, namespace: str, key: str) -> bool:
        """Membership probe that counts neither a hit nor a miss (the
        planner's dedup-against-the-cache check, which must not distort
        the hit-rate report of the evaluation that follows)."""
        if key in self._data[namespace]:
            return True
        if self._store is not None:
            self._fault(key)
            return key in self._data[namespace]
        return False

    def peek(self, namespace: str, key: str) -> Optional[Any]:
        """Uncounted lookup (see :meth:`contains`)."""
        entry = self._data[namespace].get(key)
        if entry is None and self._store is not None:
            self._fault(key)
            entry = self._data[namespace].get(key)
        if entry is not None and self._store is not None:
            self._touched[namespace].add(key)
        return entry

    def __len__(self) -> int:
        """In-memory entry count (on a sharded store, only the shards
        faulted in so far — ``store.describe()`` has the disk totals)."""
        return sum(len(entries) for entries in self._data.values())

    def size(self, namespace: str) -> int:
        return len(self._data[namespace])

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def get_result(self, key: str) -> Optional[Dict[str, Any]]:
        return self.get("results", key)

    def put_result(self, key: str, value: Dict[str, Any]) -> None:
        self.put("results", key, value)

    # ------------------------------------------------------------------
    # Worker-merge protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The full entry image, for seeding worker processes."""
        return {ns: dict(entries) for ns, entries in self._data.items()}

    def sync_marker(self) -> Tuple[int, Tuple[int, ...]]:
        """An epoch-stamped position marker: ``(epoch, lengths)``.

        Within one epoch entries are append-only and dicts preserve
        insertion order, so the marker pins down exactly which entries a
        reader holding it has seen — :meth:`entries_since` replays the
        remainder.  Markers from an older epoch are unusable (the data
        they described was dropped); holders must resync from a full
        snapshot.
        """
        return (self._epoch,
                tuple(len(self._data[ns]) for ns in NAMESPACES))

    def entries_since(
            self, marker: Tuple[int, Tuple[int, ...]],
    ) -> Dict[str, Dict[str, Any]]:
        """Entries added after ``marker`` (same-epoch markers only).

        O(delta) via :func:`itertools.islice` over the insertion-ordered
        dicts — no per-reader bookkeeping is kept on the cache itself.
        """
        epoch, lengths = marker
        if epoch != self._epoch:
            raise ValueError(
                f"stale cache marker: epoch {epoch} != {self._epoch}")
        delta: Dict[str, Dict[str, Any]] = {}
        for namespace, seen in zip(NAMESPACES, lengths):
            entries = self._data[namespace]
            if len(entries) > seen:
                fresh = itertools.islice(entries.items(), seen, None)
                delta[namespace] = dict(fresh)
        return delta

    @classmethod
    def from_snapshot(
            cls, snapshot: Dict[str, Dict[str, Any]]) -> "EvaluationCache":
        cache = cls()
        for namespace in NAMESPACES:
            cache._data[namespace].update(snapshot.get(namespace, {}))
        return cache

    def store_seed(self) -> Optional[Tuple[str, Dict[str, Dict[str, Any]]]]:
        """The slim worker seed a sharded-store cache supports:
        ``(directory, unflushed entries)``.

        Everything already flushed is readable by the worker straight
        from the shared store (lazily, shard by shard), so only the
        entries added since the last save ride the wire — instead of
        the full pickled image :meth:`snapshot` would ship.  Whole-job
        ``results`` stay home either way (workers never read them).
        Returns ``None`` when no sharded store is live.
        """
        if self._store is None:
            return None
        pending = {ns: dict(values)
                   for ns, values in self._added.items()
                   if ns != "results" and values}
        return (self.directory, pending)

    @classmethod
    def from_store_seed(
            cls, seed: Tuple[str, Dict[str, Dict[str, Any]]],
    ) -> "EvaluationCache":
        """Open a worker-side cache over the shared store directory.

        Reads lazily from the same sharded store as the parent (skipping
        the whole-job ``results`` namespace entirely) and adopts the
        parent's unflushed entries; like every worker cache, it only
        ever ships back what it computes itself (``pop_added``).
        """
        directory, pending = seed
        cache = cls(directory, load_namespaces=("mappings", "layers"))
        cache.adopt(pending)
        return cache

    @property
    def dirty(self) -> bool:
        """True when entries were added since the last save/pop_added —
        a clean (100%-hit) run needn't rewrite the disk image."""
        return any(self._added.values())

    @property
    def needs_flush(self) -> bool:
        """Whether :meth:`save` has anything to persist: added entries,
        or (sharded store only) access touches that keep LRU recency
        honest across warm runs."""
        if self.dirty:
            return True
        return self._store is not None and any(self._touched.values())

    def pop_added(self) -> Dict[str, Dict[str, Any]]:
        """Entries added since the last call (worker -> parent shipping)."""
        added = self._added
        self._added = {ns: {} for ns in NAMESPACES}
        return added

    def merge(self, entries: Dict[str, Dict[str, Any]]) -> None:
        """Adopt entries computed elsewhere (also marks them for saving)."""
        for namespace, values in entries.items():
            for key, value in values.items():
                self.put(namespace, key, value)

    def adopt(self, entries: Dict[str, Dict[str, Any]]) -> None:
        """Merge entries *without* marking them added/dirty.

        The worker side of the pool sync protocol: entries arriving from
        the parent are already owned (and persisted) there, so a worker
        adopting them must not re-ship them back with its own results.
        """
        for namespace, values in entries.items():
            self._data[namespace].update(values)

    def stats_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-namespace hit/miss counters, plus (when a sharded store
        is live) its ``store`` counters — shard loads, flushes, lock
        waits, evictions — under the ``"store"`` key."""
        snapshot: Dict[str, Dict[str, Any]] = {
            ns: {"hits": s.hits, "misses": s.misses}
            for ns, s in self.stats.items()
        }
        if self._store is not None:
            snapshot["store"] = self._store.stats.to_dict()
        if self.resilience.any():
            snapshot["resilience"] = self.resilience.to_dict()
        return snapshot

    def reset_stats(self) -> None:
        """Zero every hit/miss counter and the planner counters.

        Workers call this between payloads so each ships deltas only;
        tests use it to scope assertions to one run.  Entries are
        untouched — only the statistics reset.
        """
        for stats in self.stats.values():
            stats.reset()
        self.planner.reset()
        self.resilience.reset()
        if self._store is not None:
            self._store.stats.reset()

    def absorb_stats(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold worker-side hit/miss (and store) counts into this
        cache's statistics."""
        for namespace, counts in snapshot.items():
            if namespace == "store":
                # Worker shard faults / lock waits against the shared
                # store roll up into the parent's store counters.
                if self._store is not None:
                    self._store.stats.absorb(counts)
                continue
            if namespace == "resilience":
                self.resilience.absorb(counts)
                continue
            stats = self.stats[namespace]
            stats.hits += counts.get("hits", 0)
            stats.misses += counts.get("misses", 0)

    def describe_stats(self) -> str:
        parts = [f"{ns} {self.stats[ns].describe()}"
                 for ns in NAMESPACES if self.stats[ns].lookups]
        line = "cache: " + (" | ".join(parts) if parts else "no lookups")
        if self.planner.planned:
            line += "\n" + self.planner.describe()
        if self.resilience.any():
            line += "\n" + self.resilience.describe()
        quarantined = len(self._data["failures"])
        if quarantined:
            line += (f"\nquarantine: {quarantined} poison "
                     f"job{'s' if quarantined != 1 else ''} on file "
                     f"(skipped under --on-error skip/retry)")
        if self._store is not None:
            store = self._store.stats
            line += (f"\nstore: {store.shard_loads} shard loads "
                     f"({store.loaded_entries} entries), "
                     f"{store.flushes} flushes "
                     f"({store.flushed_entries} entries), "
                     f"{store.lock_waits} lock waits, "
                     f"{store.evicted_entries} evicted")
        return line

    def mapper_search_stats(self) -> Dict[str, int]:
        """Aggregated search-efficiency counters over cached mapper results.

        Sums the ``evaluated`` / ``valid`` / ``deduplicated`` /
        ``pruned_early`` counters of every mapper-search entry currently
        in the cache, so sweep front-ends can surface how much work the
        candidate dedup and early capacity rejection saved.
        """
        totals = {"searches": 0, "evaluated": 0, "valid": 0,
                  "deduplicated": 0, "pruned_early": 0}
        for key, entry in self._data["mappings"].items():
            if key in self._disk_mappings:
                # Lazily faulted warm entries are prior sessions' work;
                # counting them would misreport them as fresh searches.
                continue
            totals["searches"] += 1
            for counter in ("evaluated", "valid", "deduplicated",
                            "pruned_early"):
                totals[counter] += int(entry.get(counter, 0))
        return totals

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        """Where the legacy single-JSON image lives (also the migration
        source for the sharded backend)."""
        if self.directory is None:
            return None
        return os.path.join(self.directory, "cache.json")

    def _load(self) -> None:
        path = self.path
        if path is None or not os.path.exists(path):
            return
        with obs.span("cache.load", path=path) as load_span:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    image = json.load(handle)
            except (OSError, ValueError):
                return  # unreadable/corrupt image: start fresh, not crash
            if not isinstance(image, dict) \
                    or image.get("version") != _CACHE_FORMAT_VERSION:
                return  # stale format: start fresh, not misread entries
            for namespace in NAMESPACES:
                self._data[namespace].update(image.get("entries", {})
                                             .get(namespace, {}))
            load_span.set("entries", len(self))

    def save(self) -> Optional[str]:
        """Persist to disk; returns the path written (``None`` in-memory).

        Sharded backend: flushes only the entries added since the last
        save, plus batched access touches for LRU recency — O(delta)
        appends, never a rewrite.  Legacy backend: atomically rewrites
        the whole ``cache.json`` image (temp file + fsync +
        ``os.replace``, so a crash mid-save leaves the previous image
        intact, never a truncated one).
        """
        if self._store is not None:
            added = {ns: dict(values)
                     for ns, values in self._added.items() if values}
            touched = {ns: sorted(keys)
                       for ns, keys in self._touched.items() if keys}
            self._store.flush(added, touched)
            self._added = {ns: {} for ns in NAMESPACES}
            self._touched = {ns: set() for ns in NAMESPACES}
            return self._store.root
        path = self.path
        if path is None:
            return None
        with obs.span("cache.save", path=path, entries=len(self)):
            os.makedirs(self.directory, exist_ok=True)
            atomic_write_json(path, {
                "version": _CACHE_FORMAT_VERSION,
                "entries": self._data,
            })
            self._added = {ns: {} for ns in NAMESPACES}
        return path


class SystemStore:
    """Adapter giving a system object cached mapper searches and layer
    evaluations.

    Every :class:`~repro.systems.base.PhotonicSystem` accepts one of these
    as its ``store`` argument and calls the four duck-typed methods below
    with structural keys (tuples of scalars); the store scopes them under
    the system's configuration hash so different configurations never
    collide.
    """

    def __init__(self, cache: EvaluationCache, system_key: str) -> None:
        self.cache = cache
        self.system_key = system_key

    def _key(self, key: Iterable[Any]) -> str:
        return store_entry_key(self.system_key, key)

    # ------------------------------------------------------------------
    # Mapper results
    # ------------------------------------------------------------------
    def load_mapper_result(self, key: Iterable[Any]) -> Optional[MapperResult]:
        entry = self.cache.get("mappings", self._key(key))
        if entry is None:
            return None
        return MapperResult(
            mapping=mapping_from_dict(entry["mapping"]),
            cost=float(entry["cost"]),
            evaluated=int(entry["evaluated"]),
            valid=int(entry["valid"]),
            # Search-efficiency counters; absent in pre-overhaul cache
            # images, which stay loadable (counters default to 0).
            deduplicated=int(entry.get("deduplicated", 0)),
            pruned_early=int(entry.get("pruned_early", 0)),
        )

    def save_mapper_result(self, key: Iterable[Any],
                           result: MapperResult) -> None:
        self.cache.put("mappings", self._key(key), {
            "mapping": mapping_to_dict(result.mapping),
            "cost": result.cost,
            "evaluated": result.evaluated,
            "valid": result.valid,
            "deduplicated": result.deduplicated,
            "pruned_early": result.pruned_early,
        })

    # ------------------------------------------------------------------
    # Layer evaluations
    # ------------------------------------------------------------------
    def load_layer(self, key: Iterable[Any]) -> Optional[LayerEvaluation]:
        entry = self.cache.get("layers", self._key(key))
        if entry is None:
            return None
        return layer_evaluation_from_dict(entry)

    def save_layer(self, key: Iterable[Any],
                   evaluation: LayerEvaluation) -> None:
        self.cache.put("layers", self._key(key),
                       layer_evaluation_to_dict(evaluation))
