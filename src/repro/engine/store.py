"""Sharded, content-addressed, concurrent-safe persistent cache backend.

The monolithic ``cache.json`` image the engine started with rewrote (and
reloaded) everything ever evaluated on each run, and two processes
sharing one cache directory silently clobbered each other's writes.
:class:`ShardedStore` replaces it with a layout built around the fact
that every cache key is (or is prefixed by) a SHA-256 content hash:

* **Shards.**  Entries are distributed over ``shard-0.jsonl`` ..
  ``shard-f.jsonl`` by the first hex digit of their key — uniformly, for
  free, because the keys are content hashes.  Each shard is an
  append-only log of JSON lines: ``["put", namespace, key, value,
  mtime]`` records plus batched ``["touch", atime, {namespace:
  [keys]}]`` access records for LRU bookkeeping.  Replaying a log
  (later lines win) reconstructs the shard; compaction (:meth:`gc`)
  rewrites it minimal.

* **O(delta) persistence.**  A flush appends only the entries added
  since the last flush — never rewriting what other runs (or other
  processes) wrote — so persistence cost scales with *this run's* new
  work, not with everything ever cached.  Opening a store reads only
  the compact ``index.json``; shards fault in lazily on first lookup.

* **Concurrency.**  Every shard append and shard read happens under an
  advisory ``flock`` on a per-shard lock file, with writes fsync'd
  before the lock drops, so concurrent sweep processes interleave whole
  records: the merged store is the union of everyone's entries and a
  reader sees either the old or the new value of a key, never a torn
  one.  Contended acquisitions are counted (and timed) in
  :class:`StoreStats`.

* **Capacity.**  Optional entry/byte budgets — global or per-namespace
  — trigger LRU eviction: :meth:`gc` orders entries by last put/touch
  time and rewrites the shards compacted.  Evicted entries are simply
  recomputed on the next miss; content-addressed keys make that safe.

* **Migration.**  A directory holding only a legacy ``cache.json``
  image is migrated into the sharded layout on first open (the legacy
  file is left in place, untouched, for old readers); the index file
  doubles as the migrated-already marker.

Everything on-disk is written either append-under-lock (shard logs) or
atomically via :func:`atomic_write_json` (the index, compacted shards),
so a crash mid-write never corrupts what was there before.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro import obs
from repro.exceptions import StoreLockTimeout

try:  # advisory file locks: POSIX everywhere this repo targets
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

_STORE_FORMAT_VERSION = 1
_LEGACY_FORMAT_VERSION = 1
_HEX_DIGITS = "0123456789abcdef"
_SHARD_IDS = tuple(_HEX_DIGITS)

Budget = Union[None, int, Dict[str, int]]


def atomic_write_json(path: str, payload: Any) -> str:
    """Durably replace ``path`` with ``payload`` as JSON.

    Temp file in the same directory, fsync'd before ``os.replace``, so a
    crash at any point leaves either the old file or the complete new
    one — never a truncated image (a plain ``open(...); json.dump``
    could be caught mid-dump, and an un-fsync'd rename can surface as an
    empty file after power loss).  Used by the legacy single-image
    writer, the store index, and shard compaction alike.
    """
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + "-",
        suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return path


@dataclass
class StoreStats:
    """Operational counters for one :class:`ShardedStore`.

    ``lock_waits`` counts *contended* lock acquisitions only (an
    uncontended ``flock`` is free and uncounted), so a non-zero value is
    direct evidence of concurrent processes sharing the directory.
    """

    shard_loads: int = 0
    loaded_entries: int = 0
    flushes: int = 0
    flushed_entries: int = 0
    lock_waits: int = 0
    lock_wait_s: float = 0.0
    evicted_entries: int = 0
    evicted_bytes: int = 0
    migrated_entries: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_loads": self.shard_loads,
            "loaded_entries": self.loaded_entries,
            "flushes": self.flushes,
            "flushed_entries": self.flushed_entries,
            "lock_waits": self.lock_waits,
            "lock_wait_s": round(self.lock_wait_s, 6),
            "evicted_entries": self.evicted_entries,
            "evicted_bytes": self.evicted_bytes,
            "migrated_entries": self.migrated_entries,
        }

    def absorb(self, counts: Dict[str, Any]) -> None:
        """Fold another store's counters in (worker -> parent merge)."""
        self.shard_loads += int(counts.get("shard_loads", 0))
        self.loaded_entries += int(counts.get("loaded_entries", 0))
        self.flushes += int(counts.get("flushes", 0))
        self.flushed_entries += int(counts.get("flushed_entries", 0))
        self.lock_waits += int(counts.get("lock_waits", 0))
        self.lock_wait_s += float(counts.get("lock_wait_s", 0.0))
        self.evicted_entries += int(counts.get("evicted_entries", 0))
        self.evicted_bytes += int(counts.get("evicted_bytes", 0))
        self.migrated_entries += int(counts.get("migrated_entries", 0))

    def reset(self) -> None:
        self.shard_loads = 0
        self.loaded_entries = 0
        self.flushes = 0
        self.flushed_entries = 0
        self.lock_waits = 0
        self.lock_wait_s = 0.0
        self.evicted_entries = 0
        self.evicted_bytes = 0
        self.migrated_entries = 0


class FileLock:
    """Exclusive advisory lock on a sentinel file (context manager).

    ``flock`` where available (POSIX — processes waiting on the same
    path serialize, and the kernel releases the lock even if the holder
    dies); a create-exclusive spinlock elsewhere.  Contended
    acquisitions are recorded on ``stats`` and traced as
    ``cache.lock_wait`` spans.

    ``timeout`` bounds the acquisition wait: a contender holding the
    lock past the deadline raises
    :class:`~repro.exceptions.StoreLockTimeout` instead of blocking the
    caller forever (store operations hold locks for milliseconds, so a
    deadline measured in seconds only ever fires on a wedged holder).
    ``timeout=None`` preserves the unbounded wait.
    """

    def __init__(self, path: str, stats: Optional[StoreStats] = None,
                 timeout: Optional[float] = None) -> None:
        self.path = path
        self.stats = stats
        self.timeout = timeout
        self._fd: Optional[int] = None

    def __enter__(self) -> "FileLock":
        self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        if fcntl is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                with obs.span("cache.lock_wait", path=self.path):
                    started = time.perf_counter()
                    self._blocking_acquire()
                    if self.stats is not None:
                        self.stats.lock_waits += 1
                        self.stats.lock_wait_s += (time.perf_counter()
                                                   - started)
        else:  # pragma: no cover - exercised only off-POSIX
            self._spin_acquire()
        return self

    def _blocking_acquire(self) -> None:
        """Wait for the flock — unbounded, or polling under a deadline."""
        if self.timeout is None:
            fcntl.flock(self._fd, fcntl.LOCK_EX)
            return
        deadline = time.perf_counter() + self.timeout
        while True:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return
            except OSError:
                if time.perf_counter() >= deadline:
                    os.close(self._fd)
                    self._fd = None
                    raise StoreLockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout:g}s — another process is holding "
                        f"it (wedged writer?)") from None
                time.sleep(0.005)

    def _spin_acquire(self) -> None:  # pragma: no cover - non-POSIX only
        sentinel = self.path + ".held"
        started = time.perf_counter()
        waited = False
        while True:
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                self._sentinel = sentinel
                break
            except FileExistsError:
                waited = True
                time.sleep(0.005)
        if waited and self.stats is not None:
            self.stats.lock_waits += 1
            self.stats.lock_wait_s += time.perf_counter() - started

    def __exit__(self, *_exc) -> None:
        if fcntl is None and hasattr(self, "_sentinel"):  # pragma: no cover
            try:
                os.unlink(self._sentinel)
            except OSError:
                pass
        if self._fd is not None:
            os.close(self._fd)  # closing drops the flock
            self._fd = None


def shard_of(key: str) -> str:
    """The shard a key lives in: its first hex digit.

    Cache keys are SHA-256 hashes (or hash-prefixed), so the first digit
    is uniform; anything else (defensive) hashes through crc32.
    """
    first = key[0] if key else "0"
    if first in _HEX_DIGITS:
        return first
    return _HEX_DIGITS[zlib.crc32(key.encode("utf-8")) & 15]


class ShardedStore:
    """The on-disk backend behind a directory-backed ``EvaluationCache``.

    Layout under ``<directory>/store/``::

        index.json      # version stamp + per-namespace entry counts
        shard-0.jsonl   # append-only put/touch logs, one per hex digit
        ...
        shard-f.jsonl
        locks/          # advisory lock sentinels (one per shard + index)

    ``namespaces`` fixes the entry families; ``load_namespaces``
    restricts what :meth:`load_shard` decodes (worker processes skip the
    large whole-job ``results`` entries).  ``max_entries``/``max_bytes``
    (int = global, dict = per-namespace) arm automatic LRU eviction at
    flush time; :meth:`gc` applies the same policy on demand.
    """

    def __init__(
        self,
        directory: str,
        namespaces: Iterable[str],
        load_namespaces: Optional[Iterable[str]] = None,
        max_entries: Budget = None,
        max_bytes: Budget = None,
        lock_timeout: Optional[float] = 30.0,
    ) -> None:
        self.directory = directory
        self.namespaces = tuple(namespaces)
        self.load_namespaces = (frozenset(load_namespaces)
                                if load_namespaces is not None
                                else frozenset(self.namespaces))
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        #: Per-acquisition deadline on shard/index locks — store
        #: operations hold them for milliseconds, so hitting it means a
        #: wedged contender; raise StoreLockTimeout, don't hang a sweep.
        self.lock_timeout = lock_timeout
        self.root = os.path.join(directory, "store")
        self.stats = StoreStats()
        #: Approximate per-namespace entry counts from the index; kept
        #: current on flush (overwrites double-count until the next gc).
        self.index_counts: Dict[str, int] = {}
        self._open()

    # ------------------------------------------------------------------
    # Paths and locks
    # ------------------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def shard_path(self, shard: str) -> str:
        return os.path.join(self.root, f"shard-{shard}.jsonl")

    def _lock(self, name: str) -> FileLock:
        return FileLock(os.path.join(self.root, "locks", name + ".lock"),
                        self.stats, timeout=self.lock_timeout)

    @property
    def legacy_path(self) -> str:
        return os.path.join(self.directory, "cache.json")

    # ------------------------------------------------------------------
    # Open / migrate
    # ------------------------------------------------------------------
    def _open(self) -> None:
        with obs.span("cache.open", directory=self.directory):
            os.makedirs(os.path.join(self.root, "locks"), exist_ok=True)
            if not os.path.exists(self.index_path):
                with self._lock("index"):
                    # Re-check under the lock: another process may have
                    # initialized (and migrated) the store meanwhile.
                    if not os.path.exists(self.index_path):
                        if os.path.exists(self.legacy_path):
                            self._migrate_legacy()
                        self._write_index()
            index = self._read_index()
            self.index_counts = {
                ns: int(count)
                for ns, count in index.get("entries", {}).items()
            }

    def _read_index(self) -> Dict[str, Any]:
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(index, dict) \
                or index.get("version") != _STORE_FORMAT_VERSION:
            return {}
        return index

    def _write_index(self) -> None:
        atomic_write_json(self.index_path, {
            "version": _STORE_FORMAT_VERSION,
            "shards": len(_SHARD_IDS),
            "namespaces": list(self.namespaces),
            "entries": dict(self.index_counts),
        })

    def _migrate_legacy(self) -> None:
        """Fold a legacy single-JSON image into the sharded layout.

        Entries are re-emitted verbatim — the same dict values the
        legacy loader would have produced — so a migrated store serves
        byte-identical results.  An unreadable or foreign-format image
        is skipped (the store starts empty), matching the legacy
        loader's start-fresh-not-crash behavior.  The legacy file stays
        in place untouched for old readers; the index file this method
        is followed by marks migration done.
        """
        with obs.span("cache.migrate", path=self.legacy_path) as span:
            try:
                with open(self.legacy_path, "r", encoding="utf-8") as handle:
                    image = json.load(handle)
            except (OSError, ValueError):
                return
            if not isinstance(image, dict) \
                    or image.get("version") != _LEGACY_FORMAT_VERSION:
                return
            entries = image.get("entries", {})
            migrated = self._append({
                ns: dict(values)
                for ns, values in entries.items()
                if ns in self.namespaces and values
            }, {})
            self.stats.migrated_entries += migrated
            span.set("entries", migrated)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def load_shard(self, shard: str) -> Dict[str, Dict[str, Any]]:
        """Replay one shard log; returns ``{namespace: {key: value}}``.

        Reads under the shard lock, so an in-flight append from another
        process is seen either complete or not at all.  Undecodable
        lines (a torn tail from a crashed writer) are skipped — every
        complete record before them is still served.
        """
        path = self.shard_path(shard)
        entries: Dict[str, Dict[str, Any]] = {}
        if not os.path.exists(path):
            return entries
        with obs.span("cache.shard_load", shard=shard) as span:
            with self._lock("shard-" + shard):
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            count = 0
            for line in lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a crashed writer
                if record[0] != "put":
                    continue
                _tag, namespace, key, value = record[0:4]
                if namespace not in self.load_namespaces:
                    continue
                entries.setdefault(namespace, {})[key] = value
                count += 1
            self.stats.shard_loads += 1
            self.stats.loaded_entries += count
            span.set("entries", count)
        return entries

    def _replay_meta(
        self, shard: str,
    ) -> Tuple[Dict[Tuple[str, str], Any], Dict[Tuple[str, str], float],
               Dict[Tuple[str, str], int]]:
        """Full replay with LRU metadata (gc's view): values, last
        access times, and encoded entry sizes."""
        values: Dict[Tuple[str, str], Any] = {}
        atimes: Dict[Tuple[str, str], float] = {}
        sizes: Dict[Tuple[str, str], int] = {}
        path = self.shard_path(shard)
        if not os.path.exists(path):
            return values, atimes, sizes
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if record[0] == "put":
                _tag, namespace, key, value, stamp = record
                if namespace not in self.namespaces:
                    continue
                slot = (namespace, key)
                values[slot] = value
                atimes[slot] = float(stamp)
                sizes[slot] = len(line)
            elif record[0] == "touch":
                _tag, stamp, touched = record
                for namespace, keys in touched.items():
                    for key in keys:
                        slot = (namespace, key)
                        if slot in values:
                            atimes[slot] = max(atimes[slot], float(stamp))
        return values, atimes, sizes

    def entry_counts(self) -> Dict[str, int]:
        """Exact per-namespace entry counts (loads every shard; the
        inspection path behind ``repro cache stats``)."""
        counts = {ns: 0 for ns in self.namespaces}
        for shard in _SHARD_IDS:
            values, _atimes, _sizes = self._replay_meta(shard)
            for namespace, _key in values:
                counts[namespace] += 1
        return counts

    def total_bytes(self) -> int:
        """On-disk footprint of the shard logs (exact, via ``stat``)."""
        total = 0
        for shard in _SHARD_IDS:
            try:
                total += os.stat(self.shard_path(shard)).st_size
            except OSError:
                pass
        return total

    def shard_sizes(self) -> Dict[str, int]:
        sizes = {}
        for shard in _SHARD_IDS:
            try:
                sizes[shard] = os.stat(self.shard_path(shard)).st_size
            except OSError:
                sizes[shard] = 0
        return sizes

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _append(self, added: Dict[str, Dict[str, Any]],
                touched: Dict[str, List[str]]) -> int:
        """Append put/touch records, grouped by shard, each shard under
        its lock and fsync'd.  Returns the number of entries written."""
        by_shard: Dict[str, List[Tuple[str, str, Any]]] = {}
        for namespace, values in added.items():
            for key, value in values.items():
                by_shard.setdefault(shard_of(key), []).append(
                    (namespace, key, value))
        touch_by_shard: Dict[str, Dict[str, List[str]]] = {}
        for namespace, keys in touched.items():
            for key in keys:
                touch_by_shard.setdefault(shard_of(key), {}) \
                    .setdefault(namespace, []).append(key)
        now = time.time()
        written = 0
        for shard in sorted(set(by_shard) | set(touch_by_shard)):
            with self._lock("shard-" + shard):
                with open(self.shard_path(shard), "a",
                          encoding="utf-8") as handle:
                    for namespace, key, value in by_shard.get(shard, ()):
                        handle.write(json.dumps(
                            ["put", namespace, key, value, now],
                            separators=(",", ":")) + "\n")
                        written += 1
                    touches = touch_by_shard.get(shard)
                    if touches:
                        handle.write(json.dumps(
                            ["touch", now, touches],
                            separators=(",", ":")) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
        for namespace, values in added.items():
            if values:
                self.index_counts[namespace] = (
                    self.index_counts.get(namespace, 0) + len(values))
        return written

    def flush(self, added: Dict[str, Dict[str, Any]],
              touched: Optional[Dict[str, List[str]]] = None) -> int:
        """Persist this run's delta: new entries + access touches.

        O(dirty): appends to exactly the shards the delta lands in and
        rewrites nothing.  Updates the index counts, then applies the
        configured capacity budgets (LRU eviction via :meth:`gc`) if
        the store has outgrown them.
        """
        added = {ns: values for ns, values in added.items() if values}
        touched = {ns: list(keys)
                   for ns, keys in (touched or {}).items() if keys}
        total = sum(len(values) for values in added.values())
        with obs.span("cache.flush", entries=total,
                      shards=len({shard_of(key)
                                  for values in added.values()
                                  for key in values})):
            written = self._append(added, touched)
            if written or touched:
                with self._lock("index"):
                    self._write_index()
            self.stats.flushes += 1
            self.stats.flushed_entries += written
        if self._over_budget():
            self.gc()
        return written

    # ------------------------------------------------------------------
    # Eviction / compaction
    # ------------------------------------------------------------------
    def _over_budget(self) -> bool:
        if self.max_entries is not None:
            if isinstance(self.max_entries, dict):
                for namespace, limit in self.max_entries.items():
                    if self.index_counts.get(namespace, 0) > limit:
                        return True
            elif sum(self.index_counts.values()) > self.max_entries:
                return True
        if self.max_bytes is not None and not isinstance(self.max_bytes,
                                                         dict):
            if self.total_bytes() > self.max_bytes:
                return True
        elif isinstance(self.max_bytes, dict):
            # Per-namespace byte budgets need entry sizes: approximate
            # the trigger with the total, let gc apply the precise cut.
            if self.total_bytes() > sum(self.max_bytes.values()):
                return True
        return False

    def gc(self, max_entries: Budget = None,
           max_bytes: Budget = None) -> Dict[str, Any]:
        """Evict LRU entries down to budget and compact every shard.

        Budgets default to the store's configured ones; passing ``None``
        for both on an unbudgeted store still compacts (dropping
        superseded puts and touch records).  Entries are ranked by last
        put/touch time per namespace; the least recently used go first.
        Compacted shards are written atomically under their locks, so
        concurrent readers never see a half-rewritten log.
        """
        max_entries = self.max_entries if max_entries is None else max_entries
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        with obs.span("cache.gc") as span:
            shards: Dict[str, Tuple] = {}
            per_ns: Dict[str, List[Tuple[float, str, Tuple[str, str]]]] = {}
            ns_bytes: Dict[str, int] = {}
            for shard in _SHARD_IDS:
                with self._lock("shard-" + shard):
                    replayed = self._replay_meta(shard)
                shards[shard] = replayed
                values, atimes, sizes = replayed
                for slot in values:
                    namespace = slot[0]
                    per_ns.setdefault(namespace, []).append(
                        (atimes[slot], shard, slot))
                    ns_bytes[namespace] = (ns_bytes.get(namespace, 0)
                                           + sizes[slot])
            evict: set = set()
            evicted_bytes = 0
            for namespace, ranked in per_ns.items():
                ranked.sort()  # oldest access first
                keep = len(ranked)
                # Only per-namespace (dict) budgets apply here; global
                # int budgets rank all namespaces together below.
                entry_limit = (max_entries.get(namespace)
                               if isinstance(max_entries, dict) else None)
                byte_limit = (max_bytes.get(namespace)
                              if isinstance(max_bytes, dict) else None)
                dropped = 0
                remaining_bytes = ns_bytes.get(namespace, 0)
                for atime, shard, slot in ranked:
                    over_entries = (entry_limit is not None
                                    and keep - dropped > entry_limit)
                    over_bytes = (byte_limit is not None
                                  and remaining_bytes > byte_limit)
                    if not (over_entries or over_bytes):
                        break
                    evict.add(slot)
                    size = shards[shard][2][slot]
                    evicted_bytes += size
                    remaining_bytes -= size
                    dropped += 1
            if not isinstance(max_entries, dict) \
                    and max_entries is not None:
                cut, cut_bytes = self._global_cut(per_ns, shards,
                                                  max_entries, evict)
                evict |= cut
                evicted_bytes += cut_bytes
            if not isinstance(max_bytes, dict) and max_bytes is not None:
                cut, cut_bytes = self._global_byte_cut(
                    per_ns, shards, max_bytes, evict)
                evict |= cut
                evicted_bytes += cut_bytes
            counts = {ns: 0 for ns in self.namespaces}
            for shard in _SHARD_IDS:
                values, atimes, _sizes = shards[shard]
                survivors = [
                    (slot, values[slot], atimes[slot])
                    for slot in values if slot not in evict
                ]
                for slot, _value, _atime in survivors:
                    counts[slot[0]] += 1
                self._compact_shard(shard, survivors)
            self.index_counts = counts
            with self._lock("index"):
                self._write_index()
            self.stats.evicted_entries += len(evict)
            self.stats.evicted_bytes += evicted_bytes
            span.set("evicted", len(evict))
            return {
                "evicted_entries": len(evict),
                "evicted_bytes": evicted_bytes,
                "entries": counts,
                "bytes": self.total_bytes(),
            }

    def _global_cut(self, per_ns, shards, limit: int,
                    evicted: set) -> Tuple[set, int]:
        """LRU cut across all namespaces for a global entry budget."""
        ranked = [item for items in per_ns.values() for item in items
                  if item[2] not in evicted]
        ranked.sort()
        keep = len(ranked)
        extra: set = set()
        extra_bytes = 0
        for _atime, shard, slot in ranked:
            if keep <= limit:
                break
            extra.add(slot)
            extra_bytes += shards[shard][2][slot]
            keep -= 1
        return extra, extra_bytes

    def _global_byte_cut(self, per_ns, shards, limit: int,
                         evicted: set) -> Tuple[set, int]:
        """LRU cut across all namespaces for a global byte budget."""
        ranked = [item for items in per_ns.values() for item in items
                  if item[2] not in evicted]
        ranked.sort()
        remaining = sum(shards[shard][2][slot]
                        for _atime, shard, slot in ranked)
        extra: set = set()
        extra_bytes = 0
        for _atime, shard, slot in ranked:
            if remaining <= limit:
                break
            size = shards[shard][2][slot]
            extra.add(slot)
            extra_bytes += size
            remaining -= size
        return extra, extra_bytes

    def _compact_shard(self, shard: str,
                       survivors: List[Tuple[Tuple[str, str], Any,
                                             float]]) -> None:
        path = self.shard_path(shard)
        if not survivors:
            with self._lock("shard-" + shard):
                if os.path.exists(path):
                    os.unlink(path)
            return
        lines = [
            json.dumps(["put", slot[0], slot[1], value, atime],
                       separators=(",", ":"))
            for slot, value, atime in survivors
        ]
        text = "\n".join(lines) + "\n"
        with self._lock("shard-" + shard):
            fd, temp_path = tempfile.mkstemp(
                dir=self.root, prefix=".shard-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, path)
            except BaseException:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
                raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Exact store inventory (loads every shard): per-namespace and
        per-shard entry counts plus on-disk bytes."""
        counts = {ns: 0 for ns in self.namespaces}
        shard_entries = {}
        for shard in _SHARD_IDS:
            values, _atimes, _sizes = self._replay_meta(shard)
            shard_entries[shard] = len(values)
            for namespace, _key in values:
                counts[namespace] += 1
        return {
            "directory": self.directory,
            "entries": counts,
            "total_entries": sum(counts.values()),
            "bytes": self.total_bytes(),
            "shards": {
                shard: {"entries": shard_entries[shard], "bytes": size}
                for shard, size in self.shard_sizes().items()
                if shard_entries[shard] or size
            },
        }
