"""Persistent warm worker pool with an epoch-stamped cache delta protocol.

:class:`WorkerPool` owns a ``multiprocessing`` pool that *survives across*
``run_jobs`` calls.  That changes the economics of the parallel sweep
path in three ways:

* **Warm per-worker state.**  With the fork start method each worker
  keeps its module-level caches between dispatches — the memoized
  architecture/energy-table builds (``PhotonicSystem.build_cached``), the
  ``SearchContext`` FIFO, and its copy of the evaluation cache — so a
  second dispatch pays none of the first one's warm-up.

* **Delta cache sync instead of full snapshots.**  The first dispatch
  (at spawn) ships the cache image once, stamped with the cache's
  ``(epoch, per-namespace length)`` marker — or, when the cache sits on
  a sharded directory store, just the store reference plus the parent's
  unflushed additions: the workers fault warm entries in from the
  shared store lazily, so seeding cost no longer scales with the total
  cache size either.  Entries are append-only
  within an epoch and dicts preserve insertion order, so every later
  dispatch ships only the entries *beyond* the oldest marker any worker
  could be holding — O(new entries), not O(cache).  ``cache.clear()``
  bumps the epoch, and switching ``run_jobs`` to a different cache
  object changes the timeline entirely; either way an additive delta
  cannot express the change, so the pool ships a token-stamped
  full-snapshot *reset* in-band with the next dispatch — the worker
  processes themselves stay alive, keeping their warm module state.

* **A slim wire format.**  Planner batches are re-encoded before
  pickling: configurations and layers are interned into per-payload
  tables referenced by index, sub-tasks travel as ``(kind, layer_index,
  flags)`` triples, and result messages pack the homogeneous scalar
  metrics of layer evaluations into typed :mod:`array` columns.  The
  decoded entries are reconstructed field-for-field in the canonical
  codec order, so cached values remain bit-identical to serially
  computed ones.

Interrupt safety: any exception while a dispatch is in flight — a
``KeyboardInterrupt`` included — terminates and joins the workers before
propagating, so no orphaned processes linger.  The :class:`WorkerPool`
object itself stays usable; the next dispatch simply respawns.

Worker supervision: while blocked waiting for results the pool polls
the dispatch with a short timeout and checks its worker processes'
liveness (``Process.is_alive`` plus a pid-set comparison against the
dispatch-time roster, which also catches workers the ``multiprocessing``
machinery already silently replaced).  A worker that died — SIGKILL,
``os._exit``, OOM — costs one batch retry, not a hung sweep: the pool
tears the process group down, respawns workers re-seeded from the
current cache (shared store or snapshot — including everything already
merged from answered batches), and re-dispatches only the unanswered
payloads with a bumped attempt number.  Marker bookkeeping forgets dead
pids (``_sync_payload`` prunes the ack map to live workers each
dispatch), so deltas never grow unboundedly waiting for acks that can't
come.  Repeated crashes on the same payloads raise
:class:`~repro.exceptions.WorkerCrashError` after ``max_respawns``
recoveries.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from array import array
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import obs
from repro.engine import faults
from repro.engine.cache import EvaluationCache, SystemStore, store_entry_key
from repro.exceptions import WorkerCrashError
from repro.workloads.layer import ConvLayer

_Marker = Tuple[int, Tuple[int, ...]]

#: Per-task guard shipped inside dispatch payloads:
#: ``(task_timeout_seconds, capture_errors, fault_plan_wire)`` — or
#: ``None`` for the unguarded fast path (no try/except per task at all).
_Guard = Optional[Tuple[Optional[float], bool, Optional[list]]]

# ---------------------------------------------------------------------------
# Wire format: slim batch payloads
# ---------------------------------------------------------------------------

_KIND_CODES = {"mapper": 0, "layer": 1}
_KIND_NAMES = ("mapper", "layer")

# ConvLayer wire order — mirrors repro.engine.codec.layer_to_dict, the
# canonical field order every serialized layer uses.
_LAYER_FIELDS = ("name", "n", "m", "c", "p", "q", "r", "s",
                 "stride_h", "stride_w", "groups",
                 "bits_per_weight", "bits_per_activation", "kind")


def _encode_batch(batch: Iterable[Any]) -> Tuple[list, list, list]:
    """Re-encode one planner batch for the wire.

    Chunks arrive as :class:`~repro.engine.planner.TaskChunk` objects
    whose tasks each carry a full :class:`ConvLayer`; on a typical grid
    every layer appears in several tasks (one mapper search plus each
    DRAM-flag variant), so interning layers and configurations into
    per-payload tables referenced by index cuts the pickled size several
    fold.  Layers travel as bare field tuples, not dataclass pickles.
    """
    contexts: list = []
    layer_specs: list = []
    layer_index: Dict[int, int] = {}
    segments: list = []
    for chunk in batch:
        context_index = len(contexts)
        contexts.append((chunk.system, chunk.config, chunk.system_key))
        codes = []
        for task in chunk.tasks:
            layer = task.layer
            index = layer_index.get(id(layer))
            if index is None:
                index = len(layer_specs)
                layer_index[id(layer)] = index
                layer_specs.append(
                    tuple(getattr(layer, name) for name in _LAYER_FIELDS))
            flags = (task.use_mapper
                     | task.input_from_dram << 1
                     | task.output_to_dram << 2)
            codes.append((_KIND_CODES[task.kind], index, flags))
        segments.append((context_index, codes))
    return contexts, layer_specs, segments


def _decode_layers(layer_specs: list) -> List[ConvLayer]:
    return [ConvLayer(**dict(zip(_LAYER_FIELDS, spec)))
            for spec in layer_specs]


# ---------------------------------------------------------------------------
# Wire format: typed-column result packing
# ---------------------------------------------------------------------------

# Homogeneous scalars of every "layers" cache entry (one per evaluated
# layer — by far the most numerous result objects on the wire).  The
# remaining fields are heterogeneous (nested dicts, optionals) and ride
# in a residual tuple.  _ENTRY_ORDER is the canonical codec field order
# (repro.engine.codec.layer_evaluation_to_dict); decoding rebuilds each
# dict in exactly that order so a pool-computed cache image is
# indistinguishable from a serial one.
_INT_COLUMNS = ("cycles", "real_macs", "padded_macs", "peak_parallelism")
_RESIDUAL_FIELDS = ("layer", "energy", "occupancy_bits",
                    "compute_cycles", "bandwidth_bound_level")
_ENTRY_ORDER = ("layer", "energy", "cycles", "real_macs", "padded_macs",
                "peak_parallelism", "clock_ghz", "occupancy_bits",
                "compute_cycles", "bandwidth_bound_level")
_ENTRY_FIELD_SET = frozenset(_ENTRY_ORDER)
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def _packable(entry: Any) -> bool:
    if not isinstance(entry, dict) or entry.keys() != _ENTRY_FIELD_SET:
        return False
    for name in _INT_COLUMNS:
        value = entry[name]
        if type(value) is not int or not _INT64_MIN <= value <= _INT64_MAX:
            return False
    return type(entry["clock_ghz"]) is float


def _pack_added(added: Dict[str, Dict[str, Any]]) -> Dict[str, tuple]:
    """Pack a worker's new cache entries for the return trip.

    Layer-evaluation entries become four parallel structures: the key
    list, one ``array('q')`` holding the int columns row-major, one
    ``array('d')`` of clocks, and a residual tuple per entry.  Typed
    arrays pickle as flat byte buffers — no per-element object headers —
    and round-trip int64/float64 values exactly.  Anything that doesn't
    match the schema passes through raw.
    """
    packed: Dict[str, tuple] = {}
    for namespace, entries in added.items():
        if namespace != "layers" or not entries:
            if entries:
                packed[namespace] = ("raw", entries)
            continue
        keys, ints, clocks, residuals, raw = [], array("q"), array("d"), [], {}
        for key, entry in entries.items():
            if not _packable(entry):
                raw[key] = entry
                continue
            keys.append(key)
            for name in _INT_COLUMNS:
                ints.append(entry[name])
            clocks.append(entry["clock_ghz"])
            residuals.append(tuple(entry[name] for name in _RESIDUAL_FIELDS))
        packed[namespace] = ("cols", keys, ints, clocks, residuals, raw)
    return packed


def _unpack_added(packed: Dict[str, tuple]) -> Dict[str, Dict[str, Any]]:
    added: Dict[str, Dict[str, Any]] = {}
    for namespace, payload in packed.items():
        if payload[0] == "raw":
            added[namespace] = payload[1]
            continue
        _tag, keys, ints, clocks, residuals, raw = payload
        entries: Dict[str, Any] = {}
        width = len(_INT_COLUMNS)
        for row, key in enumerate(keys):
            layer, energy, occupancy, compute_cycles, bound = residuals[row]
            base = row * width
            entries[key] = {
                "layer": layer,
                "energy": energy,
                "cycles": ints[base],
                "real_macs": ints[base + 1],
                "padded_macs": ints[base + 2],
                "peak_parallelism": ints[base + 3],
                "clock_ghz": clocks[row],
                "occupancy_bits": occupancy,
                "compute_cycles": compute_cycles,
                "bandwidth_bound_level": bound,
            }
        entries.update(raw)
        added[namespace] = entries
    return added


# ---------------------------------------------------------------------------
# Worker-process side
# ---------------------------------------------------------------------------

_WORKER_CACHE: Optional[EvaluationCache] = None
_WORKER_MARK: Optional[_Marker] = None
_WORKER_TOKEN: int = 0
_WORKER_OBS: Optional[Tuple[float, int]] = None


def _seed_cache(seed: Optional[tuple]) -> Optional[EvaluationCache]:
    """Build a worker cache from a tagged seed payload.

    ``("image", snapshot)`` is the classic full pickled image;
    ``("store", (directory, pending))`` opens the shared sharded store
    lazily — the worker reads warm entries shard-by-shard straight from
    disk as it needs them and only the parent's unflushed additions
    rode the wire.
    """
    if seed is None:
        return None
    kind, body = seed
    if kind == "store":
        return EvaluationCache.from_store_seed(body)
    return EvaluationCache.from_snapshot(body)


def _init_pool_worker(seed: Optional[tuple],
                      marker: Optional[_Marker], token: int) -> None:
    """Pool initializer: seed the floor snapshot, silence inherited
    tracing (payloads re-activate it per dispatch as needed)."""
    global _WORKER_CACHE, _WORKER_MARK, _WORKER_TOKEN, _WORKER_OBS
    _WORKER_CACHE = _seed_cache(seed)
    _WORKER_MARK = marker
    _WORKER_TOKEN = token
    _WORKER_OBS = None
    obs.deactivate()


def _sync_tracing(config: Optional[Tuple[float, int]]) -> None:
    """Match this worker's tracer to the dispatch's: a persistent pool
    can serve traced and untraced dispatches back to back, so the lane
    follows the payload, not the spawn."""
    global _WORKER_OBS
    if config == _WORKER_OBS:
        return
    if config is None:
        obs.deactivate()
    else:
        obs.activate(obs.Tracer.for_worker(config))
    _WORKER_OBS = config


def _apply_sync(sync: Optional[tuple]) -> EvaluationCache:
    """Fold the dispatch's cache sync into the warm worker cache.

    Payloads are tagged: ``("reset", token, marker, seed)`` replaces
    the cache wholesale (the parent switched caches or bumped the epoch
    — the processes stay alive, only the cached data is swapped; the
    seed is an image or store reference, see :func:`_seed_cache`), while
    ``("delta", token, marker, delta)`` folds in new entries.  The token
    identifies the cache timeline: a reset is applied once per token (a
    worker serving two payloads of one dispatch must not wipe its first
    batch's entries), and a delta whose token doesn't match the worker's
    falls back to an empty cache — strictly safe, since worker caches
    only avoid recomputation and ``pop_added`` re-ships anything
    computed fresh.
    """
    global _WORKER_CACHE, _WORKER_MARK, _WORKER_TOKEN
    if sync is None:
        return (_WORKER_CACHE if _WORKER_CACHE is not None
                else EvaluationCache())
    kind, token, target = sync[0], sync[1], sync[2]
    if kind == "reset":
        if token != _WORKER_TOKEN or _WORKER_CACHE is None:
            _WORKER_CACHE = _seed_cache(sync[3]) or EvaluationCache()
            _WORKER_TOKEN = token
            _WORKER_MARK = target
        return _WORKER_CACHE
    delta = sync[3]
    if token != _WORKER_TOKEN or _WORKER_CACHE is None:
        # Missed a reset for this timeline (or never seeded): a delta
        # alone can't reconstruct it, so start empty.
        _WORKER_CACHE = EvaluationCache()
        _WORKER_TOKEN = token
    if delta:
        # adopt(), not merge(): parent-owned entries must not be
        # re-shipped back with this worker's own results.
        _WORKER_CACHE.adopt(delta)
    _WORKER_MARK = target
    return _WORKER_CACHE


def _run_wire_batch(payload):
    """Execute one slim-encoded planner batch; ship packed results back.

    The same contract as the legacy ``_run_batch_in_worker``: each
    segment's tasks share one (memoized) system build and one store
    scope, and the whole batch answers in a single message.

    ``guard`` (see :data:`_Guard`) arms the failure-policy machinery:
    each task runs under the watchdog deadline and the fault-injection
    hook, and — when ``capture`` is set — a task exception is recorded
    against its store-entry key in the reply's ``failed`` map instead of
    aborting the dispatch, so the surviving tasks of the batch still
    land in the cache.  ``guard=None`` is the zero-overhead fast path.
    """
    from repro.engine.jobs import system_registry
    from repro.systems.base import SubTask

    index, sync, obs_config, wire, guard, attempt = payload
    _sync_tracing(obs_config)
    cache = _apply_sync(sync)
    contexts, layer_specs, segments = wire
    layers = _decode_layers(layer_specs)
    registry = system_registry()
    failed: Dict[str, Tuple[str, str]] = {}
    if guard is None:
        timeout, capture, plan = None, False, None
    else:
        timeout, capture, plan_wire = guard
        plan = faults.FaultPlan.from_wire(plan_wire)
    with obs.span("worker.batch", segments=len(segments),
                  tasks=sum(len(codes) for _index, codes in segments)):
        for context_index, codes in segments:
            system_name, config, system_key = contexts[context_index]
            entry = registry[system_name]
            with obs.span("system.build", system=system_name):
                system = entry.system_type(
                    config, store=SystemStore(cache, system_key))
            for kind_code, layer_id, flags in codes:
                task = SubTask(
                    kind=_KIND_NAMES[kind_code],
                    layer=layers[layer_id],
                    use_mapper=bool(flags & 1),
                    input_from_dram=bool(flags & 2),
                    output_to_dram=bool(flags & 4))
                if guard is None:
                    system.compute_sub_task(task)
                    continue
                try:
                    with faults.task_deadline(timeout):
                        if plan is not None:
                            plan.check(faults.sub_task_key(system_name,
                                                           task), attempt)
                        system.compute_sub_task(task)
                except Exception as error:
                    if not capture:
                        raise
                    key = store_entry_key(system_key,
                                          system.sub_task_store_key(task))
                    failed[key] = (type(error).__name__, str(error))
    added = cache.pop_added()
    stats = cache.stats_snapshot()
    cache.reset_stats()
    tracer = obs.current_tracer()
    events = tracer.drain() if tracer.enabled else None
    return (index, _pack_added(added), stats, events,
            os.getpid(), _WORKER_MARK, failed)


def _pool_context():
    """Fork where available (cheap, inherits warm module state)."""
    if sys.platform != "win32":
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover
            pass
    return multiprocessing.get_context()  # pragma: no cover


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class PoolStats:
    """Wire-traffic counters for one :class:`WorkerPool`.

    ``snapshot_entries`` counts entries shipped via full snapshots (at
    spawn or as in-band resets); ``delta_entries`` counts entries
    shipped as warm deltas — on a healthy reused pool the latter stays
    small while the former is paid once per cache timeline.
    ``store_seeds`` counts seeds that shipped a shared-store reference
    instead of a pickled image (directory caches: workers read warm
    entries from disk themselves, so ``snapshot_entries`` then counts
    only the unflushed additions that rode along).  ``epoch_resets``
    counts timeline changes (epoch bump or cache switch) answered by an
    in-band reseed; the workers stay alive.
    """

    spawns: int = 0
    dispatches: int = 0
    batches: int = 0
    snapshot_entries: int = 0
    store_seeds: int = 0
    delta_syncs: int = 0
    delta_entries: int = 0
    epoch_resets: int = 0
    #: Supervision recoveries: a worker process died mid-dispatch and
    #: the pool respawned + re-dispatched the unanswered batches.
    respawns: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "spawns": self.spawns,
            "dispatches": self.dispatches,
            "batches": self.batches,
            "snapshot_entries": self.snapshot_entries,
            "store_seeds": self.store_seeds,
            "delta_syncs": self.delta_syncs,
            "delta_entries": self.delta_entries,
            "epoch_resets": self.epoch_resets,
            "respawns": self.respawns,
        }


@dataclass
class _CacheSync:
    """What the pool knows about its workers' cache copies."""

    cache_id: int
    epoch: int
    floor: _Marker                      # shipped to every worker at spawn
    marks: Dict[int, _Marker]           # pid -> last acknowledged marker
    token: int                          # cache-timeline id the workers hold
    #: True while some worker may still hold the previous timeline:
    #: dispatches ship full-snapshot resets until every pid has
    #: acknowledged the new token.
    resetting: bool = False


class WorkerPool:
    """A process pool that persists across ``run_jobs`` calls.

    Use as a context manager (or call :meth:`close` yourself)::

        with WorkerPool(workers=4) as pool:
            first = run_jobs(jobs_a, cache=cache, pool=pool)
            second = run_jobs(jobs_b, cache=cache, pool=pool)  # warm

    Workers spawn lazily on the first dispatch and are seeded with the
    cache's full image once; later dispatches ship only the entries
    added since (see the module docstring for the marker protocol).
    Results are bit-identical to serial execution — the pool only moves
    cache entries, never recomputes them differently.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.stats = PoolStats()
        #: Result-wait poll interval (seconds): how often the
        #: supervision loop wakes to check worker liveness while
        #: blocked on a dispatch.
        self.supervision_interval = 0.25
        #: Crash-recovery budget *per dispatch*: more worker deaths than
        #: this on one batch set raises WorkerCrashError instead of
        #: respawning forever (a deterministic crasher would loop).
        self.max_respawns = 3
        self._pool = None
        self._pool_size = 0
        self._sync: Optional[_CacheSync] = None
        self._token = 0          # monotonic; never reused across resets

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while worker processes are alive."""
        return self._pool is not None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Terminate and join the workers (idempotent).

        The pool object remains usable: the next dispatch respawns with
        a fresh snapshot floor.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_size = 0
            self._sync = None

    def _ensure_workers(self, cache: Optional[EvaluationCache],
                        pending: int) -> None:
        if self._pool is not None and self._sync is not None:
            stale = (cache is None
                     or self._sync.cache_id != id(cache)
                     or self._sync.epoch != cache.epoch)
            if stale:
                # The warm copies describe data that no longer exists
                # (epoch bump) or a different cache object entirely; an
                # additive delta can't fix either.  Keep the processes
                # alive — their module-level memos (architecture builds,
                # search contexts) are still good — and ship a
                # full-snapshot reset in-band with the next dispatch.
                self.stats.epoch_resets += 1
                if cache is None:
                    # Nothing to reseed from; drop the warm copies with
                    # the processes.
                    self.close()
                else:
                    self._token += 1
                    self._sync = _CacheSync(
                        cache_id=id(cache), epoch=cache.epoch,
                        floor=cache.sync_marker(), marks={},
                        token=self._token, resetting=True)
        if self._pool is not None:
            return
        size = max(1, min(self.workers, pending,
                          multiprocessing.cpu_count() or self.workers))
        if cache is not None:
            seed = self._seed_payload(cache)
            marker = cache.sync_marker()
        else:
            seed, marker = None, None
        with obs.span("executor.pool_spawn", workers=size):
            self._pool = _pool_context().Pool(
                size, initializer=_init_pool_worker,
                initargs=(seed, marker, self._token))
        self._pool_size = size
        self.stats.spawns += 1
        if cache is not None:
            self._sync = _CacheSync(cache_id=id(cache), epoch=cache.epoch,
                                    floor=marker, marks={},
                                    token=self._token)
        else:
            self._sync = None

    def _seed_payload(self, cache: EvaluationCache) -> tuple:
        """The tagged worker seed (see :func:`_seed_cache`).

        Directory caches ship a store reference plus only the unflushed
        additions — the workers fault warm entries in from the shared
        sharded store themselves; everything else ships the full
        in-memory image (sans the whole-job ``results`` namespace,
        which workers never read).
        """
        store_seed = cache.store_seed()
        if store_seed is not None:
            self.stats.store_seeds += 1
            self.stats.snapshot_entries += sum(
                len(values) for values in store_seed[1].values())
            return ("store", store_seed)
        with obs.span("executor.snapshot"):
            snapshot = cache.snapshot()
            snapshot["results"] = {}
        self.stats.snapshot_entries += sum(
            len(snapshot[ns]) for ns in snapshot)
        return ("image", snapshot)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _worker_pids(self) -> Optional[set]:
        """The live pool's worker pids (None when nothing is spawned).

        Reads the ``multiprocessing.Pool`` internals — stable across
        every CPython this repo supports — because the public API offers
        no roster; the supervision loop needs one to tell a lost result
        from a slow one.
        """
        if self._pool is None:
            return None
        processes = getattr(self._pool, "_pool", None)
        if processes is None:  # pragma: no cover - interpreter variance
            return None
        return {process.pid for process in processes}

    def _roster_changed(self, roster: set) -> bool:
        """True when any dispatch-time worker died or was replaced.

        ``multiprocessing.Pool`` silently repopulates dead workers, so a
        pid-set comparison catches deaths the ``is_alive`` sweep would
        miss (the corpse is already reaped and replaced); the in-flight
        task of a replaced worker is lost either way.
        """
        processes = getattr(self._pool, "_pool", None) \
            if self._pool is not None else None
        if processes is None:  # pragma: no cover - interpreter variance
            return True
        if {process.pid for process in processes} != roster:
            return True
        return any(not process.is_alive() for process in processes)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _sync_payload(self, cache: Optional[EvaluationCache]):
        sync = self._sync
        if cache is None or sync is None:
            return None
        # Forget dead pids: a mark held for a worker that no longer
        # exists would pin the delta base at its last ack forever (the
        # ack that moves it past can never come), growing every later
        # delta unboundedly.
        alive = self._worker_pids()
        if alive is not None:
            for pid in [pid for pid in sync.marks if pid not in alive]:
                del sync.marks[pid]
        current = cache.sync_marker()
        if sync.resetting:
            # Some worker may still hold the previous timeline: ship a
            # full seed (image, or store reference for directory caches)
            # until every pid has acknowledged the new token.  The
            # worker-side token check makes repeated resets idempotent
            # within a dispatch.
            sync.floor = current
            return ("reset", sync.token, current,
                    self._seed_payload(cache))
        # The base is the oldest state any worker can be in: its last
        # acknowledged marker, or the spawn floor if it has never
        # answered.  Markers on one cache timeline are totally ordered,
        # but take the per-namespace minimum anyway — it is correct even
        # for incomparable markers.
        known = list(sync.marks.values())
        if len(sync.marks) < self._pool_size or not known:
            known.append(sync.floor)
        base = (sync.epoch,
                tuple(min(lengths) for lengths
                      in zip(*(mark[1] for mark in known))))
        delta = cache.entries_since(base)
        delta.pop("results", None)
        self.stats.delta_syncs += 1
        self.stats.delta_entries += sum(len(v) for v in delta.values())
        return ("delta", sync.token, current, delta)

    def run_batches(
        self,
        batches: List[Any],
        cache: Optional[EvaluationCache],
        obs_config: Optional[Tuple[float, int]] = None,
        guard: _Guard = None,
        attempt: int = 0,
    ) -> Iterator[Tuple[int, Dict[str, Dict[str, Any]],
                        Dict[str, Dict[str, int]], Optional[dict],
                        Dict[str, Tuple[str, str]]]]:
        """Dispatch planner batches; yield ``(index, added, stats,
        trace_events, failed_keys)`` as each answers (completion order).

        The result wait is supervised: a worker process that dies
        mid-dispatch (see the module docstring) is detected within
        ``supervision_interval``, the pool respawns re-seeded from the
        *current* cache — answered batches included — and only the
        unanswered payloads are re-dispatched, with the attempt number
        bumped so deterministic fault-injection plans don't re-fire.

        ``guard``/``attempt`` ship the failure-policy watchdog and
        fault-injection context to the workers (see :data:`_Guard`);
        ``failed_keys`` maps a failed task's store-entry key to its
        ``(error type, message)`` when the guard captures errors, and is
        empty otherwise.

        Any exception raised while results are in flight — including a
        ``KeyboardInterrupt`` or the consumer abandoning the iterator —
        closes the pool before propagating, so no orphaned workers
        survive a cancelled dispatch.  The pool respawns on next use.
        """
        pending = {index: _encode_batch(batch)
                   for index, batch in enumerate(batches)}
        self.stats.dispatches += 1
        self.stats.batches += len(pending)
        respawns = 0
        try:
            while pending:
                self._ensure_workers(cache, len(pending))
                sync = self._sync_payload(cache)
                payloads = [(index, sync, obs_config, wire, guard,
                             attempt + respawns)
                            for index, wire in pending.items()]
                roster = self._worker_pids() or set()
                replies = self._pool.imap_unordered(_run_wire_batch,
                                                    payloads, chunksize=1)
                while True:
                    try:
                        reply = replies.next(
                            timeout=self.supervision_interval)
                    except multiprocessing.TimeoutError:
                        if self._roster_changed(roster):
                            break  # a worker died: recover below
                        continue
                    except StopIteration:
                        break
                    index, packed, stats, events, pid, mark, failed = reply
                    if self._sync is not None and mark is not None:
                        self._sync.marks[pid] = mark
                        if (self._sync.resetting
                                and len(self._sync.marks)
                                >= self._pool_size):
                            self._sync.resetting = False
                    pending.pop(index, None)
                    yield index, _unpack_added(packed), stats, events, \
                        failed
                if not pending:
                    break
                # Batches went unanswered: a worker crashed (or the
                # dispatch drained short, which re-dispatching also
                # fixes).  Kill the survivors — their sibling's death
                # may have wedged the shared result queue — respawn
                # re-seeded from the current cache, and retry what's
                # left.  One SIGKILL costs one batch retry, not a hang.
                respawns += 1
                self.stats.respawns += 1
                if respawns > self.max_respawns:
                    raise WorkerCrashError(
                        f"worker processes died {respawns} times on one "
                        f"dispatch ({len(pending)} batches unanswered); "
                        f"giving up — inspect the batch for a "
                        f"crash-inducing task")
                with obs.span("pool.respawn", round=respawns,
                              pending=len(pending)):
                    self.close()
        except BaseException:
            # A half-finished dispatch leaves workers in an unknown
            # state; kill them rather than risk stale answers later.
            self.close()
            raise
