"""Hierarchical span tracing with near-zero disabled cost.

The observability layer answers one question the engine could not before:
*where does the wall-clock go?*  A :class:`Tracer` records **spans** —
named, nested, monotonic-clock timed regions opened with the
``with tracer.span("phase", key=value):`` context manager — plus instant
events and cheap aggregate tick counters for regions too hot to record
individually (e.g. the ~µs-scale analyzer inner loop).  A finished run
snapshots into a :class:`Trace`, which renders three ways: Chrome/Perfetto
``traceEvents`` JSON (:meth:`Trace.to_chrome_json`), a per-phase summary
with self-time attribution (:meth:`Trace.summary`), and the ASCII table
in :mod:`repro.report.trace`.

Instrumented library code never takes a tracer argument.  It calls the
module-level :func:`span` / :func:`tick` helpers, which dispatch to the
process's *active* tracer — :data:`NULL_TRACER` by default, whose spans
are a shared no-op context manager, so an uninstrumented run records
nothing and pays only a global read and a dict build per call site.
:func:`tracing` activates a real tracer for a ``with`` block (the CLI's
``--trace`` and :meth:`repro.api.Study.run`'s ``trace=`` do exactly
this).

Worker processes are handled by the engine's one-message-per-batch
protocol: the parent ships :meth:`Tracer.worker_config` (its clock epoch
and pid) to pool initializers, each worker activates a
:meth:`Tracer.for_worker` tracer recording against the shared epoch, and
the events travel back piggybacked on the existing result messages where
:meth:`Tracer.absorb` merges them into one timeline.  Every event carries
the recording process's pid as its ``tid``, so workers appear as distinct
lanes in Chrome/Perfetto.  ``time.perf_counter`` is CLOCK_MONOTONIC on
the POSIX platforms where the pool forks, so parent and worker timestamps
share a timebase; on platforms where they might not, lanes stay
internally consistent and only cross-lane alignment degrades.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "current_tracer",
    "deactivate",
    "span",
    "tick",
    "tracing",
    "tracing_enabled",
]


class Span:
    """One open region of a :class:`Tracer`'s timeline.

    Returned by :meth:`Tracer.span` and used as a context manager; while
    open, :meth:`set` attaches attributes and :meth:`add` accumulates
    counters, both landing in the recorded event's ``args``.
    """

    __slots__ = ("_tracer", "name", "args", "_start", "_child_us")

    def __init__(self, tracer: "Tracer", name: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self._child_us = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to the span (overwrites)."""
        self.args[key] = value

    def add(self, key: str, amount: Union[int, float] = 1) -> None:
        """Accumulate a counter attribute on the span."""
        self.args[key] = self.args.get(key, 0) + amount

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack
        stack.pop()
        duration_us = (end - self._start) * 1e6
        parent = stack[-1] if stack else None
        if parent is not None:
            parent._child_us += duration_us
        tracer._record(self, duration_us, parent)
        return False


class _NullSpan:
    """The shared do-nothing span of :class:`NullTracer`.

    One module-level instance serves every disabled call site, so a
    disabled ``with span(...)`` allocates nothing and records nothing.
    """

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, key: str, amount: Union[int, float] = 1) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``enabled`` is False so call sites with real per-call cost (timing a
    hot inner loop for :meth:`tick`) can skip the measurement entirely.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attrs: Any) -> None:
        pass

    def tick(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def trace(self) -> "Trace":
        return Trace([])


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans, instants, and aggregate ticks for one process.

    ``epoch`` anchors timestamps (``perf_counter`` units); worker tracers
    are constructed with the parent's epoch (:meth:`for_worker`) so all
    lanes share one timeline.  Not thread-safe: the engine parallelizes
    with processes, each owning its tracer.
    """

    enabled = True

    def __init__(self, epoch: Optional[float] = None,
                 pid: Optional[int] = None,
                 tid: Optional[int] = None) -> None:
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.pid = os.getpid() if pid is None else pid
        self.tid = os.getpid() if tid is None else tid
        self._stack: List[Span] = []
        self._events: List[Dict[str, Any]] = []
        #: name -> [count, total_us]; the cheap path for µs-scale regions.
        self._aggregates: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """An open span; use as ``with tracer.span("name", k=v) as sp:``."""
        return Span(self, name, attrs)

    def instant(self, name: str, **attrs: Any) -> None:
        """A zero-duration marker event at the current time."""
        self._events.append({
            "name": name,
            "ph": "i",
            "ts": (time.perf_counter() - self.epoch) * 1e6,
            "dur": 0.0,
            "self": 0.0,
            "pid": self.pid,
            "tid": self.tid,
            "parent": self._stack[-1].name if self._stack else None,
            "args": dict(attrs),
        })

    def tick(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold ``seconds`` into the aggregate bucket ``name``.

        For regions called thousands of times per span (the analyzer's
        inner pass): one dict update instead of one event each, so
        enabling tracing never floods the timeline.
        """
        bucket = self._aggregates.get(name)
        if bucket is None:
            bucket = [0, 0.0]
            self._aggregates[name] = bucket
        bucket[0] += count
        bucket[1] += seconds * 1e6

    def _record(self, span: Span, duration_us: float,
                parent: Optional[Span]) -> None:
        self._events.append({
            "name": span.name,
            "ph": "X",
            "ts": (time.perf_counter() - self.epoch) * 1e6 - duration_us,
            "dur": duration_us,
            "self": max(0.0, duration_us - span._child_us),
            "pid": self.pid,
            "tid": self.tid,
            "parent": parent.name if parent is not None else None,
            "args": span.args,
        })

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------
    def worker_config(self) -> Tuple[float, int]:
        """What a pool initializer needs to open a same-timeline lane."""
        return (self.epoch, self.pid)

    @classmethod
    def for_worker(cls, config: Tuple[float, int]) -> "Tracer":
        """A worker-side tracer on the parent's timeline: shared epoch
        and pid, the worker's own pid as the lane (``tid``)."""
        epoch, parent_pid = config
        return cls(epoch=epoch, pid=parent_pid, tid=os.getpid())

    def drain(self) -> Dict[str, Any]:
        """Ship-and-reset: events and aggregates recorded since the last
        drain, as one JSON-compatible payload (piggybacked on the
        engine's per-batch result messages)."""
        payload = {
            "events": self._events,
            "aggregates": {name: list(bucket)
                           for name, bucket in self._aggregates.items()},
        }
        self._events = []
        self._aggregates = {}
        return payload

    def absorb(self, payload: Optional[Dict[str, Any]]) -> None:
        """Merge a :meth:`drain` payload (from a worker) into this
        timeline."""
        if not payload:
            return
        self._events.extend(payload.get("events", ()))
        for name, (count, total_us) in payload.get("aggregates",
                                                   {}).items():
            bucket = self._aggregates.get(name)
            if bucket is None:
                self._aggregates[name] = [count, total_us]
            else:
                bucket[0] += count
                bucket[1] += total_us

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def trace(self) -> "Trace":
        """An immutable snapshot of everything recorded so far."""
        return Trace(list(self._events),
                     aggregates={name: tuple(bucket) for name, bucket
                                 in self._aggregates.items()},
                     main_tid=self.tid)


class Trace:
    """A finished timeline: sorted span events plus aggregate counters.

    Events are ordered deterministically — by start time, then lane,
    then longest-first, then name — so merges arriving in any worker
    completion order produce identical exports (regression-tested).
    """

    def __init__(self, events: List[Dict[str, Any]],
                 aggregates: Optional[Dict[str, Tuple[float, float]]] = None,
                 main_tid: Optional[int] = None) -> None:
        self.events = sorted(
            events,
            key=lambda event: (event["ts"], str(event["tid"]),
                               -event["dur"], event["name"]))
        self.aggregates = dict(aggregates or {})
        self.main_tid = main_tid

    def __len__(self) -> int:
        return len(self.events)

    def span_names(self) -> Set[str]:
        """Names of every recorded span/instant event."""
        return {event["name"] for event in self.events}

    def lanes(self) -> List[Tuple[int, int]]:
        """Distinct (pid, tid) lanes, main lane first then sorted."""
        seen = {(event["pid"], event["tid"]) for event in self.events}
        return sorted(seen, key=lambda lane: (lane[1] != self.main_tid,
                                              str(lane)))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Per-phase totals with self-time attribution.

        ``spans`` maps each span name to its call count, total inclusive
        time, and *self* time (inclusive minus direct children — the
        wall-clock the phase itself is responsible for).  ``wall_s`` is
        the timeline extent; ``aggregates`` carries the tick counters.
        """
        spans: Dict[str, Dict[str, float]] = {}
        start = end = None
        for event in self.events:
            row = spans.setdefault(event["name"],
                                   {"count": 0, "total_s": 0.0,
                                    "self_s": 0.0})
            row["count"] += 1
            row["total_s"] += event["dur"] / 1e6
            row["self_s"] += event["self"] / 1e6
            start = event["ts"] if start is None else min(start, event["ts"])
            stop = event["ts"] + event["dur"]
            end = stop if end is None else max(end, stop)
        wall_s = ((end - start) / 1e6) if self.events else 0.0
        return {
            "wall_s": wall_s,
            "lanes": len(self.lanes()),
            "events": len(self.events),
            "spans": spans,
            "aggregates": {
                name: {"count": int(count), "total_s": total_us / 1e6}
                for name, (count, total_us) in sorted(self.aggregates.items())
            },
        }

    def main_lane_coverage(self) -> float:
        """Fraction of the main lane's extent covered by named spans.

        Self-times on one lane tile its top-level spans exactly, so this
        is (attributed time) / (first-to-last span extent) for the parent
        process — the acceptance metric for "named spans account for the
        wall-clock".
        """
        main = [event for event in self.events
                if event["tid"] == self.main_tid]
        if not main:
            return 0.0
        start = min(event["ts"] for event in main)
        end = max(event["ts"] + event["dur"] for event in main)
        extent = end - start
        if extent <= 0.0:
            return 0.0
        attributed = sum(event["self"] for event in main)
        return min(1.0, attributed / extent)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        """Chrome/Perfetto ``traceEvents`` JSON (open via ui.perfetto.dev
        or chrome://tracing)."""
        from repro.obs.chrome import chrome_trace_dict

        return json.dumps(chrome_trace_dict(self), indent=indent)

    def save(self, path: str) -> str:
        """Write the Chrome JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_chrome_json())
            handle.write("\n")
        return path


# ---------------------------------------------------------------------------
# The active tracer
# ---------------------------------------------------------------------------

_ACTIVE: Union[Tracer, NullTracer] = NULL_TRACER


def current_tracer() -> Union[Tracer, NullTracer]:
    """The process's active tracer (:data:`NULL_TRACER` when disabled)."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE.enabled


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def deactivate() -> Union[Tracer, NullTracer]:
    """Restore the disabled state; returns the tracer that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate a tracer for a ``with`` block, restoring the previous
    active tracer (usually :data:`NULL_TRACER`) on exit::

        with tracing() as tracer:
            study.run(...)
        trace = tracer.trace()
    """
    global _ACTIVE
    previous = _ACTIVE
    installed = activate(tracer)
    try:
        yield installed
    finally:
        _ACTIVE = previous


def span(name: str, **attrs: Any):
    """A span on the active tracer (a shared no-op when disabled)."""
    return _ACTIVE.span(name, **attrs)


def tick(name: str, seconds: float, count: int = 1) -> None:
    """An aggregate tick on the active tracer (no-op when disabled)."""
    _ACTIVE.tick(name, seconds, count=count)
