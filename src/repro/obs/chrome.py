"""Chrome/Perfetto ``traceEvents`` export of a :class:`~repro.obs.Trace`.

The Trace Event Format (the JSON chrome://tracing and ui.perfetto.dev
load) wants a ``traceEvents`` array of objects each carrying ``name``,
``ph`` (phase: ``"X"`` complete event, ``"i"`` instant, ``"M"``
metadata), ``ts``/``dur`` in microseconds, and ``pid``/``tid`` lane
coordinates.  Every event this module emits carries all five required
keys (metadata included), so downstream validators can assert uniformly.

Lanes: all events share the recording session's pid (one process group
in the UI); each OS process records under its own ``tid``, named via
``thread_name`` metadata — ``main`` for the parent, ``worker-<pid>`` for
pool workers — and ordered main-first with ``thread_sort_index``.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Keys every exported event carries (the format's required set).
CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def chrome_trace_dict(trace) -> Dict[str, Any]:
    """The JSON-ready dict form of a :class:`~repro.obs.Trace`."""
    events: List[Dict[str, Any]] = []
    for index, (pid, tid) in enumerate(trace.lanes()):
        label = "main" if tid == trace.main_tid else f"worker-{tid}"
        events.append({
            "name": "thread_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": tid, "args": {"name": label},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": tid, "args": {"sort_index": index},
        })
    for event in trace.events:
        exported = {
            "name": event["name"],
            "cat": "repro",
            "ph": event["ph"],
            "ts": round(event["ts"], 3),
            "dur": round(event["dur"], 3),
            "pid": event["pid"],
            "tid": event["tid"],
        }
        if event["ph"] == "i":
            exported["s"] = "t"  # instant scope: thread
            del exported["dur"]
        if event["args"]:
            exported["args"] = event["args"]
        events.append(exported)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data: Any) -> List[Dict[str, Any]]:
    """Check ``data`` is a loadable trace; returns its event list.

    Raises :class:`ValueError` naming the first problem: used by the CI
    trace smoke and the tracer tests, and handy for scripts consuming
    ``--trace`` output.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("trace must be an object with a 'traceEvents' key")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be an array")
    for event in events:
        missing = [key for key in CHROME_REQUIRED_KEYS if key not in event]
        if missing:
            raise ValueError(
                f"trace event {event!r} is missing required keys {missing}")
    return events
