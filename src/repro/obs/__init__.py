"""repro.obs — tracing and metrics for the evaluation pipeline.

A hierarchical span tracer with worker-safe collection, wired through
the engine's hot path (``run_jobs`` phases, the sweep planner, pool
dispatch, cache load/store, mapper search, layer evaluation).  Disabled
— the default — it costs one global read per call site; enabled, it
attributes wall-clock to phases and exports Chrome/Perfetto traces.

Quickstart::

    from repro import obs

    with obs.tracing() as tracer:
        study.run(workers=4)
    trace = tracer.trace()
    print(trace.summary()["spans"]["run_jobs"])
    trace.save("trace.json")          # open in ui.perfetto.dev

Or from the CLI: ``repro sweep --trace trace.json --trace-summary``.

Instrumenting your own code::

    from repro import obs

    with obs.span("my.phase", items=len(work)) as sp:
        ...
        sp.add("processed")
"""

from repro.obs.chrome import (
    CHROME_REQUIRED_KEYS,
    chrome_trace_dict,
    validate_chrome_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Trace,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    span,
    tick,
    tracing,
    tracing_enabled,
)

__all__ = [
    "CHROME_REQUIRED_KEYS",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "activate",
    "chrome_trace_dict",
    "current_tracer",
    "deactivate",
    "span",
    "tick",
    "tracing",
    "tracing_enabled",
    "validate_chrome_trace",
]
