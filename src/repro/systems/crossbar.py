"""A weight-stationary photonic WDM crossbar accelerator.

The second full system modeled by this library (after Albireo),
representative of the microring weight-bank family the paper cites
(ADEPT-style electro-photonic accelerators, PCNNA/DEAP-class crossbars).
Modeling two systems with one component library is the paper's
"comparison between systems" use case.

Organization — ``tiles`` × (``rows`` × ``cols``) ring crossbars:

* **Weights** are converted *once per tile residency*: DRAM → global
  buffer → **DE/AE DAC** → an analog sample-and-hold **weight bank**
  holding ``rows x cols`` values that bias the rings while inputs stream.
  This is the weight-stationary contrast to Albireo's streamed weights:
  weight conversion energy amortizes over the whole pixel sweep instead
  of paying per MAC.
* **Inputs** stream every cycle: DAC → **AE/AO MZM** per row, and each
  row's light crosses all ``cols`` columns (optical broadcast along the
  row waveguide — the input-reuse fanout).
* **Outputs**: each column's photodiode (**AO/AE**) sums the ``rows``
  contributions optically; an analog integrator accumulates
  ``integration_depth`` symbols before the column ADC (**AE/DE**) fires.

Trade-offs this structure exposes against Albireo (and which the model
reproduces): near-zero weight-conversion energy and no window-geometry
restrictions (FC layers map well), against sample-and-hold refresh limits
(``hold_cycles``), per-cycle input DACs on every row, and no
locally-connected window reuse for convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.arch.domains import Conversion, Domain
from repro.arch.hierarchy import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.energy.estimator import ComponentSpec, build_table
from repro.energy.scaling import CONSERVATIVE, ScalingScenario
from repro.energy.table import EnergyTable
from repro.exceptions import SpecError
from repro.mapping.constraints import MappingConstraints, StorageConstraint
from repro.mapping.factorization import ceil_div
from repro.mapping.mapper import Mapper, MapperResult, _largest_fitting_factor
from repro.mapping.mapping import (
    FanoutMapping,
    LevelMapping,
    Mapping,
    TemporalLoop,
    problem_dims,
)
from repro.model.accelerator import AcceleratorModel, fusion_blocks
from repro.model.buckets import BucketScheme, component_rule
from repro.model.results import LayerEvaluation, NetworkEvaluation
from repro.units import KIBIBYTE
from repro.workloads.dataspace import DataSpace
from repro.workloads.dims import Dim
from repro.workloads.layer import ConvLayer
from repro.workloads.network import Network

_W = DataSpace.WEIGHTS
_I = DataSpace.INPUTS
_O = DataSpace.OUTPUTS


@dataclass(frozen=True)
class CrossbarConfig:
    """Parameters of one WDM-crossbar instance.

    Defaults give 16 x 16 x 16 = 4096 MACs/cycle at 5 GHz — a similar
    silicon budget to the default Albireo for fair comparison.
    """

    scenario: ScalingScenario = CONSERVATIVE
    tiles: int = 16
    rows: int = 16
    cols: int = 16
    #: Analog integration depth before each column ADC fires.
    integration_depth: int = 4
    #: Symbols a sample-and-hold weight survives before re-conversion
    #: (droop limit).  Bounds the weight-stationary amortization.
    hold_cycles: int = 4096
    clock_ghz: float = 5.0
    global_buffer_kib: int = 1024
    global_buffer_banks: int = 16
    dram_technology: str = "ddr4"
    bits: int = 8

    def __post_init__(self) -> None:
        for name in ("tiles", "rows", "cols", "integration_depth",
                     "hold_cycles", "global_buffer_kib",
                     "global_buffer_banks", "bits"):
            if getattr(self, name) < 1:
                raise SpecError(f"CrossbarConfig.{name} must be >= 1")

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.tiles * self.rows * self.cols

    @property
    def global_buffer_bits(self) -> float:
        return float(self.global_buffer_kib * KIBIBYTE)

    @property
    def bank_bits(self) -> float:
        """Per-tile weight bank capacity: one weight per ring."""
        return float(self.rows * self.cols * self.bits)

    def with_scenario(self, scenario: ScalingScenario) -> "CrossbarConfig":
        return replace(self, scenario=scenario)

    def describe(self) -> str:
        return (
            f"Crossbar[{self.scenario.name}] {self.tiles} tiles x "
            f"{self.rows}x{self.cols} rings = {self.peak_macs_per_cycle} "
            f"MACs/cycle @ {self.clock_ghz:g} GHz; integration depth "
            f"{self.integration_depth}, GB={self.global_buffer_kib} KiB"
        )


def build_crossbar_architecture(config: CrossbarConfig) -> Architecture:
    """The crossbar node list; see the module docstring for the layout."""
    nodes = (
        StorageLevel(
            name="DRAM", component="dram", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=None,
        ),
        StorageLevel(
            name="GlobalBuffer", component="global_buffer", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=config.global_buffer_bits,
        ),
        SpatialFanout(
            name="tiles", size=config.tiles,
            allowed_dims={Dim.N, Dim.M, Dim.C, Dim.P, Dim.Q},
            multicast={_W, _I},
        ),
        ConverterStage(
            name="WeightDAC", component="weight_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_W},
        ),
        StorageLevel(
            name="WeightBank", component="weight_bank", domain=Domain.AE,
            dataspaces={_W}, capacity_bits=config.bank_bits,
        ),
        ConverterStage(
            name="InputDAC", component="input_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_I},
        ),
        ConverterStage(
            name="InputModulator", component="input_modulator",
            conversion=Conversion(Domain.AE, Domain.AO), dataspaces={_I},
        ),
        SpatialFanout(
            name="columns", size=config.cols,
            allowed_dims={Dim.M},
            multicast={_I},
        ),
        ConverterStage(
            name="OutputADC", component="output_adc",
            conversion=Conversion(Domain.AE, Domain.DE), dataspaces={_O},
        ),
        StorageLevel(
            name="AEIntegrator", component="ae_integrator", domain=Domain.AE,
            dataspaces={_O}, capacity_bits=float(config.bits),
            allowed_temporal_dims={Dim.C, Dim.R, Dim.S},
            max_accumulation_depth=float(config.integration_depth),
        ),
        ConverterStage(
            name="OutputPhotodiode", component="output_photodiode",
            conversion=Conversion(Domain.AO, Domain.AE), dataspaces={_O},
        ),
        SpatialFanout(
            name="rows", size=config.rows,
            allowed_dims={Dim.C, Dim.R, Dim.S},
            reduction={_O},
        ),
        ComputeLevel(
            name="RingMAC", component="ring_mac", domain=Domain.AO,
            actions=(ComputeAction(component="laser", action="mac",
                                   events_per_mac=1.0),),
        ),
    )
    return Architecture(
        name=f"crossbar-{config.scenario.name}",
        nodes=nodes,
        clock_ghz=config.clock_ghz,
    )


def build_crossbar_energy_table(config: CrossbarConfig) -> EnergyTable:
    scenario = config.scenario
    specs = [
        ComponentSpec("dram", "dram", {
            "technology": config.dram_technology,
            "width_bits": config.bits,
        }),
        ComponentSpec("global_buffer", "sram", {
            "capacity_bits": config.global_buffer_bits,
            "width_bits": config.bits,
            "banks": config.global_buffer_banks,
        }),
        ComponentSpec("weight_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        # The sample-and-hold bank: charge-domain storage per ring.
        ComponentSpec("weight_bank", "analog_integrator", {}),
        ComponentSpec("input_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        ComponentSpec("input_modulator", "mzm", {
            "energy_pj": scenario.mzm_pj,
        }),
        ComponentSpec("output_photodiode", "photodiode", {
            "energy_pj": scenario.photodiode_pj,
        }),
        ComponentSpec("output_adc", "adc", {
            "fom_fj_per_step": scenario.adc_fom_fj_per_step,
            "bits": config.bits,
            "sample_rate_gsps": config.clock_ghz,
        }),
        ComponentSpec("ae_integrator", "analog_integrator", {}),
        ComponentSpec("laser", "laser", {
            "detector_fj": scenario.detector_fj,
            "wall_plug_efficiency": scenario.laser_wall_plug_efficiency,
            "fixed_loss_db": scenario.fixed_loss_db,
            "broadcast_ports": config.cols,
        }),
        ComponentSpec("ring_mac", "constant", {
            "energy_pj": 0.0, "actions": ("compute", "mac"),
        }),
    ]
    return build_table(specs)


#: Figure buckets matching Albireo's SYSTEM_BUCKETS for cross-system plots.
CROSSBAR_BUCKETS = BucketScheme(
    name="crossbar-system",
    rules=(
        component_rule("WeightDAC", "Weight DE/AE, AE/AO"),
        component_rule("WeightBank", "Weight DE/AE, AE/AO"),
        component_rule("InputDAC", "Input DE/AE, AE/AO"),
        component_rule("InputModulator", "Input DE/AE, AE/AO"),
        component_rule("OutputADC", "Output AO/AE, AE/DE"),
        component_rule("OutputPhotodiode", "Output AO/AE, AE/DE"),
        component_rule("laser", "Other AO"),
        component_rule("AEIntegrator", "Other AO"),
        component_rule("GlobalBuffer", "On-Chip Buffer"),
        component_rule("DRAM", "DRAM"),
    ),
    default="Other AO",
    order=("Other AO", "Weight DE/AE, AE/AO", "Input DE/AE, AE/AO",
           "Output AO/AE, AE/DE", "On-Chip Buffer", "DRAM"),
)


def crossbar_constraints(config: CrossbarConfig) -> MappingConstraints:
    """Integrator depth and sample-and-hold refresh budgets."""
    return MappingConstraints(
        storages={
            "AEIntegrator": StorageConstraint(
                max_temporal_product=config.integration_depth),
            # Loops at the weight bank sweep inputs while weights stay
            # resident; the hold limit caps that sweep length.
            "WeightBank": StorageConstraint(
                max_temporal_product=config.hold_cycles),
        },
    )


def crossbar_reference_mapping(config: CrossbarConfig,
                               layer: ConvLayer) -> Mapping:
    """Deterministic weight-stationary reference mapping.

    Spatial: C (and kernel dims) across rows, M across columns, leftovers
    of M/C/pixels across tiles.  Temporal: reduction leftovers in the
    integrator, a pixel sweep at the weight bank (weights resident),
    buffer tiles sized to capacity, remainder at DRAM protecting weights.
    """
    dims = problem_dims(layer)
    remaining = dict(dims)

    def take(dim: Dim, cap: int) -> int:
        factor = _largest_fitting_factor(remaining[dim],
                                         min(remaining[dim], cap))
        remaining[dim] = ceil_div(remaining[dim], factor)
        return factor

    # Rows serve the reduction dims: kernel window first, channels after.
    row_budget = config.rows
    r_sp = take(Dim.R, row_budget)
    row_budget //= r_sp
    s_sp = take(Dim.S, row_budget)
    row_budget //= s_sp
    c_sp = take(Dim.C, row_budget)
    m_sp = take(Dim.M, config.cols)

    tile_budget = config.tiles
    tile_factors: Dict[Dim, int] = {}
    for dim in (Dim.M, Dim.C, Dim.Q, Dim.P, Dim.N):
        if tile_budget <= 1:
            break
        factor = take(dim, tile_budget)
        if factor > 1:
            tile_factors[dim] = factor
            tile_budget //= factor

    # No temporal loops at the integrator in the reference mapping: a
    # weight-stationary crossbar cannot accumulate C-chunks in analog
    # without the bank holding every chunk's weights simultaneously (the
    # bank tile would multiply by the accumulation length and blow its
    # capacity), so reduction leftovers merge digitally at the buffer.
    # The mapper may still discover legal analog accumulation for layers
    # whose weights fit (the capacity check arbitrates honestly).
    integrator_factors: Dict[Dim, int] = {}

    # Weight bank: weights stay put across the pixel/batch sweep.
    bank_factors: Dict[Dim, int] = {}
    hold = config.hold_cycles
    for dim in (Dim.Q, Dim.P, Dim.N):
        if hold <= 1:
            break
        factor = take(dim, hold)
        if factor > 1:
            bank_factors[dim] = factor
            hold //= factor

    # Global buffer: everything else that fits; shrink M/C first.
    gb_factors = dict(remaining)
    from repro.workloads.dataspace import dataspace_tile_size

    spatial_cum = {Dim.R: r_sp, Dim.S: s_sp, Dim.C: c_sp, Dim.M: m_sp}
    for dim, factor in tile_factors.items():
        spatial_cum[dim] = spatial_cum.get(dim, 1) * factor

    def occupancy(factors: Dict[Dim, int]) -> float:
        bounds = {}
        for dim in dims:
            bounds[dim] = (factors.get(dim, 1) * spatial_cum.get(dim, 1)
                           * integrator_factors.get(dim, 1)
                           * bank_factors.get(dim, 1))
        bits = 0.0
        for dataspace in (_W, _I, _O):
            width = (layer.bits_per_weight if dataspace is _W
                     else layer.bits_per_activation)
            bits += dataspace_tile_size(dataspace, bounds,
                                        layer.strides) * width
        return bits

    capacity = config.global_buffer_bits * 0.95
    for _ in range(256):
        if occupancy(gb_factors) <= capacity:
            break
        largest = max((Dim.N, Dim.M, Dim.C, Dim.P, Dim.Q),
                      key=lambda d: gb_factors.get(d, 1))
        if gb_factors.get(largest, 1) <= 1:
            break
        gb_factors[largest] = ceil_div(gb_factors[largest], 2)

    dram_factors = {dim: ceil_div(remaining[dim], gb_factors.get(dim, 1))
                    for dim in dims}

    def loops(factors: Dict[Dim, int],
              order: Tuple[Dim, ...]) -> Tuple[TemporalLoop, ...]:
        return tuple(TemporalLoop(dim, factors[dim])
                     for dim in order if factors.get(dim, 1) > 1)

    gb_order = (Dim.N, Dim.M, Dim.P, Dim.Q, Dim.C, Dim.R, Dim.S)
    dram_order = (Dim.C, Dim.M, Dim.R, Dim.S, Dim.Q, Dim.P, Dim.N) \
        if layer.weight_bits >= layer.input_bits \
        else (Dim.R, Dim.S, Dim.C, Dim.Q, Dim.P, Dim.N, Dim.M)

    levels = (
        LevelMapping("DRAM", loops(dram_factors, dram_order)),
        LevelMapping("GlobalBuffer", loops(gb_factors, gb_order)),
        LevelMapping("WeightBank",
                     loops(bank_factors, (Dim.N, Dim.P, Dim.Q))),
        LevelMapping("AEIntegrator",
                     loops(integrator_factors, (Dim.C, Dim.R, Dim.S))),
    )
    spatials = (
        FanoutMapping("tiles", tile_factors),
        FanoutMapping("columns", {Dim.M: m_sp} if m_sp > 1 else {}),
        FanoutMapping("rows", {d: f for d, f in
                               ((Dim.C, c_sp), (Dim.R, r_sp), (Dim.S, s_sp))
                               if f > 1}),
    )
    return Mapping(levels=levels, spatials=spatials)


class CrossbarSystem:
    """The WDM crossbar ready to evaluate (mirrors :class:`AlbireoSystem`)."""

    def __init__(self, config: Optional[CrossbarConfig] = None) -> None:
        self.config = config or CrossbarConfig()
        self.architecture = build_crossbar_architecture(self.config)
        self.energy_table = build_crossbar_energy_table(self.config)
        self.model = AcceleratorModel(self.architecture, self.energy_table)
        self._mapping_cache: Dict[Tuple, Mapping] = {}

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def reference_mapping(self, layer: ConvLayer) -> Mapping:
        key = (layer.n, layer.m, layer.c, layer.p, layer.q, layer.r,
               layer.s, layer.stride_h, layer.stride_w, layer.groups)
        cached = self._mapping_cache.get(key)
        if cached is None:
            cached = crossbar_reference_mapping(self.config, layer)
            self._mapping_cache[key] = cached
        return cached

    def search_mapping(self, layer: ConvLayer,
                       max_evaluations: int = 1000,
                       seed: int = 0) -> MapperResult:
        mapper = Mapper(
            self.architecture,
            cost_fn=self.model.energy_cost_fn(layer),
            constraints=crossbar_constraints(self.config),
        )
        return mapper.search(
            layer, max_evaluations=max_evaluations, seed=seed,
            extra_candidates=(self.reference_mapping(layer),),
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_layer(
        self,
        layer: ConvLayer,
        mapping: Optional[Mapping] = None,
        use_mapper: bool = False,
        input_from_dram: bool = True,
        output_to_dram: bool = True,
    ) -> LayerEvaluation:
        if mapping is None:
            if use_mapper:
                mapping = self.search_mapping(layer).mapping
            else:
                mapping = self.reference_mapping(layer)
        return self.model.evaluate_layer(
            layer, mapping,
            input_from_dram=input_from_dram, output_to_dram=output_to_dram,
        )

    def evaluate_network(self, network: Network,
                         fused: bool = False,
                         use_mapper: bool = False) -> NetworkEvaluation:
        evaluations = []
        entries = network.entries
        for index, entry in enumerate(entries):
            is_last = index == len(entries) - 1
            for input_dram, output_dram, count in fusion_blocks(
                    entry, is_last, fused):
                evaluation = self.evaluate_layer(
                    entry.layer, use_mapper=use_mapper,
                    input_from_dram=input_dram,
                    output_to_dram=output_dram,
                )
                evaluations.append((evaluation, count))
        return NetworkEvaluation(
            name=network.name,
            layers=tuple(evaluations),
            clock_ghz=self.architecture.clock_ghz,
            peak_parallelism=self.architecture.peak_parallelism,
        )

    def describe(self) -> str:
        return self.config.describe() + "\n" + self.architecture.describe()
