"""A weight-stationary photonic WDM crossbar accelerator.

The second full system modeled by this library (after Albireo),
representative of the microring weight-bank family the paper cites
(ADEPT-style electro-photonic accelerators, PCNNA/DEAP-class crossbars).
Modeling two systems with one component library is the paper's
"comparison between systems" use case.

Organization — ``tiles`` × (``rows`` × ``cols``) ring crossbars:

* **Weights** are converted *once per tile residency*: DRAM → global
  buffer → **DE/AE DAC** → an analog sample-and-hold **weight bank**
  holding ``rows x cols`` values that bias the rings while inputs stream.
  This is the weight-stationary contrast to Albireo's streamed weights:
  weight conversion energy amortizes over the whole pixel sweep instead
  of paying per MAC.
* **Inputs** stream every cycle: DAC → **AE/AO MZM** per row, and each
  row's light crosses all ``cols`` columns (optical broadcast along the
  row waveguide — the input-reuse fanout).
* **Outputs**: each column's photodiode (**AO/AE**) sums the ``rows``
  contributions optically; an analog integrator accumulates
  ``integration_depth`` symbols before the column ADC (**AE/DE**) fires.

Trade-offs this structure exposes against Albireo (and which the model
reproduces): near-zero weight-conversion energy and no window-geometry
restrictions (FC layers map well), against sample-and-hold refresh limits
(``hold_cycles``), per-cycle input DACs on every row, and no
locally-connected window reuse for convolutions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.arch.domains import Conversion, Domain
from repro.arch.hierarchy import (
    Architecture,
    ComputeAction,
    ComputeLevel,
    ConverterStage,
    SpatialFanout,
    StorageLevel,
)
from repro.energy.estimator import ComponentSpec, build_table
from repro.energy.scaling import (
    AGGRESSIVE,
    CONSERVATIVE,
    ScalingScenario,
)
from repro.energy.table import EnergyTable
from repro.exceptions import SpecError
from repro.mapping.constraints import MappingConstraints, StorageConstraint
from repro.mapping.mapping import FanoutMapping, LevelMapping, Mapping
from repro.model.buckets import BucketScheme, component_rule
from repro.systems.base import PhotonicSystem
from repro.systems.refmap import (
    GB_ORDER,
    FactorTaker,
    dram_order_protecting,
    shrink_to_fit,
    temporal_loops,
)
from repro.systems.registry import SystemEntry, register_system
from repro.units import KIBIBYTE
from repro.workloads.dataspace import DataSpace
from repro.workloads.dims import Dim
from repro.workloads.layer import ConvLayer

_W = DataSpace.WEIGHTS
_I = DataSpace.INPUTS
_O = DataSpace.OUTPUTS


@dataclass(frozen=True)
class CrossbarConfig:
    """Parameters of one WDM-crossbar instance.

    Defaults give 16 x 16 x 16 = 4096 MACs/cycle at 5 GHz — a similar
    silicon budget to the default Albireo for fair comparison.
    """

    scenario: ScalingScenario = CONSERVATIVE
    tiles: int = 16
    rows: int = 16
    cols: int = 16
    #: Analog integration depth before each column ADC fires.
    integration_depth: int = 4
    #: Symbols a sample-and-hold weight survives before re-conversion
    #: (droop limit).  Bounds the weight-stationary amortization.
    hold_cycles: int = 4096
    clock_ghz: float = 5.0
    global_buffer_kib: int = 1024
    global_buffer_banks: int = 16
    dram_technology: str = "ddr4"
    bits: int = 8

    def __post_init__(self) -> None:
        for name in ("tiles", "rows", "cols", "integration_depth",
                     "hold_cycles", "global_buffer_kib",
                     "global_buffer_banks", "bits"):
            if getattr(self, name) < 1:
                raise SpecError(f"CrossbarConfig.{name} must be >= 1")

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.tiles * self.rows * self.cols

    @property
    def global_buffer_bits(self) -> float:
        return float(self.global_buffer_kib * KIBIBYTE)

    @property
    def bank_bits(self) -> float:
        """Per-tile weight bank capacity: one weight per ring."""
        return float(self.rows * self.cols * self.bits)

    def with_scenario(self, scenario: ScalingScenario) -> "CrossbarConfig":
        return replace(self, scenario=scenario)

    def describe(self) -> str:
        return (
            f"Crossbar[{self.scenario.name}] {self.tiles} tiles x "
            f"{self.rows}x{self.cols} rings = {self.peak_macs_per_cycle} "
            f"MACs/cycle @ {self.clock_ghz:g} GHz; integration depth "
            f"{self.integration_depth}, GB={self.global_buffer_kib} KiB"
        )


def build_crossbar_architecture(config: CrossbarConfig) -> Architecture:
    """The crossbar node list; see the module docstring for the layout."""
    nodes = (
        StorageLevel(
            name="DRAM", component="dram", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=None,
        ),
        StorageLevel(
            name="GlobalBuffer", component="global_buffer", domain=Domain.DE,
            dataspaces={_W, _I, _O}, capacity_bits=config.global_buffer_bits,
        ),
        SpatialFanout(
            name="tiles", size=config.tiles,
            allowed_dims={Dim.N, Dim.M, Dim.C, Dim.P, Dim.Q},
            multicast={_W, _I},
        ),
        ConverterStage(
            name="WeightDAC", component="weight_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_W},
        ),
        StorageLevel(
            name="WeightBank", component="weight_bank", domain=Domain.AE,
            dataspaces={_W}, capacity_bits=config.bank_bits,
        ),
        ConverterStage(
            name="InputDAC", component="input_dac",
            conversion=Conversion(Domain.DE, Domain.AE), dataspaces={_I},
        ),
        ConverterStage(
            name="InputModulator", component="input_modulator",
            conversion=Conversion(Domain.AE, Domain.AO), dataspaces={_I},
        ),
        SpatialFanout(
            name="columns", size=config.cols,
            allowed_dims={Dim.M},
            multicast={_I},
        ),
        ConverterStage(
            name="OutputADC", component="output_adc",
            conversion=Conversion(Domain.AE, Domain.DE), dataspaces={_O},
        ),
        StorageLevel(
            name="AEIntegrator", component="ae_integrator", domain=Domain.AE,
            dataspaces={_O}, capacity_bits=float(config.bits),
            allowed_temporal_dims={Dim.C, Dim.R, Dim.S},
            max_accumulation_depth=float(config.integration_depth),
        ),
        ConverterStage(
            name="OutputPhotodiode", component="output_photodiode",
            conversion=Conversion(Domain.AO, Domain.AE), dataspaces={_O},
        ),
        SpatialFanout(
            name="rows", size=config.rows,
            allowed_dims={Dim.C, Dim.R, Dim.S},
            reduction={_O},
        ),
        ComputeLevel(
            name="RingMAC", component="ring_mac", domain=Domain.AO,
            actions=(ComputeAction(component="laser", action="mac",
                                   events_per_mac=1.0),),
        ),
    )
    return Architecture(
        name=f"crossbar-{config.scenario.name}",
        nodes=nodes,
        clock_ghz=config.clock_ghz,
    )


def build_crossbar_energy_table(config: CrossbarConfig) -> EnergyTable:
    scenario = config.scenario
    specs = [
        ComponentSpec("dram", "dram", {
            "technology": config.dram_technology,
            "width_bits": config.bits,
        }),
        ComponentSpec("global_buffer", "sram", {
            "capacity_bits": config.global_buffer_bits,
            "width_bits": config.bits,
            "banks": config.global_buffer_banks,
        }),
        ComponentSpec("weight_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        # The sample-and-hold bank: charge-domain storage per ring.
        ComponentSpec("weight_bank", "analog_integrator", {}),
        ComponentSpec("input_dac", "dac", {
            "energy_pj_at_8bit": scenario.dac_pj_at_8bit,
            "bits": config.bits,
        }),
        ComponentSpec("input_modulator", "mzm", {
            "energy_pj": scenario.mzm_pj,
        }),
        ComponentSpec("output_photodiode", "photodiode", {
            "energy_pj": scenario.photodiode_pj,
        }),
        ComponentSpec("output_adc", "adc", {
            "fom_fj_per_step": scenario.adc_fom_fj_per_step,
            "bits": config.bits,
            "sample_rate_gsps": config.clock_ghz,
        }),
        ComponentSpec("ae_integrator", "analog_integrator", {}),
        ComponentSpec("laser", "laser", {
            "detector_fj": scenario.detector_fj,
            "wall_plug_efficiency": scenario.laser_wall_plug_efficiency,
            "fixed_loss_db": scenario.fixed_loss_db,
            "broadcast_ports": config.cols,
        }),
        ComponentSpec("ring_mac", "constant", {
            "energy_pj": 0.0, "actions": ("compute", "mac"),
        }),
    ]
    return build_table(specs)


#: Figure buckets matching Albireo's SYSTEM_BUCKETS for cross-system plots.
CROSSBAR_BUCKETS = BucketScheme(
    name="crossbar-system",
    rules=(
        component_rule("WeightDAC", "Weight DE/AE, AE/AO"),
        component_rule("WeightBank", "Weight DE/AE, AE/AO"),
        component_rule("InputDAC", "Input DE/AE, AE/AO"),
        component_rule("InputModulator", "Input DE/AE, AE/AO"),
        component_rule("OutputADC", "Output AO/AE, AE/DE"),
        component_rule("OutputPhotodiode", "Output AO/AE, AE/DE"),
        component_rule("laser", "Other AO"),
        component_rule("AEIntegrator", "Other AO"),
        component_rule("GlobalBuffer", "On-Chip Buffer"),
        component_rule("DRAM", "DRAM"),
    ),
    default="Other AO",
    order=("Other AO", "Weight DE/AE, AE/AO", "Input DE/AE, AE/AO",
           "Output AO/AE, AE/DE", "On-Chip Buffer", "DRAM"),
)


def crossbar_constraints(config: CrossbarConfig) -> MappingConstraints:
    """Integrator depth and sample-and-hold refresh budgets."""
    return MappingConstraints(
        storages={
            "AEIntegrator": StorageConstraint(
                max_temporal_product=config.integration_depth),
            # Loops at the weight bank sweep inputs while weights stay
            # resident; the hold limit caps that sweep length.
            "WeightBank": StorageConstraint(
                max_temporal_product=config.hold_cycles),
        },
    )


def crossbar_reference_mapping(config: CrossbarConfig,
                               layer: ConvLayer) -> Mapping:
    """Deterministic weight-stationary reference mapping.

    Spatial: C (and kernel dims) across rows, M across columns, leftovers
    of M/C/pixels across tiles.  Temporal: reduction leftovers in the
    integrator, a pixel sweep at the weight bank (weights resident),
    buffer tiles sized to capacity, remainder at DRAM protecting weights.
    """
    taker = FactorTaker(layer)

    # Rows serve the reduction dims: kernel window first, channels after.
    row_budget = config.rows
    r_sp = taker.take(Dim.R, row_budget)
    row_budget //= r_sp
    s_sp = taker.take(Dim.S, row_budget)
    row_budget //= s_sp
    c_sp = taker.take(Dim.C, row_budget)
    m_sp = taker.take(Dim.M, config.cols)

    tile_factors = taker.take_budgeted((Dim.M, Dim.C, Dim.Q, Dim.P, Dim.N),
                                       config.tiles)

    # No temporal loops at the integrator in the reference mapping: a
    # weight-stationary crossbar cannot accumulate C-chunks in analog
    # without the bank holding every chunk's weights simultaneously (the
    # bank tile would multiply by the accumulation length and blow its
    # capacity), so reduction leftovers merge digitally at the buffer.
    # The mapper may still discover legal analog accumulation for layers
    # whose weights fit (the capacity check arbitrates honestly).
    integrator_factors: Dict[Dim, int] = {}

    # Weight bank: weights stay put across the pixel/batch sweep.
    bank_factors = taker.take_budgeted((Dim.Q, Dim.P, Dim.N),
                                       config.hold_cycles)

    spatial_cum = {Dim.R: r_sp, Dim.S: s_sp, Dim.C: c_sp, Dim.M: m_sp}
    for dim, factor in tile_factors.items():
        spatial_cum[dim] = spatial_cum.get(dim, 1) * factor

    # Global buffer: everything else that fits; shrink M/C first.
    gb_factors = shrink_to_fit(
        layer, taker.dims, dict(taker.remaining),
        config.global_buffer_bits * 0.95,
        spatial_cum, integrator_factors, bank_factors,
    )
    dram_factors = taker.residual_after(gb_factors)

    dram_order = dram_order_protecting(layer, "auto")

    levels = (
        LevelMapping("DRAM", temporal_loops(dram_factors, dram_order)),
        LevelMapping("GlobalBuffer", temporal_loops(gb_factors, GB_ORDER)),
        LevelMapping("WeightBank",
                     temporal_loops(bank_factors, (Dim.N, Dim.P, Dim.Q))),
        LevelMapping("AEIntegrator",
                     temporal_loops(integrator_factors,
                                    (Dim.C, Dim.R, Dim.S))),
    )
    spatials = (
        FanoutMapping("tiles", tile_factors),
        FanoutMapping("columns", {Dim.M: m_sp} if m_sp > 1 else {}),
        FanoutMapping("rows", {d: f for d, f in
                               ((Dim.C, c_sp), (Dim.R, r_sp), (Dim.S, s_sp))
                               if f > 1}),
    )
    return Mapping(levels=levels, spatials=spatials)


class CrossbarSystem(PhotonicSystem):
    """The WDM crossbar ready to evaluate (mirrors :class:`AlbireoSystem`).

    Built on :class:`~repro.systems.base.PhotonicSystem`, so it shares the
    engine's ``store`` seam: warmed-cache parallel sweeps work exactly as
    they do for Albireo.
    """

    name = "crossbar"
    config_type = CrossbarConfig
    build_architecture = staticmethod(build_crossbar_architecture)
    build_energy_table = staticmethod(build_crossbar_energy_table)

    def constraints(self, layer: ConvLayer) -> MappingConstraints:
        return crossbar_constraints(self.config)

    def mapping_candidates(self, layer: ConvLayer) -> List[Mapping]:
        return [crossbar_reference_mapping(self.config, layer)]


# ---------------------------------------------------------------------------
# Registry entry
# ---------------------------------------------------------------------------

def crossbar_default_sweep() -> List[CrossbarConfig]:
    """The ``repro sweep --system crossbar`` grid: 2 scenarios x 3 tile
    counts x 2 row counts x 2 integration depths = 24 configurations."""
    configs = []
    for scenario in (CONSERVATIVE, AGGRESSIVE):
        for tiles in (8, 16, 32):
            for rows in (8, 16):
                for integration_depth in (2, 4):
                    configs.append(CrossbarConfig(
                        scenario=scenario,
                        tiles=tiles,
                        rows=rows,
                        integration_depth=integration_depth,
                    ))
    return configs


register_system(SystemEntry(
    name="crossbar",
    config_type=CrossbarConfig,
    system_type=CrossbarSystem,
    build_architecture=build_crossbar_architecture,
    build_energy_table=build_crossbar_energy_table,
    buckets=CROSSBAR_BUCKETS,
    supports_store=True,
    description=("Weight-stationary photonic WDM crossbar "
                 "(ADEPT/PCNNA-class): analog sample-and-hold weight "
                 "banks, per-row input streaming, optical column "
                 "reduction"),
    default_sweep=crossbar_default_sweep,
    sweep_columns=(
        ("scaling", lambda config: config.scenario.name),
        ("tiles", lambda config: config.tiles),
        ("rows", lambda config: config.rows),
        ("depth", lambda config: config.integration_depth),
    ),
))
