"""Modeled systems: concrete accelerators built from the library.

* :mod:`~repro.systems.albireo` — the Albireo silicon-photonic CNN
  accelerator (Shiflett et al., ISCA 2021), the system the paper models and
  explores.
* :mod:`~repro.systems.dse` — design-space exploration drivers sweeping
  Albireo's reuse factors and memory-system options (the paper's Figs. 4-5),
  executed through the parallel/cached sweep engine (:mod:`repro.engine`).
"""

from repro.systems.albireo import (
    AlbireoConfig,
    AlbireoSystem,
    FIG2_BUCKETS,
    SYSTEM_BUCKETS,
    albireo_best_case_layer,
    albireo_reference_mapping,
    build_albireo_architecture,
    build_albireo_energy_table,
)
from repro.systems.crossbar import (
    CROSSBAR_BUCKETS,
    CrossbarConfig,
    CrossbarSystem,
    build_crossbar_architecture,
    build_crossbar_energy_table,
    crossbar_reference_mapping,
)
from repro.systems.dse import (
    MemoryExplorationPoint,
    ReuseExplorationPoint,
    pareto_frontier,
    sweep_configurations,
    sweep_memory_options,
    sweep_reuse_factors,
)

__all__ = [
    "CROSSBAR_BUCKETS",
    "CrossbarConfig",
    "CrossbarSystem",
    "build_crossbar_architecture",
    "build_crossbar_energy_table",
    "crossbar_reference_mapping",
    "AlbireoConfig",
    "AlbireoSystem",
    "FIG2_BUCKETS",
    "MemoryExplorationPoint",
    "ReuseExplorationPoint",
    "SYSTEM_BUCKETS",
    "albireo_best_case_layer",
    "albireo_reference_mapping",
    "pareto_frontier",
    "sweep_configurations",
    "build_albireo_architecture",
    "build_albireo_energy_table",
    "sweep_memory_options",
    "sweep_reuse_factors",
]
