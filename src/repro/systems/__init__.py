"""Modeled systems: concrete accelerators built from the library.

* :mod:`~repro.systems.base` — the :class:`PhotonicSystem` framework
  every accelerator plugs into (shared mapping/evaluation/store
  machinery).
* :mod:`~repro.systems.registry` — the name -> builder-bundle registry
  the engine, CLI, and experiments resolve systems through.
* :mod:`~repro.systems.refmap` — the shared reference-mapping toolkit.
* :mod:`~repro.systems.albireo` — the Albireo silicon-photonic CNN
  accelerator (Shiflett et al., ISCA 2021), the system the paper models
  and explores.
* :mod:`~repro.systems.crossbar` — a weight-stationary WDM microring
  crossbar (ADEPT/PCNNA-class).
* :mod:`~repro.systems.wdm_delay` — a WDM delay-buffer CNN accelerator
  (Xu et al., 2019 class) building its convolution window in time.
* :mod:`~repro.systems.dse` — design-space exploration drivers sweeping
  Albireo's reuse factors and memory-system options (the paper's
  Figs. 4-5), executed through the parallel/cached sweep engine
  (:mod:`repro.engine`).
"""

from repro.systems.albireo import (
    AlbireoConfig,
    AlbireoSystem,
    FIG2_BUCKETS,
    SYSTEM_BUCKETS,
    albireo_best_case_layer,
    albireo_reference_mapping,
    build_albireo_architecture,
    build_albireo_energy_table,
)
from repro.systems.base import PhotonicSystem, layer_shape_key
from repro.systems.crossbar import (
    CROSSBAR_BUCKETS,
    CrossbarConfig,
    CrossbarSystem,
    build_crossbar_architecture,
    build_crossbar_energy_table,
    crossbar_reference_mapping,
)
from repro.systems.dse import (
    MemoryExplorationPoint,
    ReuseExplorationPoint,
    pareto_frontier,
    sweep_configurations,
    sweep_memory_options,
    sweep_reuse_factors,
)
from repro.systems.registry import (
    SystemEntry,
    create_system,
    get_system,
    infer_system,
    register_system,
    system_entries,
    system_names,
)
from repro.systems.wdm_delay import (
    WDM_DELAY_BUCKETS,
    WdmDelayConfig,
    WdmDelaySystem,
    build_wdm_delay_architecture,
    build_wdm_delay_energy_table,
    wdm_delay_reference_mapping,
)

__all__ = [
    "CROSSBAR_BUCKETS",
    "CrossbarConfig",
    "CrossbarSystem",
    "PhotonicSystem",
    "SystemEntry",
    "WDM_DELAY_BUCKETS",
    "WdmDelayConfig",
    "WdmDelaySystem",
    "build_crossbar_architecture",
    "build_crossbar_energy_table",
    "build_wdm_delay_architecture",
    "build_wdm_delay_energy_table",
    "create_system",
    "crossbar_reference_mapping",
    "get_system",
    "infer_system",
    "layer_shape_key",
    "register_system",
    "system_entries",
    "system_names",
    "wdm_delay_reference_mapping",
    "AlbireoConfig",
    "AlbireoSystem",
    "FIG2_BUCKETS",
    "MemoryExplorationPoint",
    "ReuseExplorationPoint",
    "SYSTEM_BUCKETS",
    "albireo_best_case_layer",
    "albireo_reference_mapping",
    "pareto_frontier",
    "sweep_configurations",
    "build_albireo_architecture",
    "build_albireo_energy_table",
    "sweep_memory_options",
    "sweep_reuse_factors",
]
